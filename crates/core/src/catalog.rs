//! The full metric catalog: all 52 metrics the paper defines, plus the
//! four-survivability extension of the architectural class (56 total).
//!
//! Descriptions for the table-selected metrics are the paper's own (Tables
//! 1–3). The paper lists the remaining metrics by name only ("for
//! brevity's sake we have not included examples for each metric. The
//! current complete scorecard is available from the authors"); their
//! descriptions and anchors here are reconstructions consistent with the
//! paper's style, flagged `in_paper_table: false`.

use crate::metric::{Anchors, MetricClass, MetricDef, MetricId, ObservationMethod};

use MetricClass::{Architectural, Logistical, Performance};
use ObservationMethod::{Analysis, OpenSource};

const BOTH: &[ObservationMethod] = &[Analysis, OpenSource];
const ANALYSIS: &[ObservationMethod] = &[Analysis];
const OPEN: &[ObservationMethod] = &[OpenSource];

/// The complete catalog, in class order then paper order.
pub fn catalog() -> Vec<MetricDef> {
    vec![
        // ================= Logistical (Table 1) =================
        MetricDef {
            id: MetricId::DistributedManagement,
            name: "Distributed Management",
            class: Logistical,
            description: "Capability of managing and monitoring the IDS securely from multiple possibly remote systems.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Management of each node must be done at the node.",
                average: "Nodes may be remotely managed, but either security, or degree of administrative control is limited.",
                high: "Complete management of all nodes may be done from any node or remotely. Appropriate encryption and authentication are employed.",
            },
        },
        MetricDef {
            id: MetricId::EaseOfConfiguration,
            name: "Ease of Configuration",
            class: Logistical,
            description: "Difficulty in initially installing and subsequently configuring the IDS.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Vendor engineers must install and every change requires expert intervention.",
                average: "A trained administrator can install and reconfigure with vendor documentation.",
                high: "Turnkey installation; routine reconfiguration through a guided interface.",
            },
        },
        MetricDef {
            id: MetricId::EaseOfPolicyMaintenance,
            name: "Ease of Policy Maintenance",
            class: Logistical,
            description: "The ease of creating, updating, and managing IDS detection and reaction policies.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Policies are hand-edited files with no validation.",
                average: "Policy editing is tool-assisted but per-sensor.",
                high: "Central policy authoring, validation, versioning and push to all sensors.",
            },
        },
        MetricDef {
            id: MetricId::LicenseManagement,
            name: "License Management",
            class: Logistical,
            description: "The difficulty of obtaining, updating, and extending licenses for the IDS.",
            methods: OPEN,
            in_paper_table: true,
            anchors: Anchors {
                low: "Per-component keys that must be renegotiated for every change.",
                average: "Standard commercial licensing with periodic renewal.",
                high: "Site licensing or unencumbered use; growth requires no license action.",
            },
        },
        MetricDef {
            id: MetricId::OutsourcedSolution,
            name: "Outsourced Solution",
            class: Logistical,
            description: "The degree to which the IDS services are provided by an external entity.",
            methods: OPEN,
            in_paper_table: true,
            anchors: Anchors {
                low: "Fully outsourced monitoring including uncontrollable external scanning.",
                average: "Optional managed service; local operation fully possible.",
                high: "Entirely locally operable; no external dependency.",
            },
        },
        MetricDef {
            id: MetricId::PlatformRequirements,
            name: "Platform Requirements",
            class: Logistical,
            description: "System resources actually required to implement the IDS in the expected environment.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Dedicated high-end hardware per sensor plus heavy host footprints.",
                average: "Moderate dedicated hardware or noticeable host resources.",
                high: "Runs on existing hardware with negligible footprint.",
            },
        },
        // --- Logistical, named only ---
        MetricDef {
            id: MetricId::QualityOfDocumentation,
            name: "Quality of Documentation",
            class: Logistical,
            description: "Completeness, accuracy and usability of the product documentation.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "No usable documentation.",
                average: "Complete reference but weak procedures.",
                high: "Complete, accurate, task-oriented documentation.",
            },
        },
        MetricDef {
            id: MetricId::EaseOfAttackFilterGeneration,
            name: "Ease of Attack Filter Generation",
            class: Logistical,
            description: "Effort required to write or generate a new attack filter/signature.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Filters require vendor engagement.",
                average: "Administrators can write filters in a documented language.",
                high: "Guided or automatic filter generation from observed traffic.",
            },
        },
        MetricDef {
            id: MetricId::EvaluationCopyAvailability,
            name: "Evaluation Copy Availability",
            class: Logistical,
            description: "Availability of evaluation copies to prospective procurers.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "No evaluation possible before purchase.",
                average: "Time-limited or feature-limited evaluation.",
                high: "Full-function evaluation freely available.",
            },
        },
        MetricDef {
            id: MetricId::LevelOfAdministration,
            name: "Level of Administration",
            class: Logistical,
            description: "Ongoing administrator effort required to keep the IDS effective.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Requires a dedicated full-time expert.",
                average: "Part-time attention from a trained administrator.",
                high: "Largely self-maintaining.",
            },
        },
        MetricDef {
            id: MetricId::ProductLifetime,
            name: "Product Lifetime",
            class: Logistical,
            description: "Expected supported lifetime of the product and its signature updates.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "Unsupported or end-of-life.",
                average: "Supported with uncertain roadmap.",
                high: "Long-term support commitment with frequent updates.",
            },
        },
        MetricDef {
            id: MetricId::QualityOfTechnicalSupport,
            name: "Quality of Technical Support",
            class: Logistical,
            description: "Responsiveness and competence of vendor technical support.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "No support channel.",
                average: "Business-hours support with variable quality.",
                high: "24/7 expert support with escalation.",
            },
        },
        MetricDef {
            id: MetricId::ThreeYearCostOfOwnership,
            name: "Three Year Cost of Ownership",
            class: Logistical,
            description: "Total procurement, licensing, hardware and staffing cost over three years.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "Cost prohibitive for the intended deployment scale.",
                average: "Comparable to peer products.",
                high: "Minimal cost relative to coverage.",
            },
        },
        MetricDef {
            id: MetricId::TrainingSupport,
            name: "Training Support",
            class: Logistical,
            description: "Availability and quality of operator/administrator training.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "No training offered.",
                average: "Vendor courses at extra cost.",
                high: "Comprehensive training included, with materials for self-study.",
            },
        },
        // ================= Architectural (Table 2) =================
        MetricDef {
            id: MetricId::AdjustableSensitivity,
            name: "Adjustable Sensitivity",
            class: Architectural,
            description: "Ability to change the sensitivity of the IDS to compensate for high false positive or false negative ratios.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Fixed sensitivity.",
                average: "Coarse global levels (low/medium/high).",
                high: "Continuous, per-detector sensitivity adjustable at runtime.",
            },
        },
        MetricDef {
            id: MetricId::DataPoolSelectability,
            name: "Data Pool Selectability",
            class: Architectural,
            description: "Ability to define the source data to be analyzed for intrusions (by protocol, source and dest addresses, etc).",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Analyzes everything; no filtering.",
                average: "Coarse include/exclude filters.",
                high: "Arbitrary protocol/address/port predicates on the analyzed pool.",
            },
        },
        MetricDef {
            id: MetricId::DataStorage,
            name: "Data Storage",
            class: Architectural,
            description: "Average required amount of storage per megabyte of source data.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Stores a large multiple of the source data.",
                average: "Stores a bounded, configurable fraction.",
                high: "Stores compact summaries only.",
            },
        },
        MetricDef {
            id: MetricId::HostBased,
            name: "Host-based",
            class: Architectural,
            description: "Proportion of IDS input from log files, audit trails and other host data.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No host data input.",
                average: "Host data from key servers only.",
                high: "Comprehensive host instrumentation across the enclave.",
            },
        },
        MetricDef {
            id: MetricId::MultiSensorSupport,
            name: "Multi-sensor Support",
            class: Architectural,
            description: "Ability of an IDS to integrate management and input of multiple sensors or analyzers.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "Single sensor only.",
                average: "Multiple sensors with separate consoles.",
                high: "Many sensors integrated under one management and analysis view.",
            },
        },
        MetricDef {
            id: MetricId::NetworkBased,
            name: "Network-based",
            class: Architectural,
            description: "Proportion of IDS input from packet analysis and other network data.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No network visibility.",
                average: "Key segments monitored.",
                high: "Full network visibility at all relevant aggregation points.",
            },
        },
        MetricDef {
            id: MetricId::ScalableLoadBalancing,
            name: "Scalable Load-balancing",
            class: Architectural,
            description: "Ability to partition traffic into independent, balanced sensor loads, and ability of the load-balancing subprocess to scale upwards and downwards.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No load balancing",
                average: "Load balancing via static methods such as placement",
                high: "Intelligent, dynamic load balancing",
            },
        },
        MetricDef {
            id: MetricId::SystemThroughput,
            name: "System Throughput",
            class: Architectural,
            description: "Maximal data input rate that can be processed successfully by the IDS. Measured in packets per second for network-based IDSs and Mbps for host-based IDSs.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Saturates below the protected network's nominal load.",
                average: "Handles nominal load with little headroom.",
                high: "Handles the network's peak load with margin.",
            },
        },
        // --- Architectural, named only ---
        MetricDef {
            id: MetricId::AnomalyBased,
            name: "Anomaly Based",
            class: Architectural,
            description: "Degree to which detection relies on behavior-based (anomaly) mechanisms.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "No anomaly detection.",
                average: "Limited statistical detectors.",
                high: "Comprehensive trained behavioral models.",
            },
        },
        MetricDef {
            id: MetricId::AutonomousLearning,
            name: "Autonomous Learning",
            class: Architectural,
            description: "Ability of the IDS to learn or adapt its model of normal behavior without operator effort.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "All knowledge hand-configured.",
                average: "Assisted baselining during commissioning.",
                high: "Continuous unsupervised adaptation with drift safeguards.",
            },
        },
        MetricDef {
            id: MetricId::HostOsSecurity,
            name: "Host/OS Security",
            class: Architectural,
            description: "Hardening of the platforms the IDS components themselves run on.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Components run on unhardened general-purpose hosts.",
                average: "Vendor hardening guidance applied.",
                high: "Dedicated minimized platforms with mutual authentication.",
            },
        },
        MetricDef {
            id: MetricId::Interoperability,
            name: "Interoperability",
            class: Architectural,
            description: "Ability to exchange data and control with other security and network management systems.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Closed formats only.",
                average: "Export via logs/SNMP.",
                high: "Open documented interfaces for alerts, control and data.",
            },
        },
        MetricDef {
            id: MetricId::PackageContents,
            name: "Package Contents",
            class: Architectural,
            description: "Completeness of the delivered package relative to a working deployment.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "Essential components sold separately.",
                average: "Core deployment included; options extra.",
                high: "Everything needed for the reference deployment included.",
            },
        },
        MetricDef {
            id: MetricId::ProcessSecurity,
            name: "Process Security",
            class: Architectural,
            description: "Resistance of the IDS's own processes to tampering or subversion.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "Components run with excess privilege and no integrity checks.",
                average: "Least-privilege components.",
                high: "Privilege separation, integrity checking and secure failure.",
            },
        },
        MetricDef {
            id: MetricId::SignatureBased,
            name: "Signature Based",
            class: Architectural,
            description: "Degree to which detection relies on knowledge-based (signature) mechanisms.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "No signature detection.",
                average: "Static database with periodic vendor updates.",
                high: "Rich database with rapid updates and local extension.",
            },
        },
        MetricDef {
            id: MetricId::Visibility,
            name: "Visibility",
            class: Architectural,
            description: "Detectability of the IDS itself by an adversary on the monitored network.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "IDS announces itself (addresses, probes, latency).",
                average: "Passive but fingerprintable.",
                high: "Entirely passive and unaddressable.",
            },
        },
        // --- Architectural, survivability family ---
        // Measured by `idse-eval` from paired fault-free/fault-injected
        // runs over a `idse-faults` plan; static architecture analysis
        // provides the fallback score when no plan is supplied.
        MetricDef {
            id: MetricId::DetectionRetentionUnderFailure,
            name: "Detection Retention Under Failure",
            class: Architectural,
            description: "Fraction of the true-attack alerts a healthy deployment raises that are still raised while components are crashed, links partitioned or hosts exhausted.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "A single component failure silences detection entirely.",
                average: "Detection continues in degraded form; a majority of true alerts survive the fault window.",
                high: "Redundant routing and buffering keep nearly every true alert through any single failure.",
            },
        },
        MetricDef {
            id: MetricId::AlertLossRatio,
            name: "Alert Loss Ratio",
            class: Architectural,
            description: "Fraction of raised alerts that never become operator-visible because a fault ate them in transit (channel drops, dead monitor, overflowed buffers).",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "Most alerts raised during a fault window are silently lost.",
                average: "Bounded buffering saves some alerts; losses are visible but material.",
                high: "Store-and-forward delivery loses essentially no alert across outages.",
            },
        },
        MetricDef {
            id: MetricId::MeanTimeToReroute,
            name: "Mean Time to Reroute",
            class: Architectural,
            description: "Mean sim-time between a record meeting a crashed instance and a live peer accepting it (the M:M rerouting promise of the deployment architecture).",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "No rerouting: traffic for a dead instance is lost until repair.",
                average: "Failover succeeds after retries costing milliseconds per record.",
                high: "Near-instant failover: rerouting cost is microseconds and invisible at the monitor.",
            },
        },
        MetricDef {
            id: MetricId::RecoveryCompleteness,
            name: "Recovery Completeness",
            class: Architectural,
            description: "Fraction of component crashes from which the deployment returns to full service within the observation window, state replayed.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "Crashed components stay down; operators rebuild by hand.",
                average: "Components restart but buffered state is partially lost.",
                high: "Every crash self-recovers and replays its buffered state completely.",
            },
        },
        // ================= Performance (Table 3) =================
        MetricDef {
            id: MetricId::AnalysisOfCompromise,
            name: "Analysis of Compromise",
            class: Performance,
            description: "Ability to report the extent of damage and compromise due to intrusions.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Reports nothing beyond the triggering event.",
                average: "Identifies affected hosts.",
                high: "Identifies affected hosts, accounts and data with confidence levels.",
            },
        },
        MetricDef {
            id: MetricId::ErrorReportingAndRecovery,
            name: "Error Reporting and Recovery",
            class: Performance,
            description: "Appropriateness of the behavior of the IDS under error/failure conditions.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "No notification, no log, no indication that an error has occurred. Fatal errors cause system to hang indefinitely.",
                average: "Failure is logged and user is notified at some point in the future when the IDS is able. Fatal errors cause cold reboot of entire machine.",
                high: "Failure is reported near real time via attack notification channels. Fatal errors cause restart of application(s) or service(s).",
            },
        },
        MetricDef {
            id: MetricId::FirewallInteraction,
            name: "Firewall Interaction",
            class: Performance,
            description: "Ability to interact with a firewall. Perhaps to update a firewall's block list.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No firewall interaction.",
                average: "Manual export of block lists.",
                high: "Automatic, policy-driven block-list updates.",
            },
        },
        MetricDef {
            id: MetricId::InducedTrafficLatency,
            name: "Induced Traffic Latency",
            class: Performance,
            description: "Degree to which traffic is delayed by the IDS's presence or operation.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "In-line processing adds delay visible to real-time traffic.",
                average: "Small bounded delay.",
                high: "No measurable delay (passive tap).",
            },
        },
        MetricDef {
            id: MetricId::MaximalThroughputZeroLoss,
            name: "Maximal Throughput with Zero Loss",
            class: Performance,
            description: "Observed level of traffic that results in a sustained average of zero lost packets or streams. Measured in packets/sec or # of simultaneous TCP streams.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Loses packets below nominal network load.",
                average: "Zero loss at nominal load.",
                high: "Zero loss at peak load with margin.",
            },
        },
        MetricDef {
            id: MetricId::NetworkLethalDose,
            name: "Network Lethal Dose",
            class: Performance,
            description: "Observed level of network or host traffic that results in a shutdown/malfunction of IDS. Measured in packets/sec or # of simultaneous TCP streams.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Dies at loads the network can reach routinely.",
                average: "Dies only under deliberate flooding.",
                high: "Degrades gracefully; no observed lethal dose.",
            },
        },
        MetricDef {
            id: MetricId::ObservedFalseNegativeRatio,
            name: "Observed False Negative Ratio",
            class: Performance,
            description: "Ratio of actual attacks that are not detected to the total transactions.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Misses most replayed attacks.",
                average: "Misses a minority of replayed attacks.",
                high: "Detects essentially all replayed attacks.",
            },
        },
        MetricDef {
            id: MetricId::ObservedFalsePositiveRatio,
            name: "Observed False Positive Ratio",
            class: Performance,
            description: "Ratio of alarms raised that do not correspond to actual attacks to the total transactions.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Alarms constantly on benign traffic.",
                average: "Occasional benign alarms.",
                high: "Essentially no benign alarms at the operating point.",
            },
        },
        MetricDef {
            id: MetricId::OperationalPerformanceImpact,
            name: "Operational Performance Impact",
            class: Performance,
            description: "Negative impact on the host processing capacity due to the operation of the IDS. Expressed as a percentage of processing power.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Consumes 20% or more of monitored hosts (C2-level audit burden).",
                average: "Consumes the nominal 3–5% event-logging share.",
                high: "No measurable host impact (network-only).",
            },
        },
        MetricDef {
            id: MetricId::RouterInteraction,
            name: "Router Interaction",
            class: Performance,
            description: "Degree to which the IDS can interact with a router. Perhaps it might redirect attacker traffic to a honeypot.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No router interaction.",
                average: "Manual reconfiguration suggestions.",
                high: "Automatic policy-driven redirection/filtering.",
            },
        },
        MetricDef {
            id: MetricId::SnmpInteraction,
            name: "SNMP Interaction",
            class: Performance,
            description: "Ability of the IDS to send an SNMP trap to one or more network devices in response to a detected attack.",
            methods: BOTH,
            in_paper_table: true,
            anchors: Anchors {
                low: "No SNMP capability.",
                average: "Traps to a single configured manager.",
                high: "Configurable traps to multiple devices with standard MIBs.",
            },
        },
        MetricDef {
            id: MetricId::Timeliness,
            name: "Timeliness",
            class: Performance,
            description: "Average/maximal time between an intrusion's occurrence and its being reported.",
            methods: ANALYSIS,
            in_paper_table: true,
            anchors: Anchors {
                low: "Reports minutes or more after the intrusion.",
                average: "Reports within seconds.",
                high: "Reports within milliseconds — inside a real-time response window.",
            },
        },
        // --- Performance, named only ---
        MetricDef {
            id: MetricId::AnalysisOfIntruderIntent,
            name: "Analysis of Intruder Intent",
            class: Performance,
            description: "Ability to characterize what the intruder was trying to accomplish.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "No intent analysis.",
                average: "Class-level characterization.",
                high: "Correlated campaign-level intent assessment.",
            },
        },
        MetricDef {
            id: MetricId::ClarityOfReports,
            name: "Clarity of Reports",
            class: Performance,
            description: "Understandability and actionability of generated reports.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Raw event dumps.",
                average: "Structured summaries.",
                high: "Actionable, prioritized reporting with drill-down.",
            },
        },
        MetricDef {
            id: MetricId::EffectivenessOfGeneratedFilters,
            name: "Effectiveness of Generated Filters",
            class: Performance,
            description: "Accuracy of automatically generated attack filters (blocking attacks without blocking legitimate users).",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "Generated filters block legitimate users.",
                average: "Filters block attackers with occasional collateral.",
                high: "Filters surgically block attack traffic only.",
            },
        },
        MetricDef {
            id: MetricId::EvidenceCollection,
            name: "Evidence Collection",
            class: Performance,
            description: "Ability to preserve forensically useful records of intrusions.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "No evidence retained.",
                average: "Alert-adjacent packet capture.",
                high: "Tamper-evident full-session evidence with chain of custody.",
            },
        },
        MetricDef {
            id: MetricId::InformationSharing,
            name: "Information Sharing",
            class: Performance,
            description: "Ability to share threat information with other IDSs or organizations.",
            methods: OPEN,
            in_paper_table: false,
            anchors: Anchors {
                low: "No sharing.",
                average: "Manual export.",
                high: "Automated standard-format sharing.",
            },
        },
        MetricDef {
            id: MetricId::NotificationUserAlerts,
            name: "Notification: User Alerts",
            class: Performance,
            description: "Variety and reliability of operator notification channels (console, email, pager…).",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "Console-only, easily missed.",
                average: "Console plus email.",
                high: "Multiple prioritized channels with acknowledgment tracking.",
            },
        },
        MetricDef {
            id: MetricId::ProgramInteraction,
            name: "Program Interaction",
            class: Performance,
            description: "Ability to invoke external programs in response to detections.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "No hooks.",
                average: "Fixed response scripts.",
                high: "Arbitrary parameterized response programs with safeguards.",
            },
        },
        MetricDef {
            id: MetricId::SessionRecordingAndPlayback,
            name: "Session Recording and Playback",
            class: Performance,
            description: "Ability to record suspect sessions and replay them for analysis.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "No recording.",
                average: "Packet capture without reconstruction.",
                high: "Full session reconstruction and interactive playback.",
            },
        },
        MetricDef {
            id: MetricId::ThreatCorrelation,
            name: "Threat Correlation",
            class: Performance,
            description: "Ability to correlate one attack with another or determine that no such correlation is appropriate.",
            methods: ANALYSIS,
            in_paper_table: false,
            anchors: Anchors {
                low: "Every alert independent.",
                average: "Time/source grouping.",
                high: "Cross-sensor, cross-time campaign correlation.",
            },
        },
        MetricDef {
            id: MetricId::TrendAnalysis,
            name: "Trend Analysis",
            class: Performance,
            description: "Ability to report threat trends over time.",
            methods: BOTH,
            in_paper_table: false,
            anchors: Anchors {
                low: "No historical view.",
                average: "Fixed-period summaries.",
                high: "Flexible historical querying and trend detection.",
            },
        },
    ]
}

/// Look up one metric's definition.
pub fn metric_def(id: MetricId) -> MetricDef {
    catalog().into_iter().find(|m| m.id == id).expect("catalog covers every MetricId")
}

/// All metrics of a class, in catalog order.
pub fn metrics_of_class(class: MetricClass) -> Vec<MetricDef> {
    catalog().into_iter().filter(|m| m.class == class).collect()
}

/// A 64-bit FNV-1a fingerprint over every field of every catalog entry,
/// in catalog order. Downstream stores stamp this into persisted run
/// headers: any change to a metric's identity, wording, anchors, or
/// table membership moves the fingerprint, so historical runs no longer
/// claim comparability with the revised catalog.
pub fn fingerprint() -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |text: &str| {
        for byte in text.bytes().chain(std::iter::once(0x1f)) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix("idse-core-catalog/v1");
    for def in catalog() {
        mix(&format!("{:?}", def.id));
        mix(def.name);
        mix(def.class.name());
        mix(def.description);
        for method in def.methods {
            mix(&format!("{method:?}"));
        }
        mix(if def.in_paper_table { "table" } else { "listed" });
        mix(def.anchors.low);
        mix(def.anchors.average);
        mix(def.anchors.high);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size_matches_paper_inventory() {
        // The paper's inventory — 6+8 logistical, 8+8 architectural,
        // 12+10 performance = 52 — plus the four-survivability extension
        // of the architectural class = 56.
        let all = catalog();
        assert_eq!(all.len(), 56);
        assert_eq!(metrics_of_class(Logistical).len(), 14);
        assert_eq!(metrics_of_class(Architectural).len(), 20);
        assert_eq!(metrics_of_class(Performance).len(), 22);
    }

    #[test]
    fn table_selected_counts_match_paper_tables() {
        let shown =
            |c: MetricClass| metrics_of_class(c).into_iter().filter(|m| m.in_paper_table).count();
        assert_eq!(shown(Logistical), 6, "Table 1 shows 6 metrics");
        assert_eq!(shown(Architectural), 8, "Table 2 shows 8 metrics");
        assert_eq!(shown(Performance), 12, "Table 3 shows 12 metrics");
    }

    #[test]
    fn ids_are_unique_and_total() {
        let all = catalog();
        let ids: std::collections::BTreeSet<MetricId> = all.iter().map(|m| m.id).collect();
        assert_eq!(ids.len(), all.len(), "no duplicate ids");
        // Every id can be looked up.
        for m in &all {
            assert_eq!(metric_def(m.id).name, m.name);
        }
    }

    #[test]
    fn every_metric_is_fully_defined() {
        for m in catalog() {
            assert!(!m.name.is_empty());
            assert!(!m.description.is_empty(), "{}", m.name);
            assert!(!m.methods.is_empty(), "{}", m.name);
            assert!(!m.anchors.low.is_empty() && !m.anchors.high.is_empty(), "{}", m.name);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint(), fingerprint(), "pure function of the catalog");
        assert_ne!(fingerprint(), 0xcbf2_9ce4_8422_2325, "mixes real content");
    }

    #[test]
    fn paper_verbatim_anchors_survive() {
        let d = metric_def(MetricId::ScalableLoadBalancing);
        assert_eq!(d.anchors.low, "No load balancing");
        assert_eq!(d.anchors.high, "Intelligent, dynamic load balancing");
        let e = metric_def(MetricId::ErrorReportingAndRecovery);
        assert!(e.anchors.average.contains("cold reboot"));
    }
}
