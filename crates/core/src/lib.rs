//! # idse-core — the metric scorecard methodology
//!
//! The paper's primary contribution: "a testing methodology we developed to
//! evaluate ID products against a user-definable, dynamically-changing
//! standard … The key distinctive of our approach is that we do not compare
//! IDSs against each other, but against a standard derived from mapping
//! formalized user requirements to a standard set of metrics."
//!
//! The three key features (§3.1), each implemented here:
//!
//! 1. **Well-defined metrics** — [`catalog`] defines all 52 metrics the
//!    paper lists (the tables' selected metrics *and* the ones named but
//!    not shown) plus a four-metric survivability extension of the
//!    architectural class (56 total), each observable, reproducible,
//!    quantifiable and characteristic, grouped into the paper's three
//!    classes and annotated with its observation methods and
//!    low/average/high anchor examples.
//! 2. **Discrete scoring** — [`score::DiscreteScore`] carries the 0–4
//!    scale; a [`score::Scorecard`] is one product's complete rating.
//! 3. **Flexible weighting** — [`score::WeightSet`] accepts any consistent
//!    real weights (negative allowed) and computes the Figure 5 sum
//!    `S = Σ_j Σ_i (U_ij · W_ij)`.
//!
//! [`requirements`] implements the §3.3 / Figure 6 algorithm mapping a
//! partial ordering of user requirements onto metric weights, with the
//! paper's real-time distributed weighting guidance as a preset.
//! [`report`] renders scorecards as the text tables the benches print.
//!
//! # Example
//!
//! ```
//! use idse_core::{DiscreteScore, MetricId, RequirementSet, Scorecard};
//!
//! // Score a system on two metrics (normally idse-eval fills all 56).
//! let mut card = Scorecard::new("ExampleIDS 1.0");
//! card.set_with_note(MetricId::Timeliness, DiscreteScore::new(4), "mean 80 ms");
//! card.set(MetricId::ObservedFalseNegativeRatio, DiscreteScore::new(2));
//!
//! // Derive weights from the procurer's requirements (Figure 6) and
//! // compute the weighted score (Figure 5).
//! let weights = RequirementSet::realtime_distributed().derive();
//! let total = weights.weighted_total(&card);
//! assert!(total > 0.0 && total <= weights.ideal_total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod metric;
pub mod report;
pub mod requirements;
pub mod score;

pub use metric::{MetricClass, MetricDef, MetricId, ObservationMethod};
pub use requirements::{Requirement, RequirementSet};
pub use score::{DiscreteScore, Scorecard, WeightSet};
