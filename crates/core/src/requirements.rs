//! Requirements → weights (paper §3.3, Figure 6).
//!
//! "The user first lists his IDS requirements in a partial ordering from
//! least important to most … the first requirement (least important)
//! should be assigned the lowest weight (e.g., one). Other requirements
//! may then be assigned increasing weights in proportion to their relative
//! importance … After the requirements are weighted, each metric is
//! assigned a weight equal to the sum of the weights of the requirements
//! it contributes to."

use crate::metric::MetricId;
use crate::score::WeightSet;
use serde::{Deserialize, Serialize};

/// One formalized user requirement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Requirement {
    /// Short name.
    pub name: String,
    /// The stated requirement (positive form, per §3.3).
    pub statement: String,
    /// Importance weight (higher = more important; duplicates allowed
    /// since the ordering is partial).
    pub weight: f64,
    /// The metrics this requirement contributes to.
    pub contributes: Vec<MetricId>,
}

/// A procurer's requirement set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequirementSet {
    /// Name of the procuring organization/system profile.
    pub name: String,
    /// The requirements.
    pub requirements: Vec<Requirement>,
}

impl RequirementSet {
    /// An empty set.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), requirements: Vec::new() }
    }

    /// Add a requirement.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        weight: f64,
        contributes: Vec<MetricId>,
    ) -> &mut Self {
        self.requirements.push(Requirement {
            name: name.into(),
            statement: statement.into(),
            weight,
            contributes,
        });
        self
    }

    /// Assign weights from a partial ordering (least → most important):
    /// requirement `k` gets weight `k + 1`. This is the paper's suggested
    /// starting algorithm; weights can then be tuned by hand.
    pub fn weights_from_order(&mut self) {
        for (k, r) in self.requirements.iter_mut().enumerate() {
            r.weight = (k + 1) as f64;
        }
    }

    /// Derive the metric weighting: each metric's weight is the sum of the
    /// weights of the requirements contributing to it (Figure 6).
    pub fn derive(&self) -> WeightSet {
        let mut w = WeightSet::new(self.name.clone());
        for r in &self.requirements {
            for &m in &r.contributes {
                w.add(m, r.weight);
            }
        }
        w
    }

    /// Sanity issues with the set (non-positive weights, requirements
    /// contributing to nothing). Empty = consistent.
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        for r in &self.requirements {
            if r.weight <= 0.0 {
                issues.push(format!(
                    "requirement {:?} has non-positive weight {} (state requirements positively; use negative *metric* weights for counterproductive features)",
                    r.name, r.weight
                ));
            }
            if r.contributes.is_empty() {
                issues.push(format!("requirement {:?} contributes to no metric", r.name));
            }
        }
        issues
    }

    /// The paper's Figure 6 worked example: requirement weights including
    /// 1, 2.5 and 3 mapping onto six metrics with derived weights
    /// 3, 6.5, 5, 0, 0, 8. The six metrics are stand-ins (the figure is
    /// schematic); what the example demonstrates is the sum rule.
    pub fn figure6_example() -> (RequirementSet, [MetricId; 6]) {
        let metrics = [
            MetricId::SystemThroughput,           // derived 3
            MetricId::Timeliness,                 // derived 6.5
            MetricId::ScalableLoadBalancing,      // derived 5
            MetricId::OutsourcedSolution,         // derived 0
            MetricId::TrainingSupport,            // derived 0
            MetricId::ObservedFalseNegativeRatio, // derived 8
        ];
        let mut set = RequirementSet::new("figure-6-example");
        set.push("R1", "Lowest-importance requirement", 1.0, vec![metrics[0], metrics[1]]);
        set.push("R2", "Low-mid importance requirement", 2.5, vec![metrics[1]]);
        set.push("R3", "Mid importance requirement", 3.0, vec![metrics[1], metrics[2], metrics[5]]);
        set.push("R4", "Second-lowest importance", 2.0, vec![metrics[0], metrics[2]]);
        set.push("R5", "Most important requirement", 5.0, vec![metrics[5]]);
        // Derived: m0 = 1+2 = 3, m1 = 1+2.5+3 = 6.5, m2 = 3+2 = 5,
        // m3 = m4 = 0, m5 = 3+5 = 8 — the figure's metric weights.
        (set, metrics)
    }

    /// The §3.3 real-time distributed weighting: "For real-time systems,
    /// emphasis should be placed on speed and accuracy of attack
    /// recognition and on the ability of the IDS to automatically react
    /// via firewall, router, SNMP, etc. … Distributed systems then, should
    /// put emphasis on reducing the false negative ratio to the lowest
    /// possible level accepting an increased false positive alert ratio in
    /// the process. Logging of historical traffic is also key."
    pub fn realtime_distributed() -> RequirementSet {
        let mut set = RequirementSet::new("realtime-distributed-cluster");
        set.push(
            "evaluation-support",
            "The product must be evaluable and supportable within the program office's acquisition process",
            1.0,
            vec![
                MetricId::EvaluationCopyAvailability,
                MetricId::QualityOfDocumentation,
                MetricId::QualityOfTechnicalSupport,
                MetricId::TrainingSupport,
            ],
        );
        set.push(
            "affordable-at-scale",
            "Procurement and operation must be affordable across many platforms",
            2.0,
            vec![
                MetricId::ThreeYearCostOfOwnership,
                MetricId::LicenseManagement,
                MetricId::LevelOfAdministration,
            ],
        );
        set.push(
            "local-control",
            "All monitoring must be operable and controllable locally (no external entity may scan or observe the enclave)",
            3.0,
            vec![MetricId::OutsourcedSolution, MetricId::ProcessSecurity, MetricId::HostOsSecurity],
        );
        set.push(
            "manageable-distributed",
            "The IDS must be securely manageable across a distributed multi-host enclave",
            4.0,
            vec![
                MetricId::DistributedManagement,
                MetricId::MultiSensorSupport,
                MetricId::EaseOfConfiguration,
                MetricId::EaseOfPolicyMaintenance,
            ],
        );
        set.push(
            "grow-with-system",
            "Monitoring must scale up and down as the cluster grows or degrades",
            4.0, // duplicate weights are acceptable (partial ordering)
            vec![
                MetricId::ScalableLoadBalancing,
                MetricId::MultiSensorSupport,
                MetricId::SystemThroughput,
            ],
        );
        set.push(
            "bounded-resource-overhead",
            "The IDS must not consume resources needed by the real-time mission computing",
            5.0,
            vec![
                MetricId::OperationalPerformanceImpact,
                MetricId::PlatformRequirements,
                MetricId::InducedTrafficLatency,
                MetricId::DataStorage,
            ],
        );
        set.push(
            "graceful-failure",
            "The IDS must fail in a mode that does not hamper system performance and must report its own failures",
            6.0,
            vec![
                MetricId::ErrorReportingAndRecovery,
                MetricId::NetworkLethalDose,
                MetricId::MaximalThroughputZeroLoss,
            ],
        );
        set.push(
            "automated-response",
            "Detected attacks must trigger automated, near-real-time response through the network infrastructure",
            7.0,
            vec![
                MetricId::FirewallInteraction,
                MetricId::RouterInteraction,
                MetricId::SnmpInteraction,
                MetricId::EffectivenessOfGeneratedFilters,
                MetricId::ProgramInteraction,
            ],
        );
        set.push(
            "forensic-history",
            "Historical traffic must be retained to unravel trust-chain compromises after the fact",
            7.0,
            vec![
                MetricId::EvidenceCollection,
                MetricId::SessionRecordingAndPlayback,
                MetricId::ThreatCorrelation,
                MetricId::AnalysisOfCompromise,
                MetricId::TrendAnalysis,
            ],
        );
        set.push(
            "fast-recognition",
            "Attacks must be recognized within a real-time response window",
            8.0,
            vec![MetricId::Timeliness, MetricId::SystemThroughput, MetricId::AdjustableSensitivity],
        );
        set.push(
            "minimal-false-negatives",
            "The false negative ratio must be as low as possible, accepting an increased false positive ratio",
            9.0,
            vec![
                MetricId::ObservedFalseNegativeRatio,
                MetricId::AdjustableSensitivity,
                MetricId::AnomalyBased,
                MetricId::HostBased,
            ],
        );
        set
    }

    /// A contrasting e-commerce weighting: uptime and operator workload
    /// dominate; false positives are costlier than an occasional miss.
    pub fn ecommerce_site() -> RequirementSet {
        let mut set = RequirementSet::new("ecommerce-web-site");
        set.push(
            "cheap-to-run",
            "One part-time administrator must be able to run the IDS",
            3.0,
            vec![
                MetricId::LevelOfAdministration,
                MetricId::EaseOfConfiguration,
                MetricId::ClarityOfReports,
            ],
        );
        set.push(
            "low-false-alarms",
            "Alarms must be rare enough to stay credible to operators",
            5.0,
            vec![MetricId::ObservedFalsePositiveRatio, MetricId::AdjustableSensitivity],
        );
        set.push(
            "web-throughput",
            "Monitoring must keep up with seasonal web traffic peaks",
            4.0,
            vec![MetricId::SystemThroughput, MetricId::MaximalThroughputZeroLoss],
        );
        set.push(
            "managed-service-ok",
            "Outsourced monitoring is acceptable and even desirable",
            2.0,
            vec![MetricId::OutsourcedSolution, MetricId::QualityOfTechnicalSupport],
        );
        set.push(
            "signature-coverage",
            "Known web attacks must be recognized by name",
            4.0,
            vec![MetricId::SignatureBased, MetricId::ObservedFalseNegativeRatio],
        );
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_derivation_matches_paper_numbers() {
        let (set, metrics) = RequirementSet::figure6_example();
        let w = set.derive();
        assert_eq!(w.get(metrics[0]), 3.0);
        assert_eq!(w.get(metrics[1]), 6.5);
        assert_eq!(w.get(metrics[2]), 5.0);
        assert_eq!(w.get(metrics[3]), 0.0);
        assert_eq!(w.get(metrics[4]), 0.0);
        assert_eq!(w.get(metrics[5]), 8.0);
    }

    #[test]
    fn ordering_assigns_increasing_weights() {
        let mut set = RequirementSet::new("t");
        set.push("least", "s", 0.0, vec![MetricId::Timeliness]);
        set.push("mid", "s", 0.0, vec![MetricId::Timeliness]);
        set.push("most", "s", 0.0, vec![MetricId::SystemThroughput]);
        set.weights_from_order();
        assert_eq!(set.requirements[0].weight, 1.0);
        assert_eq!(set.requirements[2].weight, 3.0);
        let w = set.derive();
        assert_eq!(w.get(MetricId::Timeliness), 3.0); // 1 + 2
        assert_eq!(w.get(MetricId::SystemThroughput), 3.0);
    }

    #[test]
    fn validation_flags_problems() {
        let mut set = RequirementSet::new("t");
        set.push("bad-weight", "s", -1.0, vec![MetricId::Timeliness]);
        set.push("dangling", "s", 2.0, vec![]);
        let issues = set.validate();
        assert_eq!(issues.len(), 2);
        assert!(RequirementSet::realtime_distributed().validate().is_empty());
        assert!(RequirementSet::ecommerce_site().validate().is_empty());
    }

    #[test]
    fn realtime_weighting_reflects_section_3_3() {
        let w = RequirementSet::realtime_distributed().derive();
        // FN ratio must outweigh FP ratio for the distributed profile.
        assert!(
            w.get(MetricId::ObservedFalseNegativeRatio)
                > w.get(MetricId::ObservedFalsePositiveRatio)
        );
        // Timeliness and automated response are heavily weighted.
        assert!(w.get(MetricId::Timeliness) >= 8.0);
        assert!(w.get(MetricId::FirewallInteraction) >= 7.0);
        // Requirements sharing a metric accumulate.
        assert!(w.get(MetricId::SystemThroughput) >= 12.0);
    }

    #[test]
    fn contrasting_profiles_rank_fp_fn_oppositely() {
        let rt = RequirementSet::realtime_distributed().derive();
        let ec = RequirementSet::ecommerce_site().derive();
        assert!(
            rt.get(MetricId::ObservedFalseNegativeRatio)
                > rt.get(MetricId::ObservedFalsePositiveRatio)
        );
        assert!(
            ec.get(MetricId::ObservedFalsePositiveRatio)
                > ec.get(MetricId::ObservedFalseNegativeRatio)
        );
    }
}
