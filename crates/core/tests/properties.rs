//! Property-based tests for the scorecard algebra (Figure 5 / Figure 6).

use idse_core::catalog::catalog;
use idse_core::{DiscreteScore, MetricClass, MetricId, RequirementSet, Scorecard, WeightSet};
use proptest::prelude::*;

fn all_ids() -> Vec<MetricId> {
    catalog().into_iter().map(|m| m.id).collect()
}

fn arb_card() -> impl Strategy<Value = Scorecard> {
    prop::collection::vec(0u8..=4, 56).prop_map(|scores| {
        let mut c = Scorecard::new("prop");
        for (id, s) in all_ids().into_iter().zip(scores) {
            c.set(id, DiscreteScore::new(s));
        }
        c
    })
}

fn arb_weights() -> impl Strategy<Value = WeightSet> {
    prop::collection::vec(-5.0f64..5.0, 56).prop_map(|ws| {
        let mut w = WeightSet::new("prop");
        for (id, x) in all_ids().into_iter().zip(ws) {
            w.set(id, x);
        }
        w
    })
}

proptest! {
    /// Figure 5 as written: the weighted total equals the naive sum over
    /// the catalog.
    #[test]
    fn weighted_total_equals_naive_sum(card in arb_card(), weights in arb_weights()) {
        let naive: f64 = all_ids()
            .into_iter()
            .map(|id| f64::from(card.get(id).unwrap().value()) * weights.get(id))
            .sum();
        prop_assert!((weights.weighted_total(&card) - naive).abs() < 1e-9);
    }

    /// Class subtotals partition the total: S = S_1 + S_2 + S_3.
    #[test]
    fn class_scores_partition_total(card in arb_card(), weights in arb_weights()) {
        let parts: f64 = MetricClass::ALL
            .iter()
            .map(|&c| weights.class_score(&card, c))
            .sum();
        prop_assert!((weights.weighted_total(&card) - parts).abs() < 1e-9);
    }

    /// Weighting is linear: total under (w1 + w2) = total(w1) + total(w2).
    #[test]
    fn weighting_is_linear(card in arb_card(), w1 in arb_weights(), w2 in arb_weights()) {
        let mut sum = WeightSet::new("sum");
        for id in all_ids() {
            sum.set(id, w1.get(id) + w2.get(id));
        }
        let lhs = sum.weighted_total(&card);
        let rhs = w1.weighted_total(&card) + w2.weighted_total(&card);
        prop_assert!((lhs - rhs).abs() < 1e-6);
    }

    /// No scorecard beats the ideal standard under non-negative weights,
    /// and a perfect card achieves it exactly.
    #[test]
    fn ideal_bounds_all_cards(card in arb_card(), weights in arb_weights()) {
        let mut nonneg = WeightSet::new("nn");
        for id in all_ids() {
            nonneg.set(id, weights.get(id).abs());
        }
        prop_assert!(nonneg.weighted_total(&card) <= nonneg.ideal_total() + 1e-9);
        let mut perfect = Scorecard::new("perfect");
        for id in all_ids() {
            perfect.set(id, DiscreteScore::MAX);
        }
        prop_assert!((nonneg.weighted_total(&perfect) - nonneg.ideal_total()).abs() < 1e-9);
    }

    /// Figure 6: the derived weight of each metric is exactly the sum of
    /// contributing requirement weights.
    #[test]
    fn requirement_derivation_is_additive(
        weights in prop::collection::vec(0.5f64..10.0, 1..10),
        edges in prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..5), 1..10),
    ) {
        let ids = all_ids();
        let n = weights.len().min(edges.len());
        let mut set = RequirementSet::new("prop");
        let mut expected: std::collections::BTreeMap<MetricId, f64> = Default::default();
        for k in 0..n {
            let contributes: Vec<MetricId> = {
                // Dedup: a requirement contributes to a metric at most once.
                let mut seen = std::collections::BTreeSet::new();
                edges[k]
                    .iter()
                    .map(|ix| ids[ix.index(ids.len())])
                    .filter(|m| seen.insert(*m))
                    .collect()
            };
            for &m in &contributes {
                *expected.entry(m).or_insert(0.0) += weights[k];
            }
            set.push(format!("r{k}"), "s", weights[k], contributes);
        }
        let derived = set.derive();
        for id in ids {
            let want = expected.get(&id).copied().unwrap_or(0.0);
            prop_assert!((derived.get(id) - want).abs() < 1e-9);
        }
    }

    /// Discrete scores clamp and round stably.
    #[test]
    fn discrete_score_from_f64_is_clamped(x in -100.0f64..100.0) {
        let s = DiscreteScore::from_f64(x);
        prop_assert!(s.value() <= 4);
        if (0.0..=4.0).contains(&x) {
            prop_assert!((f64::from(s.value()) - x).abs() <= 0.5);
        }
    }
}
