//! Property-based tests for attack scenarios: every generated packet is
//! labeled, timing respects the scenario parameters, and campaigns are
//! pure functions of their seeds.

use idse_attacks::campaign::{Campaign, CampaignConfig};
use idse_attacks::flood::SynFlood;
use idse_attacks::scan::{HostSweep, PortScan};
use idse_attacks::tunnel::{TunnelCarrier, Tunneling};
use idse_attacks::Scenario;
use idse_sim::{RngStream, SimDuration, SimTime};
use idse_traffic::SiteProfile;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packet of every scenario instance carries the right label and
    /// starts no earlier than the scheduled time.
    #[test]
    fn scenarios_label_everything(seed in any::<u64>(), start_ms in 0u64..5_000, id in 1u32..1000) {
        let start = SimTime::from_millis(start_ms);
        let scenarios: Vec<Box<dyn Scenario>> = vec![
            Box::new(PortScan { port_count: 30, ..PortScan::new(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 0, 1, 1)) }),
            Box::new(HostSweep {
                attacker: Ipv4Addr::new(66, 1, 1, 2),
                block: "10.0.1.0/24".parse().expect("static"),
                host_count: 10,
                port: 22,
                rate: 40.0,
            }),
            Box::new(SynFlood { rate: 500.0, duration: SimDuration::from_millis(400), ..SynFlood::new(Ipv4Addr::new(10, 0, 1, 1)) }),
            Box::new(Tunneling { carrier: TunnelCarrier::IcmpEcho, bytes: 2048, ..Tunneling::new(Ipv4Addr::new(10, 0, 0, 4), Ipv4Addr::new(198, 18, 1, 1)) }),
        ];
        for s in &scenarios {
            let mut rng = RngStream::derive(seed, "label");
            let t = s.generate(start, id, &mut rng);
            prop_assert!(!t.is_empty());
            for r in t.records() {
                let truth = r.truth.expect("attack packets are labeled");
                prop_assert_eq!(truth.attack_id, id);
                prop_assert_eq!(truth.class, s.class());
                prop_assert!(r.at >= start);
            }
        }
    }

    /// Scenario generation is deterministic in (seed, start, id).
    #[test]
    fn scenarios_are_deterministic(seed in any::<u64>()) {
        let scan = PortScan::new(Ipv4Addr::new(66, 2, 2, 2), Ipv4Addr::new(10, 0, 1, 5));
        let mut r1 = RngStream::derive(seed, "det");
        let mut r2 = RngStream::derive(seed, "det");
        let a = scan.generate(SimTime::ZERO, 7, &mut r1);
        let b = scan.generate(SimTime::ZERO, 7, &mut r2);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            prop_assert_eq!(x.at, y.at);
            prop_assert_eq!(&x.packet, &y.packet);
        }
    }

    /// Campaigns assign dense, unique attack ids starting at 1, whatever
    /// the seed and intensity.
    #[test]
    fn campaign_ids_are_dense(seed in any::<u64>(), intensity in 1u32..4) {
        let cfg = CampaignConfig { span: SimDuration::from_secs(30), seed, intensity };
        let c = Campaign::standard_mix(&SiteProfile::office_lan(), &cfg);
        let trace = c.generate(&cfg);
        let ids: std::collections::BTreeSet<u32> =
            trace.attack_instances().iter().map(|g| g.attack_id).collect();
        prop_assert_eq!(ids.len(), c.len());
        prop_assert_eq!(*ids.iter().next().expect("nonempty"), 1);
        prop_assert_eq!(*ids.iter().last().expect("nonempty"), c.len() as u32);
    }

    /// Flood packet counts follow rate × duration exactly.
    #[test]
    fn flood_count_formula(rate in 100.0f64..5_000.0, ms in 100u64..2_000) {
        let f = SynFlood {
            rate,
            duration: SimDuration::from_millis(ms),
            ..SynFlood::new(Ipv4Addr::new(10, 0, 1, 1))
        };
        let mut rng = RngStream::derive(1, "fc");
        let t = f.generate(SimTime::ZERO, 1, &mut rng);
        prop_assert_eq!(t.len() as u64, f.packet_count());
    }
}
