//! Reconnaissance: port scans and host sweeps.
//!
//! Scans are the easiest attack class for both detection mechanisms — a
//! burst of SYNs to many ports (or many hosts) is both a known signature
//! pattern and a rate/entropy anomaly — so they anchor the "easy" end of
//! the per-class detection table in the evaluation.

use crate::Scenario;
use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_net::Cidr;
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// A TCP SYN scan of many ports on one target.
#[derive(Debug, Clone)]
pub struct PortScan {
    /// Scanning host.
    pub attacker: Ipv4Addr,
    /// Scanned host.
    pub target: Ipv4Addr,
    /// First port probed.
    pub first_port: u16,
    /// Number of ports probed.
    pub port_count: u16,
    /// Probes per second.
    pub rate: f64,
}

impl PortScan {
    /// A default fast scan of the first 256 ports at 200 probes/s.
    pub fn new(attacker: Ipv4Addr, target: Ipv4Addr) -> Self {
        Self { attacker, target, first_port: 1, port_count: 256, rate: 200.0 }
    }
}

impl Scenario for PortScan {
    fn class(&self) -> AttackClass {
        AttackClass::PortScan
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let gap = SimDuration::from_secs_f64(1.0 / self.rate.max(1e-6));
        let mut t = start;
        for i in 0..self.port_count {
            let port = self.first_port.wrapping_add(i);
            let syn = Packet::tcp(
                Ipv4Header::simple(self.attacker, self.target),
                TcpHeader {
                    src_port: 40000 + (rng.uniform_u64(0, 20000) as u16),
                    dst_port: port,
                    seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 1024,
                },
                Vec::new(),
            );
            trace.push_attack(t, syn, truth);
            // Closed ports answer RST (attributable to the scan instance).
            if rng.chance(0.9) {
                let rst = Packet::tcp(
                    Ipv4Header::simple(self.target, self.attacker),
                    TcpHeader {
                        src_port: port,
                        dst_port: 40000,
                        seq: 0,
                        ack: 0,
                        flags: TcpFlags::RST,
                        window: 0,
                    },
                    Vec::new(),
                );
                trace.push_attack(t + SimDuration::from_micros(300), rst, truth);
            }
            t += gap;
        }
        trace.finish();
        trace
    }
}

/// A sweep of one port across many hosts in a block.
#[derive(Debug, Clone)]
pub struct HostSweep {
    /// Scanning host.
    pub attacker: Ipv4Addr,
    /// Block being swept.
    pub block: Cidr,
    /// Number of hosts probed.
    pub host_count: u32,
    /// The service port probed on every host.
    pub port: u16,
    /// Probes per second.
    pub rate: f64,
}

impl Scenario for HostSweep {
    fn class(&self) -> AttackClass {
        AttackClass::HostSweep
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let gap = SimDuration::from_secs_f64(1.0 / self.rate.max(1e-6));
        let mut t = start;
        for i in 1..=self.host_count {
            let target = self.block.host(i);
            let syn = Packet::tcp(
                Ipv4Header::simple(self.attacker, target),
                TcpHeader {
                    src_port: 40000 + (rng.uniform_u64(0, 20000) as u16),
                    dst_port: self.port,
                    seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 1024,
                },
                Vec::new(),
            );
            trace.push_attack(t, syn, truth);
            t += gap;
        }
        trace.finish();
        trace
    }
}

/// A stealth (low-and-slow) port scan: the same coverage as [`PortScan`],
/// but paced below one probe per detector window, so per-second distinct
/// counters never accumulate. 2002-era scanners already offered exactly
/// this ("paranoid" timing); it is the canonical evasion of windowed
/// thresholds and gives the evaluation a reconnaissance variant that is
/// *structurally* hard for every simulated product.
#[derive(Debug, Clone)]
pub struct StealthScan {
    /// Scanning host.
    pub attacker: Ipv4Addr,
    /// Scanned host.
    pub target: Ipv4Addr,
    /// First port probed.
    pub first_port: u16,
    /// Number of ports probed.
    pub port_count: u16,
    /// Gap between probes — must exceed the detectors' one-second window
    /// for the scan to be stealthy.
    pub probe_gap: SimDuration,
}

impl StealthScan {
    /// A default stealth scan: 24 ports, one probe every 2.5 seconds.
    pub fn new(attacker: Ipv4Addr, target: Ipv4Addr) -> Self {
        Self {
            attacker,
            target,
            first_port: 1,
            port_count: 24,
            probe_gap: SimDuration::from_millis(2500),
        }
    }
}

impl Scenario for StealthScan {
    fn class(&self) -> AttackClass {
        AttackClass::PortScan
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let mut t = start;
        for i in 0..self.port_count {
            let port = self.first_port.wrapping_add(i);
            let syn = Packet::tcp(
                Ipv4Header::simple(self.attacker, self.target),
                TcpHeader {
                    src_port: 40000 + (rng.uniform_u64(0, 20000) as u16),
                    dst_port: port,
                    seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 1024,
                },
                Vec::new(),
            );
            trace.push_attack(t, syn, truth);
            // Slight jitter so the cadence itself is not a signature.
            t = t + self.probe_gap + SimDuration::from_millis(rng.uniform_u64(0, 400));
        }
        trace.finish();
        trace
    }
}

/// A distributed scan: the target set of one [`PortScan`] divided among
/// many attacking sources, each of which stays under every per-source
/// threshold. Defeats per-source counters the way the stealth scan
/// defeats per-window ones.
#[derive(Debug, Clone)]
pub struct DistributedScan {
    /// Attacking sources (each probes a slice of the port range).
    pub attackers: Vec<Ipv4Addr>,
    /// Scanned host.
    pub target: Ipv4Addr,
    /// Total ports probed across all sources.
    pub port_count: u16,
    /// Probes per second per source.
    pub per_source_rate: f64,
}

impl DistributedScan {
    /// A default 16-source scan of 256 ports.
    pub fn new(target: Ipv4Addr) -> Self {
        Self {
            attackers: (0..16).map(|i| Ipv4Addr::new(67, 44, i as u8 + 1, 9)).collect(),
            target,
            port_count: 256,
            per_source_rate: 2.0,
        }
    }
}

impl Scenario for DistributedScan {
    fn class(&self) -> AttackClass {
        AttackClass::PortScan
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        assert!(!self.attackers.is_empty(), "a distributed scan needs sources");
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let gap = SimDuration::from_secs_f64(1.0 / self.per_source_rate.max(1e-6));
        for (slice, &attacker) in self.attackers.iter().enumerate() {
            let mut t = start + SimDuration::from_millis(rng.uniform_u64(0, 500));
            let mut port = self.first_port_for(slice);
            while port < self.port_count && usize::from(port) % self.attackers.len() == slice {
                // ports stride across sources: source k probes k, k+n, k+2n…
                let syn = Packet::tcp(
                    Ipv4Header::simple(attacker, self.target),
                    TcpHeader {
                        src_port: 40000 + (rng.uniform_u64(0, 20000) as u16),
                        dst_port: port + 1,
                        seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                        ack: 0,
                        flags: TcpFlags::SYN,
                        window: 1024,
                    },
                    Vec::new(),
                );
                trace.push_attack(t, syn, truth);
                t += gap;
                port = port.saturating_add(self.attackers.len() as u16);
            }
        }
        trace.finish();
        trace
    }
}

impl DistributedScan {
    fn first_port_for(&self, slice: usize) -> u16 {
        slice as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_scan_touches_every_port() {
        let scan = PortScan {
            attacker: Ipv4Addr::new(66, 0, 0, 1),
            target: Ipv4Addr::new(10, 0, 1, 5),
            first_port: 20,
            port_count: 50,
            rate: 100.0,
        };
        let mut rng = RngStream::derive(1, "scan");
        let t = scan.generate(SimTime::ZERO, 9, &mut rng);
        let ports: std::collections::HashSet<u16> = t
            .records()
            .iter()
            .filter(|r| r.packet.ip.dst == scan.target)
            .filter_map(|r| r.packet.tcp_header().map(|h| h.dst_port))
            .collect();
        assert_eq!(ports.len(), 50);
        assert!(t.records().iter().all(|r| r.truth.unwrap().attack_id == 9));
        // Scan takes port_count / rate seconds.
        assert!(t.span() <= SimDuration::from_secs_f64(50.0 / 100.0 + 0.01));
    }

    #[test]
    fn stealth_scan_stays_under_one_probe_per_second() {
        let scan = StealthScan::new(Ipv4Addr::new(66, 5, 5, 5), Ipv4Addr::new(10, 0, 1, 9));
        let mut rng = RngStream::derive(6, "stealth");
        let t = scan.generate(SimTime::ZERO, 4, &mut rng);
        assert_eq!(t.len(), 24);
        // No two probes within the same one-second window.
        for w in t.records().windows(2) {
            assert!(
                w[1].at.saturating_since(w[0].at) >= SimDuration::from_secs(2),
                "stealth probes must straddle detector windows"
            );
        }
    }

    #[test]
    fn distributed_scan_covers_ports_across_sources() {
        let scan = DistributedScan::new(Ipv4Addr::new(10, 0, 1, 9));
        let mut rng = RngStream::derive(7, "dist");
        let t = scan.generate(SimTime::ZERO, 5, &mut rng);
        let ports: std::collections::HashSet<u16> =
            t.records().iter().filter_map(|r| r.packet.tcp_header().map(|h| h.dst_port)).collect();
        assert_eq!(ports.len(), 256, "full coverage");
        // Each source touches few ports — under per-source thresholds.
        let mut per_src: std::collections::HashMap<Ipv4Addr, usize> = Default::default();
        for r in t.records() {
            *per_src.entry(r.packet.ip.src).or_default() += 1;
        }
        assert_eq!(per_src.len(), 16);
        assert!(per_src.values().all(|&n| n == 16));
    }

    #[test]
    fn sweep_touches_many_hosts() {
        let sweep = HostSweep {
            attacker: Ipv4Addr::new(66, 0, 0, 2),
            block: "10.0.1.0/24".parse().unwrap(),
            host_count: 30,
            port: 22,
            rate: 50.0,
        };
        let mut rng = RngStream::derive(2, "sweep");
        let t = sweep.generate(SimTime::from_secs(5), 3, &mut rng);
        assert_eq!(t.len(), 30);
        let hosts: std::collections::HashSet<Ipv4Addr> =
            t.records().iter().map(|r| r.packet.ip.dst).collect();
        assert_eq!(hosts.len(), 30);
        assert!(t
            .records()
            .iter()
            .all(|r| { r.packet.tcp_header().map(|h| h.dst_port) == Some(22) }));
        assert!(t.records()[0].at >= SimTime::from_secs(5));
    }
}
