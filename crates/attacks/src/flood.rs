//! Denial of service: SYN flood.
//!
//! The flood serves two evaluation roles. As an *attack*, it is detectable
//! by half-open-connection anomaly counters. As a *load*, it is the
//! instrument for the paper's **Network Lethal Dose** metric — "observed
//! level of network or host traffic that results in a shutdown/malfunction
//! of IDS, measured in packets/sec" — because its rate is a free parameter
//! the lethal-dose search escalates until the IDS under test fails.

use crate::Scenario;
use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_net::Cidr;
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// A SYN flood with spoofed source addresses.
#[derive(Debug, Clone)]
pub struct SynFlood {
    /// Block source addresses are spoofed from.
    pub spoof_block: Cidr,
    /// Flooded host.
    pub target: Ipv4Addr,
    /// Flooded port.
    pub port: u16,
    /// SYNs per second.
    pub rate: f64,
    /// Flood length.
    pub duration: SimDuration,
}

impl SynFlood {
    /// A default flood: 5000 SYN/s for 2 s against port 80.
    pub fn new(target: Ipv4Addr) -> Self {
        Self {
            spoof_block: "203.0.0.0/16".parse().expect("static CIDR"),
            target,
            port: 80,
            rate: 5000.0,
            duration: SimDuration::from_secs(2),
        }
    }

    /// Total SYN packets this flood will emit.
    pub fn packet_count(&self) -> u64 {
        (self.rate * self.duration.as_secs_f64()) as u64
    }
}

impl Scenario for SynFlood {
    fn class(&self) -> AttackClass {
        AttackClass::SynFlood
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let n = self.packet_count();
        let gap = SimDuration::from_secs_f64(1.0 / self.rate.max(1e-6));
        let mut t = start;
        for _ in 0..n {
            let spoofed = self.spoof_block.host(rng.uniform_u64(1, 65000) as u32);
            let syn = Packet::tcp(
                Ipv4Header::simple(spoofed, self.target),
                TcpHeader {
                    src_port: rng.uniform_u64(1024, 65536) as u16,
                    dst_port: self.port,
                    seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 512,
                },
                Vec::new(),
            );
            trace.push_attack(t, syn, truth);
            t += gap;
        }
        trace.finish();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_rate_and_count() {
        let f = SynFlood {
            rate: 1000.0,
            duration: SimDuration::from_secs(3),
            ..SynFlood::new(Ipv4Addr::new(10, 0, 1, 1))
        };
        assert_eq!(f.packet_count(), 3000);
        let mut rng = RngStream::derive(4, "flood");
        let t = f.generate(SimTime::ZERO, 1, &mut rng);
        assert_eq!(t.len(), 3000);
        assert!((t.mean_pps() - 1000.0).abs() < 15.0, "pps {}", t.mean_pps());
    }

    #[test]
    fn sources_are_spoofed_diverse() {
        let f = SynFlood::new(Ipv4Addr::new(10, 0, 1, 1));
        let mut rng = RngStream::derive(5, "flood2");
        let t = f.generate(SimTime::ZERO, 2, &mut rng);
        let sources: std::collections::HashSet<Ipv4Addr> =
            t.records().iter().map(|r| r.packet.ip.src).collect();
        assert!(sources.len() > 1000, "spoofed sources should be diverse: {}", sources.len());
        assert!(t.records().iter().all(|r| r.packet.is_syn()));
    }
}
