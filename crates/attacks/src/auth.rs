//! Credential attacks: brute-force login and insider masquerade.
//!
//! Brute force is a rate anomaly ("if an anomaly-based IDS detected
//! hundreds of login attempts within a few seconds, it might generate an
//! alert" — paper §2.1). Masquerade is the paper's insider case:
//! "compromised passwords (masquerade)" used from the wrong place — a
//! *successful* login whose only tell is its origin, which signature
//! engines cannot see and origin-aware anomaly engines can.

use crate::Scenario;
use idse_net::tcp::{synthesize_session, Exchange, SessionSpec};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_sim::{RngStream, SimDuration, SimTime};
use idse_traffic::payload;
use std::net::Ipv4Addr;

/// Repeated failed logins against one account.
#[derive(Debug, Clone)]
pub struct BruteForceLogin {
    /// Attacking host.
    pub attacker: Ipv4Addr,
    /// Target login server.
    pub target: Ipv4Addr,
    /// Account under attack.
    pub user: String,
    /// Number of attempts.
    pub attempts: u32,
    /// Attempts per second.
    pub rate: f64,
    /// Whether the final attempt succeeds (the attacker got in).
    pub final_success: bool,
}

impl BruteForceLogin {
    /// A default 120-attempt burst at 20 attempts/s that fails.
    pub fn new(attacker: Ipv4Addr, target: Ipv4Addr, user: impl Into<String>) -> Self {
        Self {
            attacker,
            target,
            user: user.into(),
            attempts: 120,
            rate: 20.0,
            final_success: false,
        }
    }
}

impl Scenario for BruteForceLogin {
    fn class(&self) -> AttackClass {
        AttackClass::BruteForceLogin
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let gap = SimDuration::from_secs_f64(1.0 / self.rate.max(1e-6));
        let mut t = start;
        for i in 0..self.attempts {
            let success = self.final_success && i == self.attempts - 1;
            let spec = SessionSpec::new(
                self.attacker,
                20000 + (rng.uniform_u64(0, 40000) as u16),
                self.target,
                23,
            );
            let segs = synthesize_session(
                &spec,
                &[
                    Exchange::to_server(payload::login_attempt(&self.user, success)),
                    Exchange::to_client(if success { b"$ ".to_vec() } else { b"login: ".to_vec() }),
                ],
            );
            let mut pt = t;
            for (_, p) in segs {
                trace.push_attack(pt, p, truth);
                pt += SimDuration::from_micros(400);
            }
            t += gap;
        }
        trace.finish();
        trace
    }
}

/// A masquerade: one *successful* login with a legitimate username from a
/// host outside the site's trusted client block.
#[derive(Debug, Clone)]
pub struct Masquerade {
    /// The foreign host using stolen credentials.
    pub attacker: Ipv4Addr,
    /// Login server.
    pub target: Ipv4Addr,
    /// The compromised account (a real background user).
    pub user: String,
    /// Commands the intruder runs after login (keeps the session looking
    /// ordinary).
    pub command_count: u32,
}

impl Masquerade {
    /// A default masquerade running three innocuous-looking commands.
    pub fn new(attacker: Ipv4Addr, target: Ipv4Addr, user: impl Into<String>) -> Self {
        Self { attacker, target, user: user.into(), command_count: 3 }
    }
}

impl Scenario for Masquerade {
    fn class(&self) -> AttackClass {
        AttackClass::Masquerade
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let mut exchanges = vec![
            Exchange::to_server(payload::login_attempt(&self.user, true)),
            Exchange::to_client(b"$ ".to_vec()),
        ];
        let commands: &[&[u8]] =
            &[b"ls -la /home\r\n", b"cat /etc/passwd\r\n", b"ps -ef\r\n", b"netstat -an\r\n"];
        for i in 0..self.command_count {
            exchanges.push(Exchange::to_server(commands[i as usize % commands.len()].to_vec()));
            exchanges.push(Exchange::to_client(payload::random_bytes(rng, 200)));
        }
        let spec = SessionSpec::new(
            self.attacker,
            20000 + (rng.uniform_u64(0, 40000) as u16),
            self.target,
            23,
        );
        let mut t = start;
        for (_, p) in synthesize_session(&spec, &exchanges) {
            trace.push_attack(t, p, truth);
            t += SimDuration::from_millis(2 + rng.uniform_u64(0, 8));
        }
        trace.finish();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_emits_failed_logins() {
        let b = BruteForceLogin {
            attempts: 10,
            ..BruteForceLogin::new(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 0, 1, 3), "admin")
        };
        let mut rng = RngStream::derive(7, "bf");
        let t = b.generate(SimTime::ZERO, 4, &mut rng);
        let failures = t
            .records()
            .iter()
            .filter(|r| idse_traffic::realism::contains(&r.packet.payload, b"Login incorrect"))
            .count();
        assert_eq!(failures, 10);
        assert!(t.records().iter().all(|r| r.truth.unwrap().class == AttackClass::BruteForceLogin));
    }

    #[test]
    fn brute_force_final_success_variant() {
        let b = BruteForceLogin {
            attempts: 5,
            final_success: true,
            ..BruteForceLogin::new(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 0, 1, 3), "ops")
        };
        let mut rng = RngStream::derive(8, "bf2");
        let t = b.generate(SimTime::ZERO, 1, &mut rng);
        let successes = t
            .records()
            .iter()
            .filter(|r| idse_traffic::realism::contains(&r.packet.payload, b"Last login"))
            .count();
        assert_eq!(successes, 1);
    }

    #[test]
    fn masquerade_is_a_successful_session() {
        let m =
            Masquerade::new(Ipv4Addr::new(198, 18, 0, 9), Ipv4Addr::new(10, 10, 0, 4), "jsmith");
        let mut rng = RngStream::derive(9, "mq");
        let t = m.generate(SimTime::from_secs(1), 2, &mut rng);
        assert!(t.len() > 6);
        let ok = t
            .records()
            .iter()
            .any(|r| idse_traffic::realism::contains(&r.packet.payload, b"Last login"));
        let failed = t
            .records()
            .iter()
            .any(|r| idse_traffic::realism::contains(&r.packet.payload, b"Login incorrect"));
        assert!(ok && !failed, "masquerade must log in cleanly");
        // Session is ordinary telnet to port 23.
        assert!(t.records().iter().all(|r| {
            let h = r.packet.tcp_header().unwrap();
            h.dst_port == 23 || h.src_port == 23
        }));
    }
}
