//! # idse-attacks — attack scenarios with ground truth
//!
//! "To overcome this [unobservability of false negatives] we replayed
//! canned data with known attack content on the test network" (paper §4).
//! Every scenario here emits a labeled [`idse_net::Trace`]: each packet
//! carries the attack-instance id and class, so `idse-eval` can compute the
//! paper's observed false-negative ratio `|A − D| / |T|` exactly.
//!
//! The scenario families mirror the 2002-era threat classes the paper's
//! introduction motivates:
//!
//! * reconnaissance — [`scan::PortScan`], [`scan::HostSweep`]
//! * denial of service — [`flood::SynFlood`]
//! * credential attack — [`auth::BruteForceLogin`], [`auth::Masquerade`]
//! * exploitation — [`exploit::PayloadExploit`] with a small exploit corpus
//! * evasion — [`evasion::FragmentationEvasion`] (overlapping fragments)
//! * covert channels — [`tunnel::Tunneling`] (DNS/ICMP exfiltration)
//! * the paper's hardest case — [`trust::TrustExploit`]: lateral movement
//!   between mutually trusting cluster hosts that "may look like normal
//!   interactions between hosts".
//!
//! [`campaign::Campaign`] composes scenario instances over a time span into
//! one attack trace ready to merge with background traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod campaign;
pub mod evasion;
pub mod exploit;
pub mod flood;
pub mod scan;
pub mod trust;
pub mod tunnel;

use idse_net::trace::Trace;
use idse_sim::{RngStream, SimTime};

/// A generator of one attack instance.
pub trait Scenario {
    /// The attack class this scenario emits.
    fn class(&self) -> idse_net::trace::AttackClass;

    /// Emit the instance's packets starting at `start`, labeling them with
    /// `attack_id`.
    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace;
}

pub use campaign::{Campaign, CampaignConfig};
