//! Campaigns: composing attack instances over a test window.
//!
//! A campaign is the "known attack content" half of a canned dataset: a set
//! of scenario instances scheduled across the background trace's span.
//! Instance start times are drawn deterministically from the campaign seed,
//! so a `(background seed, campaign seed)` pair fully identifies a test
//! feed — the reproducibility the scorecard methodology requires.

use crate::auth::{BruteForceLogin, Masquerade};
use crate::evasion::FragmentationEvasion;
use crate::exploit::{PayloadExploit, EXPLOITS};
use crate::flood::SynFlood;
use crate::scan::{HostSweep, PortScan};
use crate::trust::TrustExploit;
use crate::tunnel::{TunnelCarrier, Tunneling};
use crate::Scenario;
use idse_net::trace::{AttackClass, Trace};
use idse_sim::{RngStream, SimDuration, SimTime};
use idse_traffic::SiteProfile;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Window the instances are scheduled in.
    pub span: SimDuration,
    /// Seed for instance timing and scenario randomness.
    pub seed: u64,
    /// Number of instances of each scenario family (the standard mix
    /// scales everything by this).
    pub intensity: u32,
}

impl CampaignConfig {
    /// One instance per family in `span`, from `seed`.
    pub fn new(span: SimDuration, seed: u64) -> Self {
        Self { span, seed, intensity: 1 }
    }
}

/// A set of attack scenarios to run in one window.
pub struct Campaign {
    scenarios: Vec<Box<dyn Scenario + Send + Sync>>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign").field("scenarios", &self.scenarios.len()).finish()
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Self { scenarios: Vec::new() }
    }

    /// Add a scenario instance.
    pub fn add(&mut self, scenario: impl Scenario + Send + Sync + 'static) -> &mut Self {
        self.scenarios.push(Box::new(scenario));
        self
    }

    /// Number of scheduled scenario instances.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the campaign has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The classes present, in scenario order.
    pub fn classes(&self) -> Vec<AttackClass> {
        self.scenarios.iter().map(|s| s.class()).collect()
    }

    /// Generate the attack trace: each scenario gets a start time uniform
    /// in the window (leaving 10% tail room for the instance to play out)
    /// and a sequential attack id starting at 1.
    pub fn generate(&self, config: &CampaignConfig) -> Trace {
        let mut timing_rng = RngStream::derive(config.seed, "campaign/timing");
        let mut trace = Trace::new();
        let usable = config.span.mul_f64(0.9);
        for (i, scenario) in self.scenarios.iter().enumerate() {
            let attack_id = i as u32 + 1;
            let start = SimTime::ZERO
                + SimDuration::from_secs_f64(timing_rng.unit() * usable.as_secs_f64());
            let mut scenario_rng =
                RngStream::derive(config.seed, &format!("campaign/scenario-{attack_id}"));
            let t = scenario.generate(start, attack_id, &mut scenario_rng);
            trace.merge(t);
        }
        trace.finish();
        trace
    }

    /// The standard mix used throughout the evaluation: for each intensity
    /// step, one instance of every scenario family, parameterized from the
    /// site profile (external attackers for perimeter attacks, inside hosts
    /// for trust/tunnel attacks). Exploit instances cycle through the whole
    /// corpus, so both signature-known and novel exploits appear.
    pub fn standard_mix(profile: &SiteProfile, config: &CampaignConfig) -> Campaign {
        let mut rng = RngStream::derive(config.seed, "campaign/mix");
        let mut c = Campaign::new();
        let external = |rng: &mut RngStream| {
            std::net::Ipv4Addr::new(
                66,
                33,
                rng.uniform_u64(1, 250) as u8,
                rng.uniform_u64(1, 250) as u8,
            )
        };
        for step in 0..config.intensity {
            // Attacks aim at the primary servers — the same hosts an
            // evaluation deploys its host agents on.
            let server = profile
                .servers
                .host(1 + (rng.uniform_u64(0, profile.server_hosts.clamp(1, 8) as u64) as u32));
            let inside = profile
                .clients
                .host(1 + (rng.uniform_u64(0, profile.client_hosts.max(2) as u64) as u32));
            let mut inside2 = profile
                .clients
                .host(1 + (rng.uniform_u64(0, profile.client_hosts.max(2) as u64) as u32));
            if inside2 == inside {
                inside2 = profile.clients.host(u32::from(inside2).wrapping_add(1) & 0x7f | 1);
            }

            c.add(PortScan::new(external(&mut rng), server));
            c.add(HostSweep {
                attacker: external(&mut rng),
                block: profile.servers,
                host_count: profile.server_hosts.max(4),
                port: 22,
                rate: 50.0,
            });
            c.add(SynFlood {
                rate: 2500.0,
                duration: SimDuration::from_secs(1),
                ..SynFlood::new(server)
            });
            c.add(BruteForceLogin::new(external(&mut rng), server, "admin"));
            let exploit = &EXPLOITS[(step as usize * 2) % EXPLOITS.len()];
            c.add(PayloadExploit { attacker: external(&mut rng), target: server, exploit });
            let splittable: Vec<_> = crate::evasion::splittable_exploits().collect();
            let evade = splittable[step as usize % splittable.len()];
            c.add(FragmentationEvasion::new(external(&mut rng), server, evade));
            c.add(Masquerade::new(external(&mut rng), server, "jsmith"));
            c.add(Tunneling {
                carrier: if step % 2 == 0 { TunnelCarrier::Dns } else { TunnelCarrier::IcmpEcho },
                ..Tunneling::new(inside, external(&mut rng))
            });
            c.add(TrustExploit::new(inside, inside2));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CampaignConfig {
        CampaignConfig::new(SimDuration::from_secs(60), 42)
    }

    #[test]
    fn standard_mix_covers_every_class() {
        let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &config());
        let classes: std::collections::HashSet<AttackClass> = c.classes().into_iter().collect();
        assert_eq!(classes.len(), AttackClass::ALL.len(), "all classes present");
    }

    #[test]
    fn generate_assigns_unique_attack_ids() {
        let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &config());
        let t = c.generate(&config());
        let instances = t.attack_instances();
        assert_eq!(instances.len(), c.len());
        let ids: std::collections::HashSet<u32> = instances.iter().map(|g| g.attack_id).collect();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let c1 = Campaign::standard_mix(&SiteProfile::office_lan(), &config());
        let c2 = Campaign::standard_mix(&SiteProfile::office_lan(), &config());
        let t1 = c1.generate(&config());
        let t2 = c2.generate(&config());
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.records().iter().zip(t2.records().iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.packet, b.packet);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn intensity_scales_instances() {
        let mut cfg = config();
        cfg.intensity = 3;
        let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &cfg);
        assert_eq!(c.len(), 3 * AttackClass::ALL.len());
    }

    #[test]
    fn all_packets_fall_within_window_with_tail_room() {
        let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &config());
        let t = c.generate(&config());
        // Starts are within 90% of span; instances may run a little past.
        let limit = SimTime::from_secs(60) + SimDuration::from_secs(30);
        assert!(t.records().iter().all(|r| r.at < limit));
        assert!(!t.is_empty());
    }
}
