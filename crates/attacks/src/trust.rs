//! The paper's hardest case: trust exploitation between cluster hosts.
//!
//! §3.3: "When one host is compromised, other systems that trust it may be
//! very easily compromised in ways that may look like normal interactions
//! between hosts. The result is an exploit that is difficult to detect and
//! nearly impossible to root out." The scenario emits NFS-RPC-shaped
//! sessions between two *inside* hosts that are byte-for-byte plausible
//! cluster traffic except for their intent markers (privileged paths,
//! slightly elevated fan-in). By construction it defeats signature engines
//! and sits near the noise floor of anomaly engines — which is why the
//! paper argues distributed systems must bias toward low false negatives
//! and accept more false positives (experiment X4).

use crate::Scenario;
use idse_net::tcp::{synthesize_session, Exchange, SessionSpec};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Lateral movement from a compromised cluster host to a peer that
/// trusts it.
#[derive(Debug, Clone)]
pub struct TrustExploit {
    /// The already-compromised inside host.
    pub compromised: Ipv4Addr,
    /// The trusting peer being moved into.
    pub peer: Ipv4Addr,
    /// Number of RPC sessions in the movement.
    pub sessions: u32,
}

impl TrustExploit {
    /// A default three-session movement.
    pub fn new(compromised: Ipv4Addr, peer: Ipv4Addr) -> Self {
        Self { compromised, peer, sessions: 3 }
    }

    /// The subtle tell: privileged paths no benign session touches.
    pub const PRIVILEGED_PATHS: &'static [&'static str] =
        &["/export/.ssh/authorized_keys", "/export/etc/shadow.bak", "/export/root/.rhosts"];
}

impl Scenario for TrustExploit {
    fn class(&self) -> AttackClass {
        AttackClass::TrustExploit
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let mut t = start;
        for s in 0..self.sessions {
            // An RPC write targeting a privileged path, framed exactly like
            // benign NFS traffic.
            let path = Self::PRIVILEGED_PATHS[s as usize % Self::PRIVILEGED_PATHS.len()];
            let mut body = Vec::with_capacity(64);
            let xid = rng.uniform_u64(0, u32::MAX as u64) as u32;
            body.extend_from_slice(&xid.to_be_bytes());
            body.extend_from_slice(&0u32.to_be_bytes()); // CALL
            body.extend_from_slice(&2u32.to_be_bytes());
            body.extend_from_slice(&100003u32.to_be_bytes());
            body.extend_from_slice(&3u32.to_be_bytes());
            body.extend_from_slice(&7u32.to_be_bytes()); // WRITE
            body.extend_from_slice(&(path.len() as u32).to_be_bytes());
            body.extend_from_slice(path.as_bytes());
            while body.len() % 4 != 0 {
                body.push(0);
            }

            let spec = SessionSpec::new(
                self.compromised,
                1000 + (rng.uniform_u64(0, 200) as u16), // low "trusted" port
                self.peer,
                2049,
            );
            let segs = synthesize_session(
                &spec,
                &[
                    Exchange::to_server(body),
                    Exchange::to_client(vec![0u8; 24]), // terse RPC reply
                ],
            );
            let mut pt = t;
            for (_, p) in segs {
                trace.push_attack(pt, p, truth);
                pt += SimDuration::from_micros(300 + rng.uniform_u64(0, 500));
            }
            t += SimDuration::from_secs(1 + rng.uniform_u64(0, 4));
        }
        trace.finish();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> TrustExploit {
        TrustExploit::new(Ipv4Addr::new(10, 10, 0, 7), Ipv4Addr::new(10, 10, 0, 12))
    }

    #[test]
    fn stays_inside_the_trust_domain() {
        let mut rng = RngStream::derive(41, "trust");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        let block: idse_net::Cidr = "10.10.0.0/24".parse().unwrap();
        for r in t.records() {
            assert!(block.contains(r.packet.ip.src) && block.contains(r.packet.ip.dst));
        }
    }

    #[test]
    fn looks_like_nfs_traffic() {
        let mut rng = RngStream::derive(42, "trust2");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        assert!(t.records().iter().all(|r| {
            let h = r.packet.tcp_header().unwrap();
            h.dst_port == 2049 || h.src_port == 2049
        }));
        // The NFS program number appears, just like benign RPC.
        let shaped = t
            .records()
            .iter()
            .any(|r| idse_traffic::realism::contains(&r.packet.payload, &100003u32.to_be_bytes()));
        assert!(shaped);
    }

    #[test]
    fn carries_the_privileged_path_tell() {
        let mut rng = RngStream::derive(43, "trust3");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        let tell = t
            .records()
            .iter()
            .any(|r| idse_traffic::realism::contains(&r.packet.payload, b"authorized_keys"));
        assert!(tell, "the subtle intent marker must exist for ground truth to be meaningful");
    }

    #[test]
    fn sessions_are_spread_over_time() {
        let mut rng = RngStream::derive(44, "trust4");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        assert!(t.span() >= SimDuration::from_secs(2));
    }
}
