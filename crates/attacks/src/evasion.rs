//! Evasion: hiding a known exploit with overlapping IP fragments.
//!
//! The attack delivers a *known* signature payload, but fragmented so that
//! the bytes a naive (or wrong-policy) reassembler sees are innocuous,
//! while the victim's stack reassembles the real exploit. An IDS that does
//! no reassembly — or reassembles with the wrong [`OverlapPolicy`] — is
//! structurally blind to it. This gives the evaluation a second source of
//! principled false negatives, independent of signature-database coverage.

use crate::exploit::{ExploitSpec, EXPLOITS};
use crate::Scenario;
use idse_net::frag::fragment;
use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The corpus exploits whose signature regions the default 8-byte
/// fragmentation demonstrably splits (verified by tests here and in the
/// `idse-ids` signature-engine suite). Short patterns — e.g. a four-byte
/// RPC program number — cannot be split across IP fragments at all, so
/// those exploits are not usable for this evasion.
pub fn splittable_exploits() -> impl Iterator<Item = &'static ExploitSpec> {
    const NAMES: [&str; 4] = ["cgi-phf", "iis-unicode-traversal", "ftp-site-exec", "bind-overflow"];
    EXPLOITS.iter().filter(|e| NAMES.contains(&e.name))
}

/// A fragmentation-evasion delivery of a known exploit.
#[derive(Debug, Clone)]
pub struct FragmentationEvasion {
    /// Attacking host.
    pub attacker: Ipv4Addr,
    /// Victim host.
    pub target: Ipv4Addr,
    /// The exploit being hidden.
    pub exploit: &'static ExploitSpec,
    /// Fragment body size (8-byte multiple).
    pub frag_size: usize,
}

impl FragmentationEvasion {
    /// Default: 8-byte continuation fragments. The first fragment must
    /// still hold the 20-byte TCP header (so it carries payload bytes
    /// 0..4); after that, boundaries fall every 8 bytes — at payload
    /// offsets 4, 12, 20, 28, … — which cuts every signature region of the
    /// [`splittable_exploits`] set across fragments, so no single fragment
    /// matches any rule.
    pub fn new(attacker: Ipv4Addr, target: Ipv4Addr, exploit: &'static ExploitSpec) -> Self {
        Self { attacker, target, exploit, frag_size: 8 }
    }
}

impl Scenario for FragmentationEvasion {
    fn class(&self) -> AttackClass {
        AttackClass::FragmentationEvasion
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let ident = rng.uniform_u64(1, 0x10000) as u16;
        let mut ip = Ipv4Header::simple(self.attacker, self.target);
        ip.ident = ident;
        let packet = Packet::tcp(
            ip,
            TcpHeader {
                src_port: 30000 + (rng.uniform_u64(0, 30000) as u16),
                dst_port: self.exploit.port,
                seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 8192,
            },
            self.exploit.payload.to_vec(),
        );

        let frags = fragment(&packet, self.frag_size);
        let mut t = start;
        // Decoy pass: before each genuine fragment (except the first), send
        // an overlapping fragment at the same offset whose bytes are benign
        // padding. A FirstWins reassembler keeps the decoy bytes and never
        // sees the exploit; a LastWins reassembler (matching the victim)
        // recovers it.
        for (i, f) in frags.iter().enumerate() {
            if i > 0 {
                let mut decoy = f.clone();
                decoy.payload = Arc::from(vec![0x20u8; f.payload.len()].into_boxed_slice());
                trace.push_attack(t, decoy, truth);
                t += SimDuration::from_micros(150);
            }
            trace.push_attack(t, f.clone(), truth);
            t += SimDuration::from_micros(150);
        }
        trace.finish();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exploit::exploit_by_name;
    use idse_net::frag::{OverlapPolicy, Reassembler};

    fn scenario() -> FragmentationEvasion {
        FragmentationEvasion::new(
            Ipv4Addr::new(66, 4, 4, 4),
            Ipv4Addr::new(10, 0, 1, 2),
            exploit_by_name("cgi-phf").unwrap(),
        )
    }

    fn reassemble(trace: &Trace, policy: OverlapPolicy) -> Option<Packet> {
        let mut r = Reassembler::new(policy);
        let mut done = None;
        for rec in trace.records() {
            if let Some(p) = r.push(&rec.packet) {
                done = Some(p);
            }
        }
        done
    }

    #[test]
    fn lastwins_victim_sees_exploit() {
        let mut rng = RngStream::derive(21, "ev");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        let victim_view = reassemble(&t, OverlapPolicy::LastWins).expect("completes");
        assert!(idse_traffic::realism::contains(&victim_view.payload, b"/cgi-bin/phf"));
    }

    #[test]
    fn firstwins_ids_is_blinded() {
        let mut rng = RngStream::derive(21, "ev");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        let ids_view = reassemble(&t, OverlapPolicy::FirstWins).expect("completes");
        assert!(
            !idse_traffic::realism::contains(&ids_view.payload, b"/cgi-bin/phf"),
            "FirstWins reassembly must not reveal the exploit"
        );
    }

    #[test]
    fn no_single_fragment_contains_the_signature() {
        let mut rng = RngStream::derive(22, "ev2");
        let t = scenario().generate(SimTime::ZERO, 1, &mut rng);
        for rec in t.records() {
            assert!(
                !idse_traffic::realism::contains(&rec.packet.payload, b"/cgi-bin/phf"),
                "signature must be split across fragments"
            );
        }
    }

    #[test]
    fn all_packets_are_labeled() {
        let mut rng = RngStream::derive(23, "ev3");
        let t = scenario().generate(SimTime::from_secs(9), 77, &mut rng);
        assert!(t.len() >= 4);
        assert!(t.records().iter().all(|r| r.truth
            == Some(GroundTruth { attack_id: 77, class: AttackClass::FragmentationEvasion })));
    }
}
