//! Covert channels: data exfiltration tunneled over benign protocols.
//!
//! The paper's intro lists "tunneling in through 'benign' protocols" as an
//! unauthorized-access route. The scenario models the inverse (outbound
//! exfiltration), which has the same observable: DNS queries or ICMP echo
//! payloads whose bodies are high-entropy encoded data at an elevated
//! rate. Signature engines have nothing to match; entropy/rate anomaly
//! detectors are the systems that can catch it.

use crate::Scenario;
use idse_net::packet::{IcmpHeader, IcmpKind, Ipv4Header, Packet, UdpHeader};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// The carrier protocol of the tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelCarrier {
    /// Encoded data in DNS query names (UDP 53).
    Dns,
    /// Encoded data in ICMP echo payloads.
    IcmpEcho,
}

/// An exfiltration tunnel.
#[derive(Debug, Clone)]
pub struct Tunneling {
    /// Compromised inside host.
    pub inside: Ipv4Addr,
    /// External collection point.
    pub outside: Ipv4Addr,
    /// Carrier protocol.
    pub carrier: TunnelCarrier,
    /// Bytes to exfiltrate.
    pub bytes: usize,
    /// Carrier packets per second.
    pub rate: f64,
}

impl Tunneling {
    /// A default DNS tunnel moving 8 KiB at 50 queries/s.
    pub fn new(inside: Ipv4Addr, outside: Ipv4Addr) -> Self {
        Self { inside, outside, carrier: TunnelCarrier::Dns, bytes: 8192, rate: 50.0 }
    }

    /// Bytes carried per packet by each carrier.
    fn chunk_size(&self) -> usize {
        match self.carrier {
            // 64 raw bytes hex-encode to a ~140-byte QNAME — three times a
            // conventional query, the size tell tunnel tools actually had.
            TunnelCarrier::Dns => 64,
            TunnelCarrier::IcmpEcho => 256,
        }
    }
}

/// Hex-encode a chunk into DNS-label-safe characters.
fn hex_label(data: &[u8]) -> Vec<u8> {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize]);
        out.push(HEX[(b & 0xf) as usize]);
    }
    out
}

impl Scenario for Tunneling {
    fn class(&self) -> AttackClass {
        AttackClass::Tunneling
    }

    fn generate(&self, start: SimTime, attack_id: u32, rng: &mut RngStream) -> Trace {
        let mut trace = Trace::new();
        let truth = GroundTruth { attack_id, class: self.class() };
        let gap = SimDuration::from_secs_f64(1.0 / self.rate.max(1e-6));
        let chunk = self.chunk_size();
        let n_packets = self.bytes.div_ceil(chunk);
        let mut t = start;
        for i in 0..n_packets {
            // The exfiltrated data itself: compressed/encrypted, so random.
            let mut data = vec![0u8; chunk];
            rng.fill_bytes(&mut data);
            let packet = match self.carrier {
                TunnelCarrier::Dns => {
                    // QNAME: <hex-chunk>.t.example.com, DNS-shaped framing.
                    let mut body = Vec::with_capacity(chunk * 2 + 32);
                    body.extend_from_slice(&(i as u16).to_be_bytes());
                    body.extend_from_slice(&[0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0]);
                    let label = hex_label(&data);
                    // Labels cap at 63 bytes; split the hex text.
                    for piece in label.chunks(63) {
                        body.push(piece.len() as u8);
                        body.extend_from_slice(piece);
                    }
                    for part in ["t", "example", "com"] {
                        body.push(part.len() as u8);
                        body.extend_from_slice(part.as_bytes());
                    }
                    body.push(0);
                    body.extend_from_slice(&[0, 16, 0, 1]); // TXT IN
                    Packet::udp(
                        Ipv4Header::simple(self.inside, self.outside),
                        UdpHeader {
                            src_port: 1024 + (rng.uniform_u64(0, 60000) as u16),
                            dst_port: 53,
                        },
                        body,
                    )
                }
                TunnelCarrier::IcmpEcho => Packet::icmp(
                    Ipv4Header::simple(self.inside, self.outside),
                    IcmpHeader {
                        kind: IcmpKind::EchoRequest,
                        ident: attack_id as u16,
                        seq: i as u16,
                    },
                    data,
                ),
            };
            trace.push_attack(t, packet, truth);
            t += gap;
        }
        trace.finish();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_traffic::realism::byte_entropy;

    #[test]
    fn dns_tunnel_emits_expected_packet_count() {
        let tun = Tunneling {
            bytes: 3200,
            rate: 100.0,
            ..Tunneling::new(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(198, 18, 1, 1))
        };
        let mut rng = RngStream::derive(31, "tun");
        let t = tun.generate(SimTime::ZERO, 1, &mut rng);
        assert_eq!(t.len(), 50); // 3200 / 64
        assert!(t.records().iter().all(|r| {
            matches!(r.packet.transport, idse_net::Transport::Udp(u) if u.dst_port == 53)
        }));
    }

    #[test]
    fn icmp_tunnel_payloads_are_high_entropy() {
        let tun = Tunneling {
            carrier: TunnelCarrier::IcmpEcho,
            bytes: 6400,
            ..Tunneling::new(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(198, 18, 1, 1))
        };
        let mut rng = RngStream::derive(32, "tun2");
        let t = tun.generate(SimTime::ZERO, 2, &mut rng);
        let all: Vec<u8> =
            t.records().iter().flat_map(|r| r.packet.payload.iter().copied()).collect();
        assert!(byte_entropy(&all) > 7.0, "exfil data must look encrypted");
    }

    #[test]
    fn dns_labels_respect_length_limit() {
        let tun = Tunneling::new(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(198, 18, 1, 1));
        let mut rng = RngStream::derive(33, "tun3");
        let t = tun.generate(SimTime::ZERO, 3, &mut rng);
        for r in t.records().iter().take(5) {
            // Walk the QNAME labels.
            let body = &r.packet.payload;
            let mut i = 12;
            while i < body.len() && body[i] != 0 {
                let len = body[i] as usize;
                assert!(len <= 63, "label length {len} exceeds DNS limit");
                i += 1 + len;
            }
        }
    }
}
