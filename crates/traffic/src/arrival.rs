//! Arrival processes: when sessions start.
//!
//! Three models cover the evaluation's needs: Poisson arrivals for
//! open-loop background load, constant spacing for calibrated throughput
//! sweeps (the zero-loss and lethal-dose searches need precisely controlled
//! offered rates), and a two-state ON/OFF process for the bursty phases of
//! real-time cluster traffic.

use idse_sim::{RngStream, SimDuration, SimTime};

/// A session/packet arrival process.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` per second.
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Deterministic arrivals every `1/rate` seconds.
    Constant {
        /// Arrivals per second.
        rate: f64,
    },
    /// Markov-modulated ON/OFF: bursts of `on_rate` arrivals during ON
    /// periods, silence during OFF periods. Period lengths are exponential.
    OnOff {
        /// Arrival rate while ON, per second.
        on_rate: f64,
        /// Mean ON period length, seconds.
        mean_on: f64,
        /// Mean OFF period length, seconds.
        mean_off: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate of the process.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Constant { rate } => rate,
            ArrivalProcess::OnOff { on_rate, mean_on, mean_off } => {
                on_rate * mean_on / (mean_on + mean_off)
            }
        }
    }

    /// Generate all arrival instants in `[start, start + span)`.
    pub fn arrivals(&self, start: SimTime, span: SimDuration, rng: &mut RngStream) -> Vec<SimTime> {
        let end = start + span;
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let mut t = start;
                loop {
                    t += SimDuration::from_secs_f64(rng.exponential(rate));
                    if t >= end {
                        break;
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::Constant { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let gap = SimDuration::from_secs_f64(1.0 / rate);
                let mut t = start + gap;
                while t < end {
                    out.push(t);
                    t += gap;
                }
            }
            ArrivalProcess::OnOff { on_rate, mean_on, mean_off } => {
                assert!(
                    on_rate > 0.0 && mean_on > 0.0 && mean_off > 0.0,
                    "ON/OFF parameters must be positive"
                );
                let mut t = start;
                let mut on = true;
                while t < end {
                    let period = if on { mean_on } else { mean_off };
                    let period_end =
                        (t + SimDuration::from_secs_f64(rng.exponential(1.0 / period))).min(end);
                    if on {
                        let mut a = t;
                        loop {
                            a += SimDuration::from_secs_f64(rng.exponential(on_rate));
                            if a >= period_end {
                                break;
                            }
                            out.push(a);
                        }
                    }
                    t = period_end;
                    on = !on;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_honoured() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let mut rng = RngStream::derive(11, "arrivals");
        let arr = p.arrivals(SimTime::ZERO, SimDuration::from_secs(50), &mut rng);
        let rate = arr.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn constant_is_evenly_spaced() {
        let p = ArrivalProcess::Constant { rate: 10.0 };
        let mut rng = RngStream::derive(11, "arrivals");
        let arr = p.arrivals(SimTime::ZERO, SimDuration::from_secs(1), &mut rng);
        assert_eq!(arr.len(), 9); // t = 0.1 .. 0.9
        for w in arr.windows(2) {
            assert_eq!(w[1].saturating_since(w[0]), SimDuration::from_millis(100));
        }
    }

    #[test]
    fn onoff_mean_rate_formula() {
        let p = ArrivalProcess::OnOff { on_rate: 200.0, mean_on: 1.0, mean_off: 3.0 };
        assert!((p.mean_rate() - 50.0).abs() < 1e-12);
        let mut rng = RngStream::derive(3, "onoff");
        let arr = p.arrivals(SimTime::ZERO, SimDuration::from_secs(200), &mut rng);
        let rate = arr.len() as f64 / 200.0;
        assert!((rate - 50.0).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn onoff_is_bursty() {
        // Compare inter-arrival variance against Poisson at the same mean
        // rate: ON/OFF must have a higher coefficient of variation.
        let mut rng1 = RngStream::derive(5, "a");
        let mut rng2 = RngStream::derive(5, "b");
        let onoff = ArrivalProcess::OnOff { on_rate: 400.0, mean_on: 0.5, mean_off: 1.5 };
        let poisson = ArrivalProcess::Poisson { rate: onoff.mean_rate() };
        let span = SimDuration::from_secs(100);
        let cv = |arr: &[SimTime]| {
            let gaps: Vec<f64> =
                arr.windows(2).map(|w| w[1].saturating_since(w[0]).as_secs_f64()).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let v = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
            v.sqrt() / m
        };
        let cv_onoff = cv(&onoff.arrivals(SimTime::ZERO, span, &mut rng1));
        let cv_poisson = cv(&poisson.arrivals(SimTime::ZERO, span, &mut rng2));
        assert!(
            cv_onoff > cv_poisson * 1.5,
            "ON/OFF CV {cv_onoff} should exceed Poisson CV {cv_poisson}"
        );
    }

    #[test]
    fn arrivals_sorted_and_within_window() {
        let p = ArrivalProcess::Poisson { rate: 50.0 };
        let mut rng = RngStream::derive(8, "win");
        let start = SimTime::from_secs(10);
        let arr = p.arrivals(start, SimDuration::from_secs(5), &mut rng);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| t >= start && t < SimTime::from_secs(15)));
    }
}
