//! # idse-traffic — background workload and payload-content generators
//!
//! The paper's first lesson learned (§4): "to collect performance related
//! metrics of an IDS, a simple flooding of the network being monitored with
//! meaningless data is not sufficient … the data portion of an IP packet
//! should have realistic content", because payload-inspecting IDSes behave
//! differently under realistic content than under random bytes. And: "IDSs
//! perform differently in the presence of different kinds of network
//! traffic. Distributed systems with high levels of inter-host trust on a
//! high-speed LAN will have distinctive traffic compared to that of a web
//! server in an e-commerce shop."
//!
//! This crate therefore provides:
//!
//! * application-layer payload synthesis with protocol-plausible content
//!   ([`payload`]) plus a deliberately unrealistic random-bytes mode for the
//!   flooding-vs-realism experiment,
//! * arrival processes — Poisson, constant-rate, bursty ON/OFF
//!   ([`arrival`]),
//! * site profiles capturing the e-commerce vs. real-time-cluster contrast
//!   ([`profiles`]),
//! * a session-level background generator that emits labeled-benign traces
//!   ([`generator`]),
//! * a pull-based, constant-memory streaming variant of the generator with
//!   flow-key sharding for multi-worker runs ([`stream`]),
//! * content-realism measures used to verify the generators do what the
//!   methodology demands ([`realism`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod generator;
pub mod payload;
pub mod profiles;
pub mod realism;
pub mod stream;

pub use arrival::ArrivalProcess;
pub use generator::{BackgroundGenerator, GeneratorConfig};
pub use profiles::{AppProtocol, SiteProfile};
pub use stream::{flow_shard, RecordStream, StreamConfig, StreamError, DEFAULT_CHUNK_RECORDS};
