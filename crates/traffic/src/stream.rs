//! Pull-based, constant-memory background-traffic streaming.
//!
//! [`BackgroundGenerator`](crate::generator::BackgroundGenerator)
//! materializes its whole trace before anyone can look at the first packet,
//! which caps experiments at container RSS. A [`RecordStream`] produces the
//! same *kind* of traffic — session-oriented, content-realistic, labeled
//! benign — as a lazy iterator of record chunks whose memory footprint is
//! O(sessions in flight), independent of the total run length. That is the
//! prerequisite for the ROADMAP's million-flow runs: the Figure-1 pipeline
//! can consume chunks as they are produced and never hold the full trace.
//!
//! # Determinism contract
//!
//! The record sequence is a pure function of `(profile, config, seed)`:
//!
//! * Generation is sliced into fixed 1-second windows of virtual time.
//!   Slice `i` re-derives its RNG as `derive_seed(seed, "chunk/{i}")`, so a
//!   slice's arrivals depend on nothing but the slice index — no generator
//!   state is carried between slices.
//! * Every session draws from its own child stream
//!   (`chunk/{i}/sess-{j}`), so skipping a session (flow-key sharding)
//!   never perturbs any other session's bytes.
//! * The consumer-facing chunk size ([`StreamConfig::chunk_records`]) is
//!   pure batching over that sequence: any chunk size yields the same
//!   records in the same order, byte for byte.
//!
//! # Flow-key sharding
//!
//! A stream can be restricted to one shard of the flow space
//! ([`StreamConfig::with_shard`]): sessions whose canonical (unordered)
//! host pair hashes to another shard are skipped — address draws only, no
//! payload synthesis — so `shards` workers can each generate exactly their
//! own slice of one giant run. The union of all shards is exactly the
//! unsharded stream, and both directions of a flow always land in the same
//! shard.

use crate::arrival::ArrivalProcess;
use crate::generator::{GeneratorConfig, PayloadMode};
use crate::payload;
use crate::profiles::AppProtocol;
use idse_net::packet::{IcmpHeader, IcmpKind, Ipv4Header, Packet, UdpHeader};
use idse_net::tcp::{synthesize_session, Exchange, SessionSpec};
use idse_net::trace::{Trace, TraceRecord};
use idse_sim::{RngStream, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// Width of one generation slice of virtual time. Internal constant: it is
/// part of the stream's byte-level definition and never varies with the
/// consumer's chunk size.
const SLICE_NANOS: u64 = 1_000_000_000;

/// Default records per yielded chunk.
pub const DEFAULT_CHUNK_RECORDS: usize = 8192;

/// Streaming configuration: the generator parameters plus the stream knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// What traffic to generate (profile, arrival process, span, seed,
    /// payload mode).
    pub generator: GeneratorConfig,
    /// Records per yielded chunk (consumer batching only — never affects
    /// the bytes produced).
    pub chunk_records: usize,
    /// Total flow-key shards the run is split into.
    pub shards: u32,
    /// Which shard this stream emits (`0..shards`).
    pub shard: u32,
}

impl StreamConfig {
    /// Stream `generator`'s traffic unsharded, with the default chunk size.
    pub fn new(generator: GeneratorConfig) -> Self {
        Self { generator, chunk_records: DEFAULT_CHUNK_RECORDS, shards: 1, shard: 0 }
    }

    /// Set the consumer-facing chunk size (clamped to at least 1 record).
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    /// Restrict the stream to flow-key shard `shard` of `shards`.
    pub fn with_shard(mut self, shard: u32, shards: u32) -> Self {
        self.shards = shards.max(1);
        self.shard = shard.min(self.shards - 1);
        self
    }
}

/// Why a [`RecordStream`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The arrival process carries state across time slices (ON/OFF), so
    /// its slices cannot be generated independently.
    UnsupportedArrivals,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnsupportedArrivals => {
                write!(f, "streaming supports Poisson and Constant arrivals only")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// The flow-key shard a packet between `a` and `b` belongs to: an FNV-1a
/// hash of the *unordered* host pair, so both directions of every flow —
/// and every session between the same two hosts — land in the same shard.
pub fn flow_shard(a: Ipv4Addr, b: Ipv4Addr, shards: u32) -> u32 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in lo.octets().into_iter().chain(hi.octets()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % u64::from(shards.max(1))) as u32
}

/// One admitted session's remaining packets, ordered by next-packet time
/// with the global admission sequence breaking ties — exactly the order a
/// stable sort of the fully materialized trace would produce.
struct InFlight {
    seq: u64,
    // An owning iterator rather than Vec + cursor: emission *moves* each
    // packet out (no per-record clone on the streaming hot path), and the
    // heap invariant only ever holds non-empty sessions.
    packets: std::vec::IntoIter<(SimTime, Packet)>,
}

impl InFlight {
    fn head_at(&self) -> SimTime {
        self.packets.as_slice()[0].0
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.head_at().cmp(&self.head_at()).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A lazy, chunked, deterministic benign-traffic stream.
///
/// Iterating yields `Vec<TraceRecord>` chunks in global time order (ties
/// broken by generation sequence, matching a stable sort). See the module
/// docs for the determinism contract.
#[derive(Debug)]
pub struct RecordStream {
    config: StreamConfig,
    protos: Vec<AppProtocol>,
    weights: Vec<f64>,
    /// Current slice index and its sorted arrival instants.
    slice: u64,
    n_slices: u64,
    slice_rng: RngStream,
    arrivals: Vec<SimTime>,
    next_arrival: usize,
    /// Sessions admitted but not fully emitted.
    in_flight: BinaryHeap<InFlight>,
    session_seq: u64,
    emitted: u64,
}

impl std::fmt::Debug for InFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InFlight")
            .field("seq", &self.seq)
            .field("remaining", &self.packets.len())
            .finish()
    }
}

impl RecordStream {
    /// Build the stream for `config`. Fails for arrival processes whose
    /// slices cannot be generated independently (ON/OFF).
    pub fn new(config: StreamConfig) -> Result<Self, StreamError> {
        match config.generator.arrivals {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Constant { .. } => {}
            ArrivalProcess::OnOff { .. } => return Err(StreamError::UnsupportedArrivals),
        }
        let span = config.generator.span.as_nanos();
        let n_slices = span.div_ceil(SLICE_NANOS);
        let (protos, weights) = config.generator.profile.mix_weights();
        let mut stream = Self {
            slice_rng: RngStream::derive(config.generator.seed, "chunk/0"),
            config,
            protos,
            weights,
            slice: 0,
            n_slices,
            arrivals: Vec::new(),
            next_arrival: 0,
            in_flight: BinaryHeap::new(),
            session_seq: 0,
            emitted: 0,
        };
        if n_slices > 0 {
            stream.load_slice(0);
        }
        Ok(stream)
    }

    /// Records emitted so far (across all chunks).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Drain the stream into a fully materialized trace. This is the only
    /// sanctioned materialized path: it is by construction a `collect()` of
    /// the stream, so it costs O(total records) memory.
    pub fn collect_trace(self) -> Trace {
        let mut trace = Trace::new();
        for chunk in self {
            for rec in chunk {
                trace.push(rec);
            }
        }
        trace.finish();
        trace
    }

    /// The straightforward O(total-records) implementation of the same byte
    /// sequence: admit every session up front in generation order, then
    /// stable-sort all packets by time — exactly what the materializing
    /// generator does. This is the oracle the streaming merge is proven
    /// against (see the crate's property tests); experiments should iterate
    /// or [`Self::collect_trace`] instead.
    pub fn materialize(config: &StreamConfig) -> Result<Trace, StreamError> {
        let mut stream = RecordStream::new(config.clone())?;
        loop {
            if stream.next_arrival < stream.arrivals.len() {
                stream.admit_next();
            } else if stream.slice + 1 < stream.n_slices {
                let next = stream.slice + 1;
                stream.load_slice(next);
            } else {
                break;
            }
        }
        let mut sessions: Vec<InFlight> = stream.in_flight.into_vec();
        sessions.sort_by_key(|s| s.seq);
        let mut trace = Trace::new();
        for s in sessions {
            for (at, packet) in s.packets {
                trace.push(TraceRecord { at, packet, truth: None });
            }
        }
        trace.finish();
        Ok(trace)
    }

    /// Load slice `i`: derive its RNG and draw its sorted arrival instants.
    fn load_slice(&mut self, i: u64) {
        self.slice = i;
        self.slice_rng = RngStream::derive(self.config.generator.seed, &format!("chunk/{i}"));
        self.next_arrival = 0;
        self.arrivals.clear();
        let slice_start = i * SLICE_NANOS;
        let span = self.config.generator.span.as_nanos();
        let slice_end = ((i + 1) * SLICE_NANOS).min(span);
        let width_secs = (slice_end - slice_start) as f64 / 1e9;
        match self.config.generator.arrivals {
            ArrivalProcess::Poisson { rate } => {
                if rate > 0.0 && width_secs > 0.0 {
                    let k = poisson(&mut self.slice_rng, rate * width_secs);
                    self.arrivals.reserve(k as usize);
                    for _ in 0..k {
                        let offset = (self.slice_rng.unit() * width_secs * 1e9) as u64;
                        self.arrivals
                            .push(SimTime::from_nanos(slice_start + offset.min(SLICE_NANOS - 1)));
                    }
                    // Stable by draw order: equal instants keep their draw
                    // sequence, which is what the session child labels key on.
                    self.arrivals.sort();
                }
            }
            ArrivalProcess::Constant { rate } => {
                if rate > 0.0 {
                    // The k-th arrival (k >= 1) lands at k * gap.
                    let gap = 1e9 / rate;
                    let mut k = (slice_start as f64 / gap) as u64;
                    loop {
                        k += 1;
                        let t = (k as f64 * gap) as u64;
                        if t < slice_start {
                            continue;
                        }
                        if t >= slice_end {
                            break;
                        }
                        self.arrivals.push(SimTime::from_nanos(t));
                    }
                }
            }
            // Rejected in `new`.
            ArrivalProcess::OnOff { .. } => {}
        }
    }

    /// Admit the next arrival of the current slice: derive the session's
    /// isolated stream, test shard membership on the address draws alone,
    /// and synthesize its packets only if it belongs to this stream.
    fn admit_next(&mut self) {
        let start = self.arrivals[self.next_arrival];
        let j = self.next_arrival;
        self.next_arrival += 1;
        let mut srng = self.slice_rng.child(&format!("sess-{j}"));
        let profile = &self.config.generator.profile;
        let client = {
            let n = srng.uniform_u64(1, profile.client_hosts.max(2) as u64) as u32;
            profile.clients.host(n)
        };
        let mut server = {
            let n = srng.uniform_u64(1, profile.server_hosts.max(2) as u64) as u32;
            profile.servers.host(n)
        };
        // In the intra-cluster case client and server blocks coincide;
        // avoid degenerate self-talk (same rule as the materializing
        // generator).
        if server == client {
            server = profile.servers.host(u32::from(server).wrapping_add(1) & 0xff | 1);
        }
        if self.config.shards > 1
            && flow_shard(client, server, self.config.shards) != self.config.shard
        {
            return; // another worker's session; no payload draws burned
        }
        let proto = self.protos[srng.pick_weighted(&self.weights)];
        let session_id = (self.slice as u32).wrapping_mul(65_537).wrapping_add(j as u32);
        let packets =
            synthesize(&self.config.generator, start, proto, client, server, session_id, &mut srng);
        if !packets.is_empty() {
            self.in_flight.push(InFlight { seq: self.session_seq, packets: packets.into_iter() });
        }
        self.session_seq += 1;
    }

    /// The earliest instant any not-yet-admitted session could start: the
    /// next arrival of the current slice, or the start of the next slice.
    /// `None` once every slice is exhausted.
    fn frontier(&self) -> Option<SimTime> {
        if self.next_arrival < self.arrivals.len() {
            Some(self.arrivals[self.next_arrival])
        } else if self.slice + 1 < self.n_slices {
            Some(SimTime::from_nanos((self.slice + 1) * SLICE_NANOS))
        } else {
            None
        }
    }

    /// Produce the next record in global time order, if any.
    fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            let frontier = self.frontier();
            if let Some(top) = self.in_flight.peek() {
                // Safe to emit: every future session starts at or after the
                // frontier, and at equal instants the admitted session (lower
                // generation sequence) sorts first anyway.
                if frontier.is_none_or(|f| top.head_at() <= f) {
                    let mut top = self.in_flight.pop()?;
                    let (at, packet) =
                        top.packets.next().expect("in-flight sessions are non-empty");
                    if !top.packets.as_slice().is_empty() {
                        self.in_flight.push(top);
                    }
                    self.emitted += 1;
                    return Some(TraceRecord { at, packet, truth: None });
                }
            }
            if self.next_arrival < self.arrivals.len() {
                self.admit_next();
            } else if self.slice + 1 < self.n_slices {
                let next = self.slice + 1;
                self.load_slice(next);
            } else {
                return None;
            }
        }
    }
}

impl Iterator for RecordStream {
    type Item = Vec<TraceRecord>;

    fn next(&mut self) -> Option<Vec<TraceRecord>> {
        let mut chunk = Vec::with_capacity(self.config.chunk_records);
        while chunk.len() < self.config.chunk_records {
            match self.next_record() {
                Some(rec) => chunk.push(rec),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// Poisson draw via Knuth's product method, chunked so `exp(-λ)` never
/// underflows for large rates (a Poisson(λ₁+λ₂) is the sum of independent
/// Poisson(λ₁) and Poisson(λ₂) draws).
fn poisson(rng: &mut RngStream, lambda: f64) -> u64 {
    let mut remaining = lambda.max(0.0);
    let mut total = 0u64;
    while remaining > 0.0 {
        let step = remaining.min(500.0);
        remaining -= step;
        let limit = (-step).exp();
        let mut p = 1.0;
        let mut k = 0u64;
        loop {
            p *= rng.unit();
            if p <= limit {
                break;
            }
            k += 1;
        }
        total += k;
    }
    total
}

/// Synthesize one session's packets, all times non-decreasing from `start`.
/// Every draw comes from `srng` (or a named child of it), so the session is
/// a pure function of its `chunk/{i}/sess-{j}` lineage.
fn synthesize(
    cfg: &GeneratorConfig,
    start: SimTime,
    proto: AppProtocol,
    client: Ipv4Addr,
    server: Ipv4Addr,
    session_id: u32,
    srng: &mut RngStream,
) -> Vec<(SimTime, Packet)> {
    let mut gap_rng = srng.child("gaps");
    let mut noise_rng = srng.child("noise");
    let base = cfg.mean_turnaround.as_secs_f64() * 0.5; // fixed half-mean floor
    let mut next_gap = move || SimDuration::from_secs_f64(base + gap_rng.exponential(1.0 / base));
    let randomize = |bytes: Vec<u8>, noise: &mut RngStream| match cfg.payload_mode {
        PayloadMode::Realistic => bytes,
        PayloadMode::RandomBytes => payload::random_bytes(noise, bytes.len()),
    };

    let mut out = Vec::new();
    match proto {
        AppProtocol::Dns => {
            let q = randomize(payload::dns_query(srng), &mut noise_rng);
            let resp_len = q.len() + 16;
            let resp = randomize(payload::random_bytes(srng, resp_len), &mut noise_rng);
            let sport = 1024 + (srng.uniform_u64(0, 60000) as u16).min(60000);
            out.push((
                start,
                Packet::udp(
                    Ipv4Header::simple(client, server),
                    UdpHeader { src_port: sport, dst_port: 53 },
                    q,
                ),
            ));
            out.push((
                start + next_gap(),
                Packet::udp(
                    Ipv4Header::simple(server, client),
                    UdpHeader { src_port: 53, dst_port: sport },
                    resp,
                ),
            ));
        }
        AppProtocol::ClusterTelemetry => {
            // A burst of 4–12 telemetry datagrams, one direction.
            let n = 4 + srng.index(9);
            let source_id = srng.uniform_u64(0, 64) as u16;
            let mut t = start;
            for k in 0..n {
                let body = randomize(
                    payload::cluster_telemetry(
                        srng,
                        session_id.wrapping_mul(100) + k as u32,
                        source_id,
                    ),
                    &mut noise_rng,
                );
                out.push((
                    t,
                    Packet::udp(
                        Ipv4Header::simple(client, server),
                        UdpHeader { src_port: 7100, dst_port: 7100 },
                        body,
                    ),
                ));
                t += SimDuration::from_micros(200 + srng.uniform_u64(0, 400));
            }
        }
        AppProtocol::IcmpEcho => {
            let body = randomize(vec![0x20; 32], &mut noise_rng);
            let ident = srng.uniform_u64(0, 0x10000) as u16;
            out.push((
                start,
                Packet::icmp(
                    Ipv4Header::simple(client, server),
                    IcmpHeader { kind: IcmpKind::EchoRequest, ident, seq: 1 },
                    body.clone(),
                ),
            ));
            out.push((
                start + next_gap(),
                Packet::icmp(
                    Ipv4Header::simple(server, client),
                    IcmpHeader { kind: IcmpKind::EchoReply, ident, seq: 1 },
                    body,
                ),
            ));
        }
        tcp_proto => {
            let exchanges = tcp_exchanges(cfg, tcp_proto, srng, &mut noise_rng);
            let spec = SessionSpec {
                client,
                client_port: 1024 + (srng.uniform_u64(0, 60000) as u16),
                server,
                server_port: tcp_proto.server_port(),
                client_isn: srng.uniform_u64(0, u32::MAX as u64) as u32,
                server_isn: srng.uniform_u64(0, u32::MAX as u64) as u32,
                mss: 1460,
            };
            let segs = synthesize_session(&spec, &exchanges);
            let mut t = start;
            for (_, p) in segs {
                out.push((t, p));
                t += next_gap();
            }
        }
    }
    out
}

/// TCP application exchanges for `proto` (mirrors the materializing
/// generator's content model, drawn from the session's isolated stream).
fn tcp_exchanges(
    cfg: &GeneratorConfig,
    proto: AppProtocol,
    rng: &mut RngStream,
    noise: &mut RngStream,
) -> Vec<Exchange> {
    let mut ex: Vec<Exchange> = match proto {
        AppProtocol::Http => {
            let req = payload::http_request(rng);
            let size =
                rng.pareto(cfg.profile.mean_response_bytes as f64 * 0.5, 1.5).min(65536.0) as usize;
            let resp = payload::http_response(rng, size);
            vec![Exchange::to_server(req), Exchange::to_client(resp)]
        }
        AppProtocol::Smtp => {
            let mut ex = Vec::new();
            for _ in 0..3 + rng.index(3) {
                ex.push(Exchange::to_server(payload::smtp_command(rng)));
                ex.push(Exchange::to_client(b"250 OK\r\n".to_vec()));
            }
            ex
        }
        AppProtocol::Ftp => {
            let mut ex = Vec::new();
            for _ in 0..2 + rng.index(4) {
                ex.push(Exchange::to_server(payload::ftp_command(rng)));
                ex.push(Exchange::to_client(b"200 Command okay.\r\n".to_vec()));
            }
            ex
        }
        AppProtocol::Auth => {
            let user = payload::background_user(rng);
            let failed = rng.chance(cfg.profile.benign_login_failure_rate);
            let mut ex = Vec::new();
            if failed {
                ex.push(Exchange::to_server(payload::login_attempt(user, false)));
            }
            ex.push(Exchange::to_server(payload::login_attempt(user, true)));
            ex.push(Exchange::to_client(b"$ ".to_vec()));
            ex
        }
        AppProtocol::NfsRpc => {
            let mut ex = Vec::new();
            for _ in 0..1 + rng.index(4) {
                ex.push(Exchange::to_server(payload::nfs_rpc(rng)));
                ex.push(Exchange::to_client(payload::random_bytes(rng, 128)));
            }
            ex
        }
        // Non-TCP protocols are handled in `synthesize`; emitting nothing
        // keeps this total without a panic path in library code.
        _ => Vec::new(),
    };
    if cfg.payload_mode == PayloadMode::RandomBytes {
        for e in &mut ex {
            e.data = payload::random_bytes(noise, e.data.len());
        }
    }
    ex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::SiteProfile;

    fn config(seed: u64, secs: u64, rate: f64) -> StreamConfig {
        StreamConfig::new(GeneratorConfig::new(
            SiteProfile::realtime_cluster(),
            ArrivalProcess::Poisson { rate },
            SimDuration::from_secs(secs),
            seed,
        ))
    }

    fn assert_traces_equal(a: &Trace, b: &Trace) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn stream_is_sorted_and_deterministic() {
        let a = RecordStream::new(config(11, 8, 30.0)).unwrap().collect_trace();
        let b = RecordStream::new(config(11, 8, 30.0)).unwrap().collect_trace();
        assert!(a.len() > 100, "got {}", a.len());
        let times: Vec<_> = a.records().iter().map(|r| r.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "stream must be time-sorted");
        assert_traces_equal(&a, &b);
    }

    #[test]
    fn chunk_size_never_changes_the_bytes() {
        let base = RecordStream::new(config(7, 6, 25.0)).unwrap().collect_trace();
        for chunk in [1usize, 64, 4096] {
            let t = RecordStream::new(config(7, 6, 25.0).with_chunk_records(chunk))
                .unwrap()
                .collect_trace();
            assert_traces_equal(&base, &t);
        }
    }

    #[test]
    fn incremental_merge_matches_stable_sort_reference() {
        for seed in [1u64, 9, 1234] {
            let cfg = config(seed, 5, 40.0);
            let streamed = RecordStream::new(cfg.clone()).unwrap().collect_trace();
            let reference = RecordStream::materialize(&cfg).unwrap();
            assert_traces_equal(&streamed, &reference);
        }
    }

    #[test]
    fn shards_partition_the_stream_exactly() {
        let cfg = config(3, 6, 30.0);
        let full = RecordStream::new(cfg.clone()).unwrap().collect_trace();
        let shards = 4u32;
        let mut merged = Trace::new();
        for s in 0..shards {
            let part =
                RecordStream::new(cfg.clone().with_shard(s, shards)).unwrap().collect_trace();
            for r in part.records() {
                assert_eq!(
                    flow_shard(r.packet.ip.src, r.packet.ip.dst, shards),
                    s,
                    "record leaked into the wrong shard"
                );
                merged.push(r.clone());
            }
        }
        merged.finish();
        assert_traces_equal(&full, &merged);
    }

    #[test]
    fn constant_arrivals_stream_exactly() {
        let cfg = StreamConfig::new(GeneratorConfig::new(
            SiteProfile::office_lan(),
            ArrivalProcess::Constant { rate: 10.0 },
            SimDuration::from_secs(4),
            5,
        ));
        let t = RecordStream::new(cfg).unwrap().collect_trace();
        assert!(!t.is_empty());
        let times: Vec<_> = t.records().iter().map(|r| r.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn onoff_arrivals_are_rejected() {
        let cfg = StreamConfig::new(GeneratorConfig::new(
            SiteProfile::office_lan(),
            ArrivalProcess::OnOff { on_rate: 50.0, mean_on: 1.0, mean_off: 2.0 },
            SimDuration::from_secs(4),
            5,
        ));
        assert_eq!(RecordStream::new(cfg).err(), Some(StreamError::UnsupportedArrivals));
    }

    #[test]
    fn poisson_sampler_tracks_the_mean() {
        let mut rng = RngStream::derive(1, "poisson");
        for lambda in [0.5, 20.0, 2000.0] {
            let n = 400;
            let mean = (0..n).map(|_| poisson(&mut rng, lambda)).sum::<u64>() as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.2, "poisson({lambda}) mean {mean}");
        }
    }

    #[test]
    fn flow_shard_is_direction_independent() {
        let a = Ipv4Addr::new(10, 10, 0, 3);
        let b = Ipv4Addr::new(10, 10, 0, 9);
        for shards in [1u32, 2, 7, 16] {
            assert_eq!(flow_shard(a, b, shards), flow_shard(b, a, shards));
            assert!(flow_shard(a, b, shards) < shards);
        }
    }

    #[test]
    fn memory_stays_bounded_by_sessions_in_flight() {
        // 30 s at 50 sessions/s: the in-flight heap must stay tiny compared
        // to the total session count.
        let mut stream = RecordStream::new(config(21, 30, 50.0)).unwrap();
        let mut max_in_flight = 0usize;
        let mut total = 0usize;
        while let Some(chunk) = stream.next() {
            total += chunk.len();
            max_in_flight = max_in_flight.max(stream.in_flight.len());
        }
        assert!(total > 5_000, "got {total}");
        assert!(
            max_in_flight < 200,
            "in-flight sessions {max_in_flight} should be far below total {total}"
        );
    }
}
