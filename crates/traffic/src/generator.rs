//! The background-traffic generator: site profile → labeled-benign trace.
//!
//! Sessions (not packets) are the unit of generation, because the paper's
//! methodology is explicit that IDS load tests need connection-oriented,
//! content-realistic traffic. Each arrival instant from the configured
//! [`ArrivalProcess`] spawns one application session — a full TCP
//! handshake/data/teardown, a UDP query/response pair, a telemetry burst —
//! whose packets are spread over the following milliseconds.

use crate::arrival::ArrivalProcess;
use crate::payload;
use crate::profiles::{AppProtocol, SiteProfile};
use idse_net::packet::{IcmpHeader, IcmpKind, Ipv4Header, Packet, UdpHeader};
use idse_net::tcp::{synthesize_session, Exchange, SessionSpec};
use idse_net::trace::Trace;
use idse_sim::{RngStream, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// How session payloads are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Protocol-plausible content (the methodology's requirement).
    Realistic,
    /// Same sessions and sizes, but uniform random bytes — the paper's
    /// "meaningless data" flood, kept as an experimental control.
    RandomBytes,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// The site whose traffic is being modeled.
    pub profile: SiteProfile,
    /// Session arrival process.
    pub arrivals: ArrivalProcess,
    /// Trace length.
    pub span: SimDuration,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
    /// Payload realism mode.
    pub payload_mode: PayloadMode,
    /// Mean gap between a request packet and its response.
    pub mean_turnaround: SimDuration,
}

impl GeneratorConfig {
    /// A config with conventional defaults: realistic payloads, 1 ms mean
    /// turnaround.
    pub fn new(
        profile: SiteProfile,
        arrivals: ArrivalProcess,
        span: SimDuration,
        seed: u64,
    ) -> Self {
        Self {
            profile,
            arrivals,
            span,
            seed,
            payload_mode: PayloadMode::Realistic,
            mean_turnaround: SimDuration::from_millis(1),
        }
    }
}

/// The background generator.
#[derive(Debug)]
pub struct BackgroundGenerator {
    config: GeneratorConfig,
}

impl BackgroundGenerator {
    /// Create a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// Generate the benign background trace.
    pub fn generate(&self) -> Trace {
        let cfg = &self.config;
        let mut arrival_rng = RngStream::derive(cfg.seed, "bg/arrivals");
        let mut session_rng = RngStream::derive(cfg.seed, "bg/sessions");
        let arrivals = cfg.arrivals.arrivals(SimTime::ZERO, cfg.span, &mut arrival_rng);
        let (protos, weights) = cfg.profile.mix_weights();

        let mut trace = Trace::new();
        for (i, &start) in arrivals.iter().enumerate() {
            let proto = protos[session_rng.pick_weighted(&weights)];
            self.emit_session(&mut trace, start, proto, i as u32, &mut session_rng);
        }
        trace.finish();
        trace
    }

    fn client_addr(&self, rng: &mut RngStream) -> Ipv4Addr {
        let n = rng.uniform_u64(1, self.config.profile.client_hosts.max(2) as u64) as u32;
        self.config.profile.clients.host(n)
    }

    fn server_addr(&self, rng: &mut RngStream) -> Ipv4Addr {
        let n = rng.uniform_u64(1, self.config.profile.server_hosts.max(2) as u64) as u32;
        self.config.profile.servers.host(n)
    }

    /// Apply the payload mode. `noise` must be a stream dedicated to
    /// randomization so that switching modes never perturbs the draw
    /// sequence of the main session stream (timing parity between modes is
    /// what the realism experiment relies on).
    fn maybe_randomize(&self, bytes: Vec<u8>, noise: &mut RngStream) -> Vec<u8> {
        match self.config.payload_mode {
            PayloadMode::Realistic => bytes,
            PayloadMode::RandomBytes => payload::random_bytes(noise, bytes.len()),
        }
    }

    fn emit_session(
        &self,
        trace: &mut Trace,
        start: SimTime,
        proto: AppProtocol,
        session_idx: u32,
        rng: &mut RngStream,
    ) {
        let client = self.client_addr(rng);
        let mut server = self.server_addr(rng);
        // In the intra-cluster case client and server blocks coincide;
        // avoid degenerate self-talk.
        if server == client {
            server = self.config.profile.servers.host(u32::from(server).wrapping_add(1) & 0xff | 1);
        }
        let turnaround = || -> SimDuration {
            SimDuration::from_secs_f64(
                self.config.mean_turnaround.as_secs_f64() * 0.5, // fixed half-mean floor
            )
        };
        let mut gap_rng = rng.child(&format!("gaps-{session_idx}"));
        let mut noise_rng = rng.child(&format!("noise-{session_idx}"));
        let mut next_gap = move || -> SimDuration {
            let base = turnaround().as_secs_f64();
            SimDuration::from_secs_f64(base + gap_rng.exponential(1.0 / base))
        };

        match proto {
            AppProtocol::Dns => {
                let q = self.maybe_randomize(payload::dns_query(rng), &mut noise_rng);
                let resp_len = q.len() + 16;
                let resp =
                    self.maybe_randomize(payload::random_bytes(rng, resp_len), &mut noise_rng);
                let sport = 1024 + (rng.uniform_u64(0, 60000) as u16).min(60000);
                let fwd = Packet::udp(
                    Ipv4Header::simple(client, server),
                    UdpHeader { src_port: sport, dst_port: 53 },
                    q,
                );
                let back = Packet::udp(
                    Ipv4Header::simple(server, client),
                    UdpHeader { src_port: 53, dst_port: sport },
                    resp,
                );
                trace.push_benign(start, fwd);
                trace.push_benign(start + next_gap(), back);
            }
            AppProtocol::ClusterTelemetry => {
                // A burst of 4–12 telemetry datagrams, one direction.
                let n = 4 + rng.index(9);
                let source_id = rng.uniform_u64(0, 64) as u16;
                let mut t = start;
                for k in 0..n {
                    let body = self.maybe_randomize(
                        payload::cluster_telemetry(rng, session_idx * 100 + k as u32, source_id),
                        &mut noise_rng,
                    );
                    let p = Packet::udp(
                        Ipv4Header::simple(client, server),
                        UdpHeader { src_port: 7100, dst_port: 7100 },
                        body,
                    );
                    trace.push_benign(t, p);
                    t += SimDuration::from_micros(200 + rng.uniform_u64(0, 400));
                }
            }
            AppProtocol::IcmpEcho => {
                let body = self.maybe_randomize(vec![0x20; 32], &mut noise_rng);
                let ident = rng.uniform_u64(0, 0x10000) as u16;
                let req = Packet::icmp(
                    Ipv4Header::simple(client, server),
                    IcmpHeader { kind: IcmpKind::EchoRequest, ident, seq: 1 },
                    body.clone(),
                );
                let rep = Packet::icmp(
                    Ipv4Header::simple(server, client),
                    IcmpHeader { kind: IcmpKind::EchoReply, ident, seq: 1 },
                    body,
                );
                trace.push_benign(start, req);
                trace.push_benign(start + next_gap(), rep);
            }
            tcp_proto => {
                let exchanges = self.tcp_exchanges(tcp_proto, rng, &mut noise_rng);
                let spec = SessionSpec {
                    client,
                    client_port: 1024 + (rng.uniform_u64(0, 60000) as u16),
                    server,
                    server_port: tcp_proto.server_port(),
                    client_isn: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    server_isn: rng.uniform_u64(0, u32::MAX as u64) as u32,
                    mss: 1460,
                };
                let segs = synthesize_session(&spec, &exchanges);
                let mut t = start;
                for (_, p) in segs {
                    trace.push_benign(t, p);
                    t += next_gap();
                }
            }
        }
    }

    fn tcp_exchanges(
        &self,
        proto: AppProtocol,
        rng: &mut RngStream,
        noise: &mut RngStream,
    ) -> Vec<Exchange> {
        // Collect raw exchanges first, then apply the payload mode in one
        // pass (avoids aliasing `rng` between a closure and direct draws).
        let mut ex: Vec<Exchange> = match proto {
            AppProtocol::Http => {
                let req = payload::http_request(rng);
                let size = rng
                    .pareto(self.config.profile.mean_response_bytes as f64 * 0.5, 1.5)
                    .min(65536.0) as usize;
                let resp = payload::http_response(rng, size);
                vec![Exchange::to_server(req), Exchange::to_client(resp)]
            }
            AppProtocol::Smtp => {
                let mut ex = Vec::new();
                for _ in 0..3 + rng.index(3) {
                    ex.push(Exchange::to_server(payload::smtp_command(rng)));
                    ex.push(Exchange::to_client(b"250 OK\r\n".to_vec()));
                }
                ex
            }
            AppProtocol::Ftp => {
                let mut ex = Vec::new();
                for _ in 0..2 + rng.index(4) {
                    ex.push(Exchange::to_server(payload::ftp_command(rng)));
                    ex.push(Exchange::to_client(b"200 Command okay.\r\n".to_vec()));
                }
                ex
            }
            AppProtocol::Auth => {
                let user = payload::background_user(rng);
                let failed = rng.chance(self.config.profile.benign_login_failure_rate);
                let mut ex = Vec::new();
                if failed {
                    ex.push(Exchange::to_server(payload::login_attempt(user, false)));
                }
                ex.push(Exchange::to_server(payload::login_attempt(user, true)));
                ex.push(Exchange::to_client(b"$ ".to_vec()));
                ex
            }
            AppProtocol::NfsRpc => {
                let mut ex = Vec::new();
                for _ in 0..1 + rng.index(4) {
                    ex.push(Exchange::to_server(payload::nfs_rpc(rng)));
                    ex.push(Exchange::to_client(payload::random_bytes(rng, 128)));
                }
                ex
            }
            other => unreachable!("non-TCP protocol {other:?} handled elsewhere"),
        };
        if self.config.payload_mode == PayloadMode::RandomBytes {
            for e in &mut ex {
                e.data = payload::random_bytes(noise, e.data.len());
            }
        }
        ex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(profile: SiteProfile, seed: u64) -> GeneratorConfig {
        GeneratorConfig::new(
            profile,
            ArrivalProcess::Poisson { rate: 20.0 },
            SimDuration::from_secs(5),
            seed,
        )
    }

    #[test]
    fn generates_nonempty_sorted_benign_trace() {
        let g = BackgroundGenerator::new(small_config(SiteProfile::ecommerce_web(), 1));
        let t = g.generate();
        assert!(t.len() > 100, "got {} packets", t.len());
        assert_eq!(t.attack_packets(), 0);
        let times: Vec<_> = t.records().iter().map(|r| r.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = BackgroundGenerator::new(small_config(SiteProfile::office_lan(), 7)).generate();
        let b = BackgroundGenerator::new(small_config(SiteProfile::office_lan(), 7)).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.packet, y.packet);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = BackgroundGenerator::new(small_config(SiteProfile::office_lan(), 7)).generate();
        let b = BackgroundGenerator::new(small_config(SiteProfile::office_lan(), 8)).generate();
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn cluster_profile_is_udp_heavy() {
        let g = BackgroundGenerator::new(small_config(SiteProfile::realtime_cluster(), 3));
        let t = g.generate();
        let udp = t
            .records()
            .iter()
            .filter(|r| matches!(r.packet.transport, idse_net::Transport::Udp(_)))
            .count();
        assert!(
            udp as f64 / t.len() as f64 > 0.4,
            "cluster traffic should be UDP-heavy: {udp}/{}",
            t.len()
        );
    }

    #[test]
    fn web_profile_is_tcp_heavy() {
        let g = BackgroundGenerator::new(small_config(SiteProfile::ecommerce_web(), 3));
        let t = g.generate();
        let tcp = t
            .records()
            .iter()
            .filter(|r| matches!(r.packet.transport, idse_net::Transport::Tcp(_)))
            .count();
        assert!(tcp as f64 / t.len() as f64 > 0.8);
    }

    #[test]
    fn random_mode_changes_content_not_timing() {
        let mut cfg = small_config(SiteProfile::ecommerce_web(), 5);
        let real = BackgroundGenerator::new(cfg.clone()).generate();
        cfg.payload_mode = PayloadMode::RandomBytes;
        let rand = BackgroundGenerator::new(cfg).generate();
        assert_eq!(real.len(), rand.len());
        // Timing identical; content differs on payload-bearing packets.
        let mut differing = 0;
        for (a, b) in real.records().iter().zip(rand.records().iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.packet.payload.len(), b.packet.payload.len());
            if !a.packet.payload.is_empty() && a.packet.payload != b.packet.payload {
                differing += 1;
            }
        }
        assert!(differing > 0);
    }

    #[test]
    fn no_self_talk_sessions() {
        let g = BackgroundGenerator::new(small_config(SiteProfile::realtime_cluster(), 11));
        let t = g.generate();
        for r in t.records() {
            assert_ne!(r.packet.ip.src, r.packet.ip.dst, "self-addressed packet generated");
        }
    }
}
