//! Site profiles: what kind of network the IDS is protecting.
//!
//! The paper's second lesson (§4): "Distributed systems with high levels of
//! inter-host trust on a high-speed LAN will have distinctive traffic
//! compared to that of a web server in an e-commerce shop. Commercial IDSs
//! will often be geared toward the latter and not perform well in the
//! former situation." A [`SiteProfile`] captures that contrast as data —
//! a protocol mix over address blocks — so experiment X3 can swap profiles
//! under the same IDS and watch the false-positive ratio move.

use idse_net::Cidr;
use serde::{Deserialize, Serialize};

/// Application protocols the generators can speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppProtocol {
    /// HTTP/1.0 over TCP 80.
    Http,
    /// SMTP over TCP 25.
    Smtp,
    /// DNS over UDP 53.
    Dns,
    /// FTP control channel over TCP 21.
    Ftp,
    /// Telnet-style interactive login over TCP 23.
    Auth,
    /// Binary cluster telemetry over UDP 7100.
    ClusterTelemetry,
    /// NFS-flavoured RPC over TCP 2049.
    NfsRpc,
    /// ICMP echo (keepalive / reachability probes).
    IcmpEcho,
}

impl AppProtocol {
    /// Conventional server port (0 for ICMP).
    pub fn server_port(self) -> u16 {
        match self {
            AppProtocol::Http => 80,
            AppProtocol::Smtp => 25,
            AppProtocol::Dns => 53,
            AppProtocol::Ftp => 21,
            AppProtocol::Auth => 23,
            AppProtocol::ClusterTelemetry => 7100,
            AppProtocol::NfsRpc => 2049,
            AppProtocol::IcmpEcho => 0,
        }
    }

    /// Whether the protocol runs over TCP (vs UDP/ICMP).
    pub fn is_tcp(self) -> bool {
        matches!(
            self,
            AppProtocol::Http
                | AppProtocol::Smtp
                | AppProtocol::Ftp
                | AppProtocol::Auth
                | AppProtocol::NfsRpc
        )
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            AppProtocol::Http => "http",
            AppProtocol::Smtp => "smtp",
            AppProtocol::Dns => "dns",
            AppProtocol::Ftp => "ftp",
            AppProtocol::Auth => "auth",
            AppProtocol::ClusterTelemetry => "cluster-telemetry",
            AppProtocol::NfsRpc => "nfs-rpc",
            AppProtocol::IcmpEcho => "icmp-echo",
        }
    }
}

/// A site's traffic character.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteProfile {
    /// Profile name for reports.
    pub name: String,
    /// Protocol mix: `(protocol, relative weight)`. Weights need not sum
    /// to one.
    pub mix: Vec<(AppProtocol, f64)>,
    /// Address block clients come from.
    pub clients: Cidr,
    /// Address block servers live in.
    pub servers: Cidr,
    /// Number of distinct client hosts in play.
    pub client_hosts: u32,
    /// Number of distinct server hosts in play.
    pub server_hosts: u32,
    /// Probability that a benign login attempt fails (typo rate).
    pub benign_login_failure_rate: f64,
    /// Mean HTTP response body size in bytes (Pareto-tailed around this).
    pub mean_response_bytes: usize,
}

impl SiteProfile {
    /// The e-commerce web-shop profile: HTTP-dominated, many external
    /// clients, modest mail/DNS/FTP sidecar traffic. This is the traffic
    /// commercial IDSes of the era were tuned for.
    pub fn ecommerce_web() -> Self {
        Self {
            name: "ecommerce-web".into(),
            mix: vec![
                (AppProtocol::Http, 0.72),
                (AppProtocol::Dns, 0.12),
                (AppProtocol::Smtp, 0.08),
                (AppProtocol::Ftp, 0.04),
                (AppProtocol::Auth, 0.04),
            ],
            clients: "198.51.0.0/16".parse().expect("static CIDR"),
            servers: "10.0.1.0/24".parse().expect("static CIDR"),
            client_hosts: 2000,
            server_hosts: 6,
            benign_login_failure_rate: 0.05,
            mean_response_bytes: 4096,
        }
    }

    /// The distributed real-time cluster profile: high-rate binary
    /// telemetry and RPC between mutually trusting hosts on a fast LAN,
    /// almost no web traffic. This is the environment the paper's naval
    /// systems live in.
    pub fn realtime_cluster() -> Self {
        Self {
            name: "realtime-cluster".into(),
            mix: vec![
                (AppProtocol::ClusterTelemetry, 0.55),
                (AppProtocol::NfsRpc, 0.25),
                (AppProtocol::IcmpEcho, 0.08),
                (AppProtocol::Auth, 0.06),
                (AppProtocol::Http, 0.06),
            ],
            clients: "10.10.0.0/24".parse().expect("static CIDR"),
            servers: "10.10.0.0/24".parse().expect("static CIDR"),
            client_hosts: 32,
            server_hosts: 32,
            benign_login_failure_rate: 0.02,
            mean_response_bytes: 512,
        }
    }

    /// The real-time cluster profile scaled to `hosts` mutually trusting
    /// hosts. Small counts keep the classic `/24` block; anything larger
    /// widens to a `/16` so ROADMAP-scale runs (10k hosts) have real,
    /// distinct addresses rather than a 254-host wraparound.
    pub fn realtime_cluster_scaled(hosts: u32) -> Self {
        let hosts = hosts.clamp(2, 65_000);
        let block = if hosts <= 254 { "10.10.0.0/24" } else { "10.10.0.0/16" };
        let mut p = Self::realtime_cluster();
        p.name = format!("realtime-cluster-{hosts}h");
        p.clients = block.parse().expect("static CIDR");
        p.servers = p.clients;
        p.client_hosts = hosts;
        p.server_hosts = hosts;
        p
    }

    /// A general office LAN: balanced mix, moderate host counts.
    pub fn office_lan() -> Self {
        Self {
            name: "office-lan".into(),
            mix: vec![
                (AppProtocol::Http, 0.40),
                (AppProtocol::Smtp, 0.18),
                (AppProtocol::Dns, 0.15),
                (AppProtocol::Ftp, 0.09),
                (AppProtocol::Auth, 0.10),
                (AppProtocol::IcmpEcho, 0.08),
            ],
            clients: "192.168.0.0/22".parse().expect("static CIDR"),
            servers: "192.168.4.0/24".parse().expect("static CIDR"),
            client_hosts: 250,
            server_hosts: 10,
            benign_login_failure_rate: 0.05,
            mean_response_bytes: 2048,
        }
    }

    /// Protocol weights as parallel vectors for weighted sampling.
    pub fn mix_weights(&self) -> (Vec<AppProtocol>, Vec<f64>) {
        let protos = self.mix.iter().map(|&(p, _)| p).collect();
        let weights = self.mix.iter().map(|&(_, w)| w).collect();
        (protos, weights)
    }

    /// Fraction of the mix carried over TCP.
    pub fn tcp_fraction(&self) -> f64 {
        let total: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.mix.iter().filter(|&&(p, _)| p.is_tcp()).map(|&(_, w)| w).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_positive_mixes() {
        for p in [
            SiteProfile::ecommerce_web(),
            SiteProfile::realtime_cluster(),
            SiteProfile::office_lan(),
        ] {
            assert!(!p.mix.is_empty());
            assert!(p.mix.iter().all(|&(_, w)| w > 0.0));
            let total: f64 = p.mix.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{} mix sums to {total}", p.name);
        }
    }

    #[test]
    fn profiles_contrast_as_the_paper_describes() {
        let web = SiteProfile::ecommerce_web();
        let cluster = SiteProfile::realtime_cluster();
        // Web is TCP/HTTP-heavy; cluster is UDP/binary-heavy.
        assert!(web.tcp_fraction() > 0.8);
        assert!(cluster.tcp_fraction() < 0.5);
        // Cluster is an intra-LAN trust domain: clients == servers block.
        assert_eq!(cluster.clients, cluster.servers);
        assert_ne!(web.clients, web.servers);
    }

    #[test]
    fn ports_and_transports() {
        assert_eq!(AppProtocol::Http.server_port(), 80);
        assert!(AppProtocol::Http.is_tcp());
        assert!(!AppProtocol::Dns.is_tcp());
        assert_eq!(AppProtocol::IcmpEcho.server_port(), 0);
    }

    #[test]
    fn scaled_cluster_widens_its_block_when_needed() {
        let small = SiteProfile::realtime_cluster_scaled(64);
        assert_eq!(small.client_hosts, 64);
        assert_eq!(small.clients, "10.10.0.0/24".parse().unwrap());
        let big = SiteProfile::realtime_cluster_scaled(10_000);
        assert_eq!(big.client_hosts, 10_000);
        assert_eq!(big.clients, "10.10.0.0/16".parse().unwrap());
        assert_eq!(big.clients, big.servers);
        assert_eq!(big.mix, SiteProfile::realtime_cluster().mix);
    }

    #[test]
    fn serde_round_trip() {
        let p = SiteProfile::realtime_cluster();
        let json = serde_json::to_string(&p).unwrap();
        let back: SiteProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.mix.len(), p.mix.len());
    }
}
