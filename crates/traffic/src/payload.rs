//! Protocol-plausible payload synthesis.
//!
//! "If packets with random data are used to generate background traffic,
//! then the IDS that analyzes both the header information and message data
//! will not be realistically tested" (paper §4). These generators produce
//! application content with the surface statistics a payload-inspecting
//! engine keys on: protocol keywords, printable text, plausible structure.
//! [`random_bytes`] is the deliberately *unrealistic* control used by the
//! flooding experiment.

use idse_sim::RngStream;

/// Words used to build plausible paths, hostnames and messages. A small,
/// era-appropriate vocabulary is enough: what matters is printable,
/// keyword-bearing structure, not linguistic richness.
const WORDS: &[&str] = &[
    "index", "catalog", "order", "status", "report", "engine", "track", "sensor", "radar", "nav",
    "update", "batch", "query", "results", "images", "store", "cart", "checkout", "account",
    "profile", "search", "news", "main", "data", "archive", "log", "summary",
];

const HOSTS: &[&str] = &[
    "www.example.com",
    "shop.example.com",
    "mail.example.org",
    "ns1.example.net",
    "cluster-fs.local",
    "telemetry.local",
    "ops.example.mil",
];

const USERS: &[&str] =
    &["jsmith", "mbrown", "ops", "admin", "backup", "clee", "rjones", "operator", "watch1"];

fn word(rng: &mut RngStream) -> &'static str {
    WORDS[rng.index(WORDS.len())]
}

/// An HTTP/1.0 GET request for a plausible path.
pub fn http_request(rng: &mut RngStream) -> Vec<u8> {
    let depth = 1 + rng.index(3);
    let mut path = String::new();
    for _ in 0..depth {
        path.push('/');
        path.push_str(word(rng));
    }
    if rng.chance(0.4) {
        path.push_str(".html");
    }
    let host = HOSTS[rng.index(HOSTS.len())];
    format!(
        "GET {path} HTTP/1.0\r\nHost: {host}\r\nUser-Agent: Mozilla/4.7 [en]\r\nAccept: */*\r\n\r\n"
    )
    .into_bytes()
}

/// An HTTP/1.0 response with a text/html body of roughly `body_len` bytes.
pub fn http_response(rng: &mut RngStream, body_len: usize) -> Vec<u8> {
    let mut body = String::with_capacity(body_len + 64);
    body.push_str("<html><head><title>");
    body.push_str(word(rng));
    body.push_str("</title></head><body>");
    while body.len() < body_len {
        body.push_str("<p>");
        for _ in 0..8 {
            body.push_str(word(rng));
            body.push(' ');
        }
        body.push_str("</p>");
    }
    body.push_str("</body></html>");
    let mut out = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// An SMTP exchange fragment (one command line).
pub fn smtp_command(rng: &mut RngStream) -> Vec<u8> {
    let user = USERS[rng.index(USERS.len())];
    let host = HOSTS[rng.index(HOSTS.len())];
    let cmds = [
        format!("HELO {host}\r\n"),
        format!("MAIL FROM:<{user}@{host}>\r\n"),
        format!("RCPT TO:<{user}@{host}>\r\n"),
        "DATA\r\n".to_owned(),
        format!(
            "Subject: {} {}\r\n\r\nSee attached {} {}.\r\n.\r\n",
            word(rng),
            word(rng),
            word(rng),
            word(rng)
        ),
    ];
    cmds[rng.index(cmds.len())].clone().into_bytes()
}

/// A DNS query datagram body (simplified wire format: 12-byte header plus
/// QNAME labels — enough structure for entropy and keyword analysis).
pub fn dns_query(rng: &mut RngStream) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    let id = rng.uniform_u64(0, 0x10000) as u16;
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&[0x01, 0x00]); // standard query, RD
    out.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0, 0]); // QDCOUNT=1
    let host = HOSTS[rng.index(HOSTS.len())];
    for label in host.split('.') {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out.extend_from_slice(&[0, 1, 0, 1]); // QTYPE=A, QCLASS=IN
    out
}

/// An FTP control-channel command.
pub fn ftp_command(rng: &mut RngStream) -> Vec<u8> {
    let cmds = [
        format!("USER {}\r\n", USERS[rng.index(USERS.len())]),
        "PASS hunter2\r\n".to_owned(),
        format!("RETR {}.dat\r\n", word(rng)),
        format!("STOR {}.log\r\n", word(rng)),
        "LIST\r\n".to_owned(),
        "QUIT\r\n".to_owned(),
    ];
    cmds[rng.index(cmds.len())].clone().into_bytes()
}

/// A telnet-style login attempt. `success` controls the server's verdict
/// line; failed logins are the raw signal the anomaly engine's
/// brute-force detector consumes.
pub fn login_attempt(user: &str, success: bool) -> Vec<u8> {
    let verdict = if success { "Last login: Tue Apr 16 09:12:44" } else { "Login incorrect" };
    format!("login: {user}\r\npassword: ********\r\n{verdict}\r\n").into_bytes()
}

/// Pick a plausible background username.
pub fn background_user(rng: &mut RngStream) -> &'static str {
    USERS[rng.index(USERS.len())]
}

/// A binary cluster-telemetry record: magic, sequence, source id, and a
/// vector of f32 readings. This is the "tuned for highest performance"
/// intra-cluster protocol of the paper's real-time profile — compact,
/// binary, high-rate.
pub fn cluster_telemetry(rng: &mut RngStream, seq: u32, source_id: u16) -> Vec<u8> {
    let n = 8 + rng.index(8);
    let mut out = Vec::with_capacity(12 + n * 4);
    out.extend_from_slice(b"CTLM");
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&source_id.to_be_bytes());
    out.extend_from_slice(&(n as u16).to_be_bytes());
    for _ in 0..n {
        let reading = rng.normal(100.0, 15.0) as f32;
        out.extend_from_slice(&reading.to_be_bytes());
    }
    out
}

/// An NFS-flavoured RPC call body (XDR-ish framing with a path argument).
pub fn nfs_rpc(rng: &mut RngStream) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let xid = rng.uniform_u64(0, u32::MAX as u64) as u32;
    out.extend_from_slice(&xid.to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // CALL
    out.extend_from_slice(&2u32.to_be_bytes()); // RPC version
    out.extend_from_slice(&100003u32.to_be_bytes()); // NFS program
    out.extend_from_slice(&3u32.to_be_bytes()); // version
    let proc_num = [0u32, 1, 3, 4, 6][rng.index(5)];
    out.extend_from_slice(&proc_num.to_be_bytes());
    let path = format!("/export/{}/{}", word(rng), word(rng));
    out.extend_from_slice(&(path.len() as u32).to_be_bytes());
    out.extend_from_slice(path.as_bytes());
    while out.len() % 4 != 0 {
        out.push(0);
    }
    out
}

/// Uniform random bytes: the "meaningless data" flood payload the paper
/// warns about. Kept as the control arm of the realism experiment.
pub fn random_bytes(rng: &mut RngStream, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(99, "payload-tests")
    }

    #[test]
    fn http_request_is_wellformed() {
        let mut r = rng();
        for _ in 0..50 {
            let req = String::from_utf8(http_request(&mut r)).unwrap();
            assert!(req.starts_with("GET /"));
            assert!(req.contains("HTTP/1.0\r\n"));
            assert!(req.contains("Host: "));
            assert!(req.ends_with("\r\n\r\n"));
        }
    }

    #[test]
    fn http_response_length_header_is_consistent() {
        let mut r = rng();
        let resp = http_response(&mut r, 500);
        let text = String::from_utf8(resp).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize =
            head.lines().find_map(|l| l.strip_prefix("Content-Length: ")).unwrap().parse().unwrap();
        assert_eq!(declared, body.len());
        assert!(body.len() >= 500);
    }

    #[test]
    fn dns_query_parses_back() {
        let mut r = rng();
        let q = dns_query(&mut r);
        assert!(q.len() > 16);
        assert_eq!(q[4..6], [0, 1]); // one question
                                     // Trailing QTYPE/QCLASS.
        assert_eq!(&q[q.len() - 4..], &[0, 1, 0, 1]);
    }

    #[test]
    fn login_attempt_verdicts() {
        let ok = String::from_utf8(login_attempt("jsmith", true)).unwrap();
        let bad = String::from_utf8(login_attempt("jsmith", false)).unwrap();
        assert!(ok.contains("Last login"));
        assert!(bad.contains("Login incorrect"));
    }

    #[test]
    fn telemetry_framing() {
        let mut r = rng();
        let t = cluster_telemetry(&mut r, 42, 7);
        assert_eq!(&t[..4], b"CTLM");
        assert_eq!(u32::from_be_bytes([t[4], t[5], t[6], t[7]]), 42);
        let n = u16::from_be_bytes([t[10], t[11]]) as usize;
        assert_eq!(t.len(), 12 + n * 4);
    }

    #[test]
    fn nfs_rpc_is_word_aligned() {
        let mut r = rng();
        for _ in 0..20 {
            let b = nfs_rpc(&mut r);
            assert_eq!(b.len() % 4, 0);
            assert_eq!(&b[12..16], &100003u32.to_be_bytes());
        }
    }

    #[test]
    fn random_bytes_has_high_byte_diversity() {
        let mut r = rng();
        let b = random_bytes(&mut r, 4096);
        let distinct = b.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 200, "random payload should use most byte values");
    }

    #[test]
    fn realistic_payloads_are_mostly_printable() {
        let mut r = rng();
        let samples: Vec<Vec<u8>> = vec![
            http_request(&mut r),
            http_response(&mut r, 200),
            smtp_command(&mut r),
            ftp_command(&mut r),
        ];
        for s in samples {
            let printable = s
                .iter()
                .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n')
                .count();
            assert!(printable as f64 / s.len() as f64 > 0.95);
        }
    }
}
