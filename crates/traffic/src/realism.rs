//! Content-realism measures.
//!
//! Used by experiment X2 to *verify* the generator honours the paper's
//! realism lesson: realistic payloads must be statistically distinguishable
//! from the random-bytes flood (lower byte entropy, higher printable
//! fraction, protocol keywords present), because that distinction is
//! exactly what makes payload-inspecting IDS engines behave differently
//! under the two loads.

/// Shannon entropy of the byte distribution, in bits per byte (0–8).
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Fraction of bytes that are printable ASCII (incl. CR/LF/TAB).
pub fn printable_fraction(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let printable = data
        .iter()
        .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n' || b == b'\t')
        .count();
    printable as f64 / data.len() as f64
}

/// Protocol keywords a payload-inspecting engine of the era would key on.
pub const PROTOCOL_KEYWORDS: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b"HTTP/1.",
    b"Host: ",
    b"HELO ",
    b"MAIL FROM",
    b"RCPT TO",
    b"USER ",
    b"PASS ",
    b"RETR ",
    b"STOR ",
    b"login:",
    b"CTLM",
];

/// Whether any protocol keyword occurs in the payload.
pub fn has_protocol_keyword(data: &[u8]) -> bool {
    PROTOCOL_KEYWORDS.iter().any(|kw| contains(data, kw))
}

/// Naive substring search (payloads are small; the IDS signature engine has
/// the real multi-pattern matcher).
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Aggregate realism score over a set of payloads: mean of
/// `printable_fraction`, keyword hit rate, and normalized entropy margin
/// below random (8 bits). 1.0 ≈ clearly realistic, ~0 ≈ random flood.
pub fn realism_score<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> f64 {
    let mut n = 0u32;
    let mut total = 0.0;
    for p in payloads {
        if p.is_empty() {
            continue;
        }
        let printable = printable_fraction(p);
        let keyword = has_protocol_keyword(p) as u32 as f64;
        let entropy_margin = ((8.0 - byte_entropy(p)) / 8.0).clamp(0.0, 1.0);
        total += (printable + keyword + entropy_margin) / 3.0;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload;
    use idse_sim::RngStream;

    #[test]
    fn entropy_extremes() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[7u8; 100]), 0.0);
        let all: Vec<u8> = (0..=255u8).collect();
        assert!((byte_entropy(&all) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn printable_classification() {
        assert_eq!(printable_fraction(b"hello\r\n"), 1.0);
        assert_eq!(printable_fraction(&[0u8, 1, 2, 3]), 0.0);
        assert_eq!(printable_fraction(&[]), 0.0);
    }

    #[test]
    fn substring_search() {
        assert!(contains(b"GET /index HTTP/1.0", b"GET "));
        assert!(!contains(b"short", b"longer-needle"));
        assert!(contains(b"anything", b""));
    }

    #[test]
    fn realistic_beats_random_on_score() {
        let mut rng = RngStream::derive(42, "realism");
        let real: Vec<Vec<u8>> = (0..50).map(|_| payload::http_request(&mut rng)).collect();
        let rand: Vec<Vec<u8>> =
            real.iter().map(|p| payload::random_bytes(&mut rng, p.len())).collect();
        let score_real = realism_score(real.iter().map(|v| v.as_slice()));
        let score_rand = realism_score(rand.iter().map(|v| v.as_slice()));
        assert!(score_real > score_rand + 0.3, "realistic {score_real} vs random {score_rand}");
        assert!(score_real > 0.7);
    }

    #[test]
    fn random_bytes_have_high_entropy() {
        let mut rng = RngStream::derive(1, "ent");
        let b = payload::random_bytes(&mut rng, 8192);
        assert!(byte_entropy(&b) > 7.5);
    }

    #[test]
    fn keywords_detected_in_generated_protocols() {
        let mut rng = RngStream::derive(9, "kw");
        assert!(has_protocol_keyword(&payload::http_request(&mut rng)));
        assert!(has_protocol_keyword(&payload::login_attempt("ops", false)));
        assert!(has_protocol_keyword(&payload::cluster_telemetry(&mut rng, 1, 2)));
    }
}
