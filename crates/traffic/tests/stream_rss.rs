//! Peak-RSS smoke test: consuming a ~1M-record stream must not materialize
//! the trace. Runs in its own integration-test binary so the process's
//! `VmHWM` reading is not polluted by other tests' allocations.

/// Peak resident set size (`VmHWM`) of this process, in bytes.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().expect("VmHWM is kB-valued");
            return kb * 1024;
        }
    }
    panic!("VmHWM not present in /proc/self/status");
}

#[cfg(target_os = "linux")]
#[test]
fn million_record_stream_stays_in_bounded_rss() {
    use idse_sim::SimDuration;
    use idse_traffic::{ArrivalProcess, GeneratorConfig, RecordStream, SiteProfile, StreamConfig};

    // ~620 sessions/s x 200 s x ~8 packets/session ≈ 1M records. A
    // materialized trace of that size costs several hundred MB; the stream
    // must hold only in-flight sessions plus one chunk.
    let cfg = StreamConfig::new(GeneratorConfig::new(
        SiteProfile::realtime_cluster_scaled(1024),
        ArrivalProcess::Poisson { rate: 620.0 },
        SimDuration::from_secs(200),
        0xbeef,
    ));
    let mut total: u64 = 0;
    let mut checksum: u64 = 0;
    for chunk in RecordStream::new(cfg).expect("poisson streams") {
        total += chunk.len() as u64;
        // Touch every record so the work cannot be optimized away.
        for r in &chunk {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(u64::from(u32::from(r.packet.ip.src)))
                .wrapping_add(r.packet.payload.len() as u64);
        }
    }
    assert!(total >= 1_000_000, "stream produced {total} records (checksum {checksum:x})");
    let peak = peak_rss_bytes();
    assert!(
        peak < 256 * 1024 * 1024,
        "peak RSS {} MiB exceeds the 256 MiB streaming bound for {total} records",
        peak / (1024 * 1024)
    );
}
