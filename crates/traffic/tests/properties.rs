//! Property-based tests for the traffic generators: determinism, content
//! realism, and structural invariants over arbitrary seeds and rates.

use idse_net::trace::Trace;
use idse_sim::{RngStream, SimDuration, SimTime};
use idse_traffic::generator::PayloadMode;
use idse_traffic::{
    flow_shard, ArrivalProcess, BackgroundGenerator, GeneratorConfig, RecordStream, SiteProfile,
    StreamConfig,
};
use proptest::prelude::*;

fn profiles() -> impl Strategy<Value = SiteProfile> {
    prop_oneof![
        Just(SiteProfile::ecommerce_web()),
        Just(SiteProfile::realtime_cluster()),
        Just(SiteProfile::office_lan()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generator is a pure function of (profile, rate, span, seed).
    #[test]
    fn generation_is_deterministic(profile in profiles(), seed in any::<u64>(), rate in 5.0f64..40.0) {
        let cfg = GeneratorConfig::new(
            profile,
            ArrivalProcess::Poisson { rate },
            SimDuration::from_secs(5),
            seed,
        );
        let a = BackgroundGenerator::new(cfg.clone()).generate();
        let b = BackgroundGenerator::new(cfg).generate();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            prop_assert_eq!(x.at, y.at);
            prop_assert_eq!(&x.packet, &y.packet);
        }
    }

    /// Background traffic is benign, sorted, within the window, and never
    /// self-addressed, for any seed.
    #[test]
    fn background_invariants(profile in profiles(), seed in any::<u64>()) {
        let cfg = GeneratorConfig::new(
            profile,
            ArrivalProcess::Poisson { rate: 20.0 },
            SimDuration::from_secs(5),
            seed,
        );
        let t = BackgroundGenerator::new(cfg).generate();
        prop_assert_eq!(t.attack_packets(), 0);
        let mut last = SimTime::ZERO;
        for r in t.records() {
            prop_assert!(r.at >= last);
            last = r.at;
            prop_assert_ne!(r.packet.ip.src, r.packet.ip.dst);
        }
    }

    /// Random-byte mode preserves timing and sizes exactly.
    #[test]
    fn payload_mode_preserves_shape(seed in any::<u64>()) {
        let mut cfg = GeneratorConfig::new(
            SiteProfile::ecommerce_web(),
            ArrivalProcess::Poisson { rate: 15.0 },
            SimDuration::from_secs(4),
            seed,
        );
        let real = BackgroundGenerator::new(cfg.clone()).generate();
        cfg.payload_mode = PayloadMode::RandomBytes;
        let rand = BackgroundGenerator::new(cfg).generate();
        prop_assert_eq!(real.len(), rand.len());
        for (a, b) in real.records().iter().zip(rand.records().iter()) {
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(a.packet.payload.len(), b.packet.payload.len());
            prop_assert_eq!(a.packet.transport.protocol(), b.packet.transport.protocol());
        }
    }

    /// Arrival processes stay inside their window and are sorted, for all
    /// three models.
    #[test]
    fn arrival_windows(seed in any::<u64>(), start_s in 0u64..100, span_s in 1u64..20) {
        let start = SimTime::from_secs(start_s);
        let span = SimDuration::from_secs(span_s);
        for process in [
            ArrivalProcess::Poisson { rate: 30.0 },
            ArrivalProcess::Constant { rate: 30.0 },
            ArrivalProcess::OnOff { on_rate: 90.0, mean_on: 1.0, mean_off: 2.0 },
        ] {
            let mut rng = RngStream::derive(seed, "win");
            let arr = process.arrivals(start, span, &mut rng);
            prop_assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(arr.iter().all(|&t| t >= start && t < start + span));
        }
    }

    /// `collect()`-ing the stream equals the materialized oracle byte for
    /// byte, at every chunk size — the tentpole determinism contract: the
    /// chunk size is pure batching and never changes the bytes produced.
    #[test]
    fn stream_collect_matches_materialized(profile in profiles(), seed in any::<u64>(), rate in 5.0f64..30.0) {
        let cfg = StreamConfig::new(GeneratorConfig::new(
            profile,
            ArrivalProcess::Poisson { rate },
            SimDuration::from_secs(4),
            seed,
        ));
        let oracle = RecordStream::materialize(&cfg).unwrap();
        for chunk in [1usize, 64, 4096] {
            let streamed = RecordStream::new(cfg.clone().with_chunk_records(chunk))
                .unwrap()
                .collect_trace();
            prop_assert_eq!(streamed.len(), oracle.len());
            for (x, y) in streamed.records().iter().zip(oracle.records().iter()) {
                prop_assert_eq!(x.at, y.at);
                prop_assert_eq!(&x.packet, &y.packet);
                prop_assert_eq!(&x.truth, &y.truth);
            }
        }
    }

    /// Flow-key shards partition the stream exactly: every record lands in
    /// its own shard and the merged shards reproduce the unsharded bytes.
    #[test]
    fn stream_shards_partition(seed in any::<u64>(), shards in 2u32..6) {
        let cfg = StreamConfig::new(GeneratorConfig::new(
            SiteProfile::realtime_cluster(),
            ArrivalProcess::Poisson { rate: 20.0 },
            SimDuration::from_secs(4),
            seed,
        ));
        let full = RecordStream::new(cfg.clone()).unwrap().collect_trace();
        let mut merged = Trace::new();
        for s in 0..shards {
            let part = RecordStream::new(cfg.clone().with_shard(s, shards))
                .unwrap()
                .collect_trace();
            for r in part.records() {
                prop_assert_eq!(flow_shard(r.packet.ip.src, r.packet.ip.dst, shards), s);
                merged.push(r.clone());
            }
        }
        merged.finish();
        prop_assert_eq!(merged.len(), full.len());
        for (x, y) in merged.records().iter().zip(full.records().iter()) {
            prop_assert_eq!(x.at, y.at);
            prop_assert_eq!(&x.packet, &y.packet);
        }
    }

    /// Realism scoring separates generated protocol content from noise for
    /// any seed.
    #[test]
    fn realism_separates_content(seed in any::<u64>()) {
        use idse_traffic::{payload, realism};
        let mut rng = RngStream::derive(seed, "rl");
        let real: Vec<Vec<u8>> = (0..20).map(|_| payload::http_request(&mut rng)).collect();
        let noise: Vec<Vec<u8>> = real.iter().map(|p| payload::random_bytes(&mut rng, p.len())).collect();
        let sr = realism::realism_score(real.iter().map(|v| v.as_slice()));
        let sn = realism::realism_score(noise.iter().map(|v| v.as_slice()));
        prop_assert!(sr > sn, "realistic {sr} must beat noise {sn}");
    }
}
