use idse_traffic::{ArrivalProcess, GeneratorConfig, RecordStream, SiteProfile, StreamConfig};
use idse_sim::SimDuration;

fn trace(seed: u64) -> idse_net::trace::Trace {
    let cfg = StreamConfig::new(GeneratorConfig::new(
        SiteProfile::realtime_cluster(),
        ArrivalProcess::Poisson { rate: 30.0 },
        SimDuration::from_secs(5),
        seed,
    ));
    RecordStream::new(cfg).unwrap().collect_trace()
}

#[test]
fn different_seeds_should_produce_different_payloads() {
    let a = trace(1);
    let b = trace(2);
    // Compare payload bytes of the first few records of each (ignore times).
    let pa: Vec<_> = a.records().iter().take(20).map(|r| r.packet.clone()).collect();
    let pb: Vec<_> = b.records().iter().take(20).map(|r| r.packet.clone()).collect();
    let same = pa.iter().zip(pb.iter()).filter(|(x, y)| x == y).count();
    eprintln!("identical packets among first 20: {same}/20 (len a={} b={})", a.len(), b.len());
    // Also: constant-arrival boundary check
    let c = StreamConfig::new(GeneratorConfig::new(
        SiteProfile::office_lan(),
        ArrivalProcess::Constant { rate: 10.0 },
        SimDuration::from_secs(4),
        5,
    ));
    let t = RecordStream::new(c).unwrap();
    let mut starts = std::collections::BTreeSet::new();
    for chunk in t {
        for r in chunk {
            starts.insert(r.at.as_nanos());
        }
    }
    let expected: Vec<u64> = (1..40).map(|k| k * 100_000_000).collect();
    let missing: Vec<u64> = expected.iter().copied().filter(|t| !starts.contains(t)).collect();
    eprintln!("missing constant arrival instants: {missing:?}");
    assert!(false, "dump");
}
