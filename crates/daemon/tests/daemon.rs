//! Daemon protocol and determinism tests, all over the socketless
//! replay driver: queue backpressure, cancellation at chunk boundaries,
//! graceful-shutdown drain ordering, journal restart, and the
//! byte-identity guarantee against a direct `evaluate --store` run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use idse_daemon::{replay, DaemonConfig, DaemonCore};
use idse_eval::JobSpec;
use idse_exec::CancelToken;
use idse_store::JobState;
use serde_json::Value;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idse-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn core(capacity: usize) -> DaemonCore {
    DaemonCore::new(DaemonConfig::default().with_queue_capacity(capacity)).expect("core")
}

/// A small stream job: two shards, 64-record chunks, one product —
/// finishes in well under a second yet crosses many chunk boundaries.
fn stream_submit() -> String {
    r#"{"cmd":"submit","spec":{"kind":"stream","products":["nid"],"seed":11,"rate":500.0,"transactions":2000,"chunk_records":64,"shards":2}}"#
        .to_owned()
}

fn parsed(line: &str) -> Value {
    serde_json::from_str(line).expect("response line is JSON")
}

fn ok(line: &str) -> bool {
    parsed(line).get("ok").and_then(Value::as_bool) == Some(true)
}

#[test]
fn malformed_submits_are_rejected_with_reasons() {
    let mut core = core(2);
    let script = [
        "this is not json",
        r#"{"cmd":"submit"}"#,
        r#"{"cmd":"submit","spec":{"kind":"teleport"}}"#,
        r#"{"cmd":"submit","spec":{"kind":"evaluate","sweep":1}}"#,
        r#"{"cmd":"submit","spec":{"kind":"stream","products":["nid"],"store":{"dir":"/tmp/x"}}}"#,
        r#"{"cmd":"nonsense"}"#,
    ]
    .join("\n");
    let out = replay(&mut core, &script).expect("replay");
    assert_eq!(out.len(), 6);
    for line in &out {
        assert!(!ok(line), "every malformed line is rejected: {line}");
        let msg = parsed(line);
        let msg = msg.get("error").and_then(Value::as_str).expect("reason");
        assert!(!msg.is_empty());
    }
    assert!(out[0].contains("not valid JSON"), "{}", out[0]);
    assert!(out[1].contains("spec"), "{}", out[1]);
    assert!(out[3].contains("sweep"), "{}", out[3]);
    assert!(out[4].contains("store"), "{}", out[4]);
    assert!(core.is_idle(), "nothing was queued");
}

#[test]
fn queue_full_submit_is_rejected_with_reason_and_slot_comes_back() {
    let mut core = core(2);
    let script = format!("{0}\n{0}\n{0}", stream_submit());
    let out = replay(&mut core, &script).expect("replay");
    assert!(ok(&out[0]) && ok(&out[1]), "capacity admits two jobs");
    assert!(!ok(&out[2]), "third submit hits backpressure");
    assert!(out[2].contains("queue full: 2 of 2 slots in use"), "{}", out[2]);

    // Cancelling a queued job releases its slot deterministically: the
    // very next submit is admitted again.
    let script = format!("{{\"cmd\":\"cancel\",\"id\":1}}\n{}", stream_submit());
    let out = replay(&mut core, &script).expect("replay");
    assert!(ok(&out[0]), "{}", out[0]);
    assert!(ok(&out[1]), "slot freed by cancel admits a new job: {}", out[1]);
}

#[test]
fn double_cancel_is_a_clean_error() {
    let mut core = core(2);
    let script = format!("{}\n{1}\n{1}", stream_submit(), r#"{"cmd":"cancel","id":1}"#);
    let out = replay(&mut core, &script).expect("replay");
    assert!(ok(&out[1]), "first cancel succeeds: {}", out[1]);
    assert!(!ok(&out[2]), "second cancel is rejected: {}", out[2]);
    assert!(out[2].contains("already cancelled"), "{}", out[2]);
    let missing = replay(&mut core, r#"{"cmd":"cancel","id":99}"#).expect("replay");
    assert!(missing[0].contains("no such job"), "{}", missing[0]);
}

#[test]
fn watch_after_completion_replays_the_full_event_log() {
    let mut core = core(2);
    let script =
        format!("{}\n{{\"cmd\":\"drain\"}}\n{{\"cmd\":\"watch\",\"id\":1}}", stream_submit());
    let out = replay(&mut core, &script).expect("replay");
    assert!(out[1].contains("\"drained\":1"), "{}", out[1]);
    let watch = &out[2..];
    assert!(watch.len() > 2, "telemetry plus phase events were flushed");
    assert!(watch[0].contains("\"phase\":\"running\""), "{}", watch[0]);
    let summary = watch.last().expect("summary line");
    assert!(ok(summary) && summary.contains("\"state\":\"completed\""), "{summary}");
    assert!(
        watch.iter().any(|l| l.contains("stream.chunk.records")),
        "chunk telemetry is in the watch stream"
    );
}

#[test]
fn cancel_mid_flight_stops_at_a_chunk_boundary_with_partial_telemetry() {
    // Arm the fuse at the 3rd checkpoint before the job runs: the run
    // stops at exactly that chunk boundary, at any worker count.
    let mut core = core(2);
    let script = format!(
        "{}\n{}\n{{\"cmd\":\"drain\"}}\n{{\"cmd\":\"watch\",\"id\":1}}\n{{\"cmd\":\"status\",\"id\":1}}",
        stream_submit(),
        r#"{"cmd":"cancel","id":1,"after_chunks":3}"#
    );
    let out = replay(&mut core, &script).expect("replay");
    assert!(ok(&out[1]) && out[1].contains("\"cancel_after_chunks\":3"), "{}", out[1]);
    let status = out.last().expect("status line");
    assert!(status.contains("\"state\":\"cancelled\""), "{status}");
    assert!(status.contains("cancelled at a chunk boundary"), "{status}");

    // Partial telemetry: some chunk counters flushed, but fewer than a
    // full run of the same spec produces.
    let cancelled_chunks = out.iter().filter(|l| l.contains("stream.chunk.records")).count();
    assert!(cancelled_chunks > 0, "partial telemetry was flushed");
    let mut full = core_with_full_run();
    let full_chunks = full_run_chunk_lines(&mut full);
    assert!(
        cancelled_chunks < full_chunks,
        "cancelled run flushed {cancelled_chunks} chunk events, full run {full_chunks}"
    );
}

fn core_with_full_run() -> DaemonCore {
    let mut core = core(2);
    let script = format!("{}\n{{\"cmd\":\"drain\"}}", stream_submit());
    replay(&mut core, &script).expect("replay");
    core
}

fn full_run_chunk_lines(core: &mut DaemonCore) -> usize {
    let out = replay(core, r#"{"cmd":"watch","id":1}"#).expect("replay");
    out.iter().filter(|l| l.contains("stream.chunk.records")).count()
}

#[test]
fn graceful_shutdown_drains_in_submission_order_and_refuses_new_work() {
    let mut core = core(3);
    // Two different seeds so the jobs are distinguishable, then a
    // graceful shutdown, then a late submit that must be refused.
    let second = stream_submit().replace("\"seed\":11", "\"seed\":12");
    let script = format!(
        "{}\n{}\n{{\"cmd\":\"shutdown\",\"graceful\":true}}\n{}\n{{\"cmd\":\"list\"}}",
        stream_submit(),
        second,
        stream_submit()
    );
    let out = replay(&mut core, &script).expect("replay");
    assert!(ok(&out[0]) && ok(&out[1]));
    assert!(out[2].contains("\"graceful\":true") && out[2].contains("\"pending\":2"), "{}", out[2]);
    assert!(!ok(&out[3]), "submit after shutdown is refused");
    assert!(out[3].contains("draining"), "{}", out[3]);
    // Both drained to completion, and in submission order: job 1's
    // terminal phase event precedes job 2's first event.
    let job1 = core.job(1).expect("job 1");
    let job2 = core.job(2).expect("job 2");
    assert_eq!(job1.state, JobState::Completed);
    assert_eq!(job2.state, JobState::Completed);
    assert!(core.should_stop(), "drained daemon reports ready-to-stop");
    let list = parsed(&out[4]);
    let jobs = list.get("jobs").and_then(Value::as_array).expect("jobs array");
    assert_eq!(jobs.len(), 2, "the refused submit was never admitted");
}

#[test]
fn journal_restart_resumes_queued_jobs_and_aborts_running_ones() {
    let dir = scratch("journal");
    let journal = dir.join("daemon.journal");
    let config = DaemonConfig::default().with_queue_capacity(4).with_journal(&journal);

    // First daemon life: one job completed, one still queued at "crash".
    {
        let mut core = DaemonCore::new(config.clone()).expect("first life");
        let script = format!("{0}\n{{\"cmd\":\"drain\"}}\n{0}", stream_submit());
        let out = replay(&mut core, &script).expect("replay");
        assert!(out.iter().all(|l| ok(l)), "{out:?}");
        // The core is dropped here without draining job 2 — the crash.
    }

    // Second life: the queued job is re-admitted and runs; ids continue.
    {
        let mut core = DaemonCore::new(config.clone()).expect("second life");
        assert_eq!(core.pending().collect::<Vec<_>>(), vec![2], "job 2 resumed");
        assert_eq!(core.job(1).expect("job 1 remembered").state, JobState::Completed);
        let out = replay(&mut core, "{\"cmd\":\"drain\"}").expect("replay");
        assert!(out[0].contains("\"drained\":1"), "{}", out[0]);
        assert_eq!(core.job(2).expect("job 2").state, JobState::Completed);
        let out = replay(&mut core, &stream_submit()).expect("replay");
        assert!(out[0].contains("\"id\":3"), "ids are monotonic across restarts: {}", out[0]);
    }

    // Third life: job 3 was left Running by a simulated mid-run crash;
    // recovery re-marks it aborted.
    {
        let mut journal = idse_store::Journal::open(&journal).expect("journal");
        journal.append(idse_store::JournalEntry::transition(3, JobState::Running)).expect("append");
    }
    let core = DaemonCore::new(config).expect("third life");
    let job = core.job(3).expect("job 3 remembered");
    assert_eq!(job.state, JobState::Aborted);
    assert!(
        job.detail.as_deref().is_some_and(|d| d.contains("restarted")),
        "abort reason names the restart: {:?}",
        job.detail
    );
    assert!(core.is_idle(), "aborted work is not silently re-run");
}

/// Recursively collect relative-path → bytes for a directory tree.
fn tree_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .expect("read_dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel =
                    path.strip_prefix(root).expect("under root").to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

/// The tentpole guarantee: a daemon-submitted evaluation writes the very
/// same store bytes as a direct `evaluate --store`-style run of the same
/// spec — at one worker and at every core on the machine.
#[test]
fn daemon_store_bytes_match_direct_evaluation_at_any_worker_count() {
    let base = scratch("byte-identity");
    let spec_json = |dir: &Path| {
        format!(
            r#"{{"kind":"evaluate","products":["nid"],"seed":77,"rate":4.0,"sweep":2,"intensity":1,"store":{{"dir":{dir:?}}}}}"#,
        )
    };

    // Direct run, the way the `evaluate` bin does it: spec → request →
    // cancellable entry point (store recording happens inside).
    let direct_dir = base.join("direct");
    let spec: JobSpec = serde_json::from_str(&spec_json(&direct_dir)).expect("spec parses");
    let request = spec.to_request().expect("valid spec").with_jobs(1);
    let products = spec.resolve_products().expect("products");
    let feed = request.build_feed();
    request
        .evaluate_products_cancellable(&products, &feed, &CancelToken::new())
        .expect("direct run completes");

    // Daemon runs of the same spec at 1 worker and at every core.
    for (tag, jobs) in [("one", 1), ("all", idse_exec::Executor::new(0).workers())] {
        let daemon_dir = base.join(format!("daemon-{tag}"));
        let mut core =
            DaemonCore::new(DaemonConfig::default().with_queue_capacity(2).with_jobs(jobs))
                .expect("core");
        let script = format!(
            "{{\"cmd\":\"submit\",\"spec\":{}}}\n{{\"cmd\":\"shutdown\",\"graceful\":true}}",
            spec_json(&daemon_dir)
        );
        let out = replay(&mut core, &script).expect("replay");
        assert!(ok(&out[0]), "{}", out[0]);
        assert_eq!(core.job(1).expect("job").state, JobState::Completed);

        let direct = tree_bytes(&direct_dir);
        let daemon = tree_bytes(&daemon_dir);
        assert!(!direct.is_empty(), "direct run recorded files");
        assert_eq!(
            direct.keys().collect::<Vec<_>>(),
            daemon.keys().collect::<Vec<_>>(),
            "same file set at jobs={jobs}"
        );
        for (rel, bytes) in &direct {
            assert_eq!(Some(bytes), daemon.get(rel), "store file {rel} differs at jobs={jobs}");
        }
    }
}
