//! Daemon state machine: job table, bounded queue, journal, execution.
//!
//! [`DaemonCore`] is transport-agnostic — the replay driver and the Unix
//! socket server both feed it parsed [`Request`]s and forward the
//! response lines it returns. All state transitions happen here, under
//! one `&mut self`, so the protocol behaves identically with and without
//! a socket; only *when* queued jobs execute differs (replay drains on
//! demand, the live server has a runner loop).
//!
//! The queue is bounded by a [`SlotPool`]: each accepted job holds a
//! [`SlotGuard`] from submit until it reaches a terminal state, so
//! capacity counts queued *and* running work and is released
//! deterministically by RAII — including when a job panics (the executor
//! unwinds through `catch_unwind`) or is cancelled.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

use idse_eval::{JobKind, JobSpec};
use idse_exec::{CancelToken, SlotGuard, SlotPool};
use idse_store::{JobState, Journal, JournalEntry};
use idse_telemetry::{ChannelSink, Telemetry};
use serde_json::Value;

use crate::protocol::{error_line, line, Request};

/// Tuning knobs for a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Queue capacity: queued + running jobs the daemon admits at once.
    pub queue_capacity: usize,
    /// Worker threads each evaluation runs with.
    pub jobs: usize,
    /// Bounded telemetry buffer per job (events; oldest dropped beyond).
    pub telemetry_capacity: usize,
    /// Journal file for crash-safe restart; `None` disables journaling.
    pub journal: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig { queue_capacity: 4, jobs: 1, telemetry_capacity: 1 << 16, journal: None }
    }
}

impl DaemonConfig {
    /// Set the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-evaluation worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable journaling at `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }
}

/// One job's full daemon-side record.
#[derive(Debug)]
pub struct Job {
    /// Daemon-assigned id (monotonic across restarts via the journal).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Context for the latest transition (error text, cancel reason, …).
    pub detail: Option<String>,
    /// Flushed telemetry and phase events, one JSON line each. Partial
    /// for cancelled jobs — everything up to the observed chunk boundary.
    pub events: Vec<String>,
    /// Structured result summary for completed jobs.
    pub result: Option<Value>,
    /// Shared cancellation flag; clones travel into the executing job.
    pub cancel: CancelToken,
    /// Queue admission permit, dropped at the terminal transition.
    slot: Option<SlotGuard>,
}

impl Job {
    /// One-line JSON snapshot for `status` / `list` responses.
    pub fn snapshot(&self) -> Value {
        serde_json::json!({
            "id": self.id,
            "kind": self.spec.job_kind().map(JobKind::name).unwrap_or("invalid"),
            "label": self.spec.label(),
            "state": self.state.name(),
            "detail": self.detail,
            "events": self.events.len(),
            "result": self.result,
        })
    }
}

/// How an executed job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Ran to completion; carries the result summary.
    Completed(Value),
    /// Stopped at a cancellation point; partial telemetry was flushed.
    Cancelled,
    /// The spec failed validation or the run could not record its store.
    Failed(String),
}

/// A job claimed for execution by [`DaemonCore::begin_next`].
///
/// Everything [`execute_job`] needs, detached from the core so the live
/// server can run the job without holding the state lock.
#[derive(Debug)]
pub struct StartedJob {
    /// Daemon-assigned id.
    pub id: u64,
    /// The spec to execute.
    pub spec: JobSpec,
    /// Clone of the job's cancellation token.
    pub cancel: CancelToken,
}

/// The daemon state machine.
pub struct DaemonCore {
    config: DaemonConfig,
    slots: SlotPool,
    jobs: BTreeMap<u64, Job>,
    pending: VecDeque<u64>,
    running: Option<u64>,
    journal: Option<Journal>,
    next_id: u64,
    draining: bool,
    stopped: bool,
}

impl DaemonCore {
    /// Build a core, opening and recovering the journal when configured.
    ///
    /// Recovery re-marks jobs the previous process left `Running` as
    /// `Aborted` (their worker died with the daemon) and re-queues jobs
    /// that were still `Queued`, preserving id order.
    pub fn new(config: DaemonConfig) -> std::io::Result<DaemonCore> {
        let slots = SlotPool::new(config.queue_capacity);
        let mut core = DaemonCore {
            slots,
            jobs: BTreeMap::new(),
            pending: VecDeque::new(),
            running: None,
            journal: None,
            next_id: 1,
            draining: false,
            stopped: false,
            config,
        };
        if let Some(path) = core.config.journal.clone() {
            let mut journal = Journal::open(&path)?;
            let recovered = journal.recover("daemon restarted while the job was running")?;
            core.next_id = journal.max_id().map_or(1, |id| id + 1);
            core.journal = Some(journal);
            for (id, job) in recovered {
                let spec = job
                    .spec
                    .clone()
                    .and_then(|v| serde_json::from_value::<JobSpec>(v).ok())
                    .unwrap_or_default();
                let mut record = Job {
                    id,
                    spec,
                    state: job.state,
                    detail: job.detail,
                    events: Vec::new(),
                    result: None,
                    cancel: CancelToken::new(),
                    slot: None,
                };
                if job.state == JobState::Queued {
                    match core.slots.try_acquire() {
                        Some(slot) => {
                            record.slot = Some(slot);
                            core.pending.push_back(id);
                        }
                        None => {
                            record.state = JobState::Aborted;
                            record.detail =
                                Some("queue capacity shrank across restart".to_string());
                            core.append_journal(JournalEntry {
                                id,
                                state: JobState::Aborted,
                                detail: record.detail.clone(),
                                spec: None,
                            })?;
                        }
                    }
                }
                core.jobs.insert(id, record);
            }
        }
        Ok(core)
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Ids of jobs waiting to run, in submission order.
    pub fn pending(&self) -> impl Iterator<Item = u64> + '_ {
        self.pending.iter().copied()
    }

    /// Whether nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.running.is_none()
    }

    /// Whether a shutdown has been requested (graceful or not).
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether the daemon should stop now: a non-graceful shutdown, or a
    /// graceful one whose queue has drained.
    pub fn should_stop(&self) -> bool {
        self.stopped || (self.draining && self.is_idle())
    }

    /// Look up a job.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Handle one request, returning the response lines.
    ///
    /// Purely a state transition: `drain` and graceful `shutdown` only
    /// *mark* intent here — the caller (replay driver or server runner)
    /// decides when queued jobs actually execute.
    pub fn handle(&mut self, request: Request) -> Vec<String> {
        match request {
            Request::Submit(spec) => vec![self.submit(*spec)],
            Request::Status { id } => match self.jobs.get(&id) {
                Some(job) => {
                    vec![line(&serde_json::json!({ "ok": true, "job": job.snapshot() }))]
                }
                None => vec![error_line(&format!("no such job: {id}"))],
            },
            Request::Watch { id } => self.watch(id),
            Request::Cancel { id, after_chunks } => vec![self.cancel(id, after_chunks)],
            Request::List => {
                let jobs: Vec<Value> = self.jobs.values().map(Job::snapshot).collect();
                vec![line(&serde_json::json!({ "ok": true, "jobs": jobs }))]
            }
            Request::Drain => {
                vec![line(&serde_json::json!({ "ok": true, "pending": self.pending.len() }))]
            }
            Request::Shutdown { graceful } => {
                self.draining = true;
                if !graceful {
                    self.stopped = true;
                }
                vec![line(&serde_json::json!({
                    "ok": true,
                    "graceful": graceful,
                    "pending": self.pending.len(),
                }))]
            }
        }
    }

    /// Admit a job or reject it with a reason (the backpressure path).
    fn submit(&mut self, spec: JobSpec) -> String {
        if self.draining {
            return error_line("daemon is draining: new submissions are refused");
        }
        if let Err(e) = spec.to_request() {
            return error_line(&format!("invalid job spec: {e}"));
        }
        let Some(slot) = self.slots.try_acquire() else {
            return error_line(&format!(
                "queue full: {} of {} slots in use; retry after a job finishes",
                self.slots.in_use(),
                self.slots.capacity(),
            ));
        };
        let id = self.next_id;
        self.next_id += 1;
        let spec_value = serde_json::to_value(&spec).ok();
        let label = spec.label();
        if let Err(e) = self.append_journal(JournalEntry {
            id,
            state: JobState::Queued,
            detail: Some(label.clone()),
            spec: spec_value,
        }) {
            return error_line(&format!("journal append failed: {e}"));
        }
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: JobState::Queued,
                detail: None,
                events: Vec::new(),
                result: None,
                cancel: CancelToken::new(),
                slot: Some(slot),
            },
        );
        self.pending.push_back(id);
        line(&serde_json::json!({ "ok": true, "id": id, "state": "queued", "label": label }))
    }

    /// All event lines flushed so far, then a summary line. Valid in any
    /// state — watching a completed job replays its full event log.
    fn watch(&mut self, id: u64) -> Vec<String> {
        match self.jobs.get(&id) {
            Some(job) => {
                let mut lines = job.events.clone();
                lines.push(line(&serde_json::json!({
                    "ok": true,
                    "id": id,
                    "state": job.state.name(),
                    "events": job.events.len(),
                })));
                lines
            }
            None => vec![error_line(&format!("no such job: {id}"))],
        }
    }

    /// Event lines from `cursor` on, plus the job's current state — the
    /// incremental form the live server streams from.
    pub fn watch_from(&self, id: u64, cursor: usize) -> Option<(Vec<String>, JobState)> {
        self.jobs.get(&id).map(|job| {
            let fresh = job.events.get(cursor..).unwrap_or(&[]).to_vec();
            (fresh, job.state)
        })
    }

    fn cancel(&mut self, id: u64, after_chunks: Option<u64>) -> String {
        let Some(job) = self.jobs.get_mut(&id) else {
            return error_line(&format!("no such job: {id}"));
        };
        if job.state.is_terminal() {
            return error_line(&format!("job {id} is already {}", job.state.name()));
        }
        if let Some(n) = after_chunks {
            // Arm the fuse and leave the job queued/running: it will
            // observe cancellation at its n-th chunk boundary, which is
            // the only way to cancel "mid-flight" reproducibly.
            job.cancel.arm_after_checkpoints(n);
            return line(&serde_json::json!({
                "ok": true,
                "id": id,
                "state": job.state.name(),
                "cancel_after_chunks": n,
            }));
        }
        job.cancel.cancel();
        if job.state == JobState::Queued {
            self.pending.retain(|&p| p != id);
            // Unwrap-free finalize: transition to Cancelled and release
            // the queue slot before the job ever runs.
            if let Err(e) = self.finalize(id, JobState::Cancelled, Some("cancelled before start")) {
                return error_line(&format!("journal append failed: {e}"));
            }
            return line(&serde_json::json!({ "ok": true, "id": id, "state": "cancelled" }));
        }
        line(&serde_json::json!({ "ok": true, "id": id, "state": "cancelling" }))
    }

    /// Claim the next queued job for execution: mark it `Running`,
    /// journal the transition, and hand back what [`execute_job`] needs.
    ///
    /// A job whose token was cancelled while it sat in the queue is
    /// finalized as `Cancelled` here without executing.
    pub fn begin_next(&mut self) -> std::io::Result<Option<StartedJob>> {
        while let Some(id) = self.pending.pop_front() {
            let Some(job) = self.jobs.get_mut(&id) else { continue };
            if job.cancel.is_cancelled() {
                self.finalize(id, JobState::Cancelled, Some("cancelled before start"))?;
                continue;
            }
            job.state = JobState::Running;
            job.events.push(phase_line(id, "running"));
            let started = StartedJob { id, spec: job.spec.clone(), cancel: job.cancel.clone() };
            self.running = Some(id);
            self.append_journal(JournalEntry::transition(id, JobState::Running))?;
            return Ok(Some(started));
        }
        Ok(None)
    }

    /// Record an executed job's outcome: append its flushed events,
    /// journal the terminal transition, release the queue slot.
    pub fn finish(
        &mut self,
        id: u64,
        outcome: JobOutcome,
        events: Vec<String>,
    ) -> std::io::Result<()> {
        if self.running == Some(id) {
            self.running = None;
        }
        let (state, detail) = match &outcome {
            JobOutcome::Completed(_) => (JobState::Completed, None),
            JobOutcome::Cancelled => {
                (JobState::Cancelled, Some("cancelled at a chunk boundary".to_owned()))
            }
            JobOutcome::Failed(reason) => (JobState::Failed, Some(reason.clone())),
        };
        if let Some(job) = self.jobs.get_mut(&id) {
            job.events.extend(events);
            if let JobOutcome::Completed(result) = outcome {
                job.result = Some(result);
            }
        }
        self.finalize(id, state, detail.as_deref())
    }

    /// Run one queued job synchronously (the replay path). Returns the
    /// finished job's id.
    pub fn run_next(&mut self) -> std::io::Result<Option<u64>> {
        let Some(started) = self.begin_next()? else { return Ok(None) };
        let (outcome, events) = execute_job(
            &started.spec,
            self.config.jobs,
            self.config.telemetry_capacity,
            &started.cancel,
        );
        self.finish(started.id, outcome, events)?;
        Ok(Some(started.id))
    }

    /// Drain the queue in submission order (the replay path). Returns
    /// how many jobs ran.
    pub fn run_until_idle(&mut self) -> std::io::Result<usize> {
        let mut ran = 0;
        while self.run_next()?.is_some() {
            ran += 1;
        }
        Ok(ran)
    }

    /// Terminal transition: set state/detail, emit the phase event,
    /// journal, and drop the slot guard (deterministic release).
    fn finalize(&mut self, id: u64, state: JobState, detail: Option<&str>) -> std::io::Result<()> {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = state;
            job.detail = detail.map(str::to_owned);
            job.events.push(phase_line(id, state.name()));
            job.slot = None;
        }
        self.append_journal(JournalEntry {
            id,
            state,
            detail: detail.map(str::to_owned),
            spec: None,
        })
    }

    fn append_journal(&mut self, entry: JournalEntry) -> std::io::Result<()> {
        match &mut self.journal {
            Some(journal) => journal.append(entry),
            None => Ok(()),
        }
    }
}

/// A daemon-emitted lifecycle event, in the same JSONL stream as the
/// job's telemetry so `watch` interleaves both.
fn phase_line(id: u64, phase: &str) -> String {
    line(&serde_json::json!({ "event": "phase", "id": id, "phase": phase }))
}

/// Execute a validated spec with cooperative cancellation, returning the
/// outcome and the flushed telemetry lines.
///
/// Telemetry rides a [`ChannelSink`] — a conveyor, not a recorder: its
/// `snapshot()` is `None`, so attaching it cannot change what the
/// harness records in the run store. A daemon-submitted job therefore
/// produces byte-identical store records to a direct `evaluate --store`
/// run of the same spec; the byte-identity test pins this.
///
/// Cancellation is observed at chunk boundaries (stream path) and job
/// starts (batch path); whatever telemetry was flushed before the
/// observed checkpoint is returned alongside [`JobOutcome::Cancelled`].
pub fn execute_job(
    spec: &JobSpec,
    jobs: usize,
    telemetry_capacity: usize,
    cancel: &CancelToken,
) -> (JobOutcome, Vec<String>) {
    let request = match spec.to_request() {
        Ok(request) => request,
        Err(e) => return (JobOutcome::Failed(format!("invalid job spec: {e}")), Vec::new()),
    };
    let kind = spec.job_kind().expect("invariant: to_request validated the kind");
    let products = spec.resolve_products().expect("invariant: to_request validated products");
    let sink = ChannelSink::new(telemetry_capacity);
    let request = request.with_telemetry(Telemetry::new(sink.clone())).with_jobs(jobs);
    let outcome = match kind {
        JobKind::Evaluate => {
            let feed = request.build_feed();
            match request.evaluate_products_cancellable(&products, &feed, cancel) {
                Ok(evals) => {
                    let summary: Vec<Value> = evals
                        .iter()
                        .map(|e| {
                            serde_json::json!({
                                "product": e.scorecard.system,
                                "operating_sensitivity": e.operating_sensitivity,
                            })
                        })
                        .collect();
                    JobOutcome::Completed(serde_json::json!({ "products": summary }))
                }
                Err(_) => JobOutcome::Cancelled,
            }
        }
        JobKind::Stream => {
            match request.evaluate_stream_cancellable(
                &products,
                spec.resolved_sensitivity(),
                cancel,
            ) {
                Ok(evals) => {
                    let summary: Vec<Value> = evals
                        .iter()
                        .map(|e| {
                            serde_json::json!({
                                "product": e.scorecard.product,
                                "records": e.scorecard.records,
                                "detected_attacks": e.scorecard.detected_attacks,
                                "false_positive_ratio": e.scorecard.false_positive_ratio,
                            })
                        })
                        .collect();
                    JobOutcome::Completed(serde_json::json!({ "products": summary }))
                }
                Err(_) => JobOutcome::Cancelled,
            }
        }
    };
    let events: Vec<String> = sink.drain().iter().map(idse_telemetry::Event::to_jsonl).collect();
    (outcome, events)
}
