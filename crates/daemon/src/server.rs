//! Live service over a Unix-domain socket (Unix only).
//!
//! Two long-lived loops share one [`DaemonCore`] behind a mutex: a
//! *runner* that claims queued jobs and executes them (outside the lock,
//! so status/cancel/watch stay responsive mid-job), and an *accept* loop
//! serving protocol connections. Both are spawned through
//! [`idse_exec::with_worker`] — the one sanctioned thread primitive — and
//! poll with [`idse_exec::breathe`] instead of spinning.
//!
//! The listener is non-blocking so the accept loop can notice shutdown
//! between connections; accepted streams switch back to blocking for
//! plain line-at-a-time I/O. One connection may carry many requests;
//! `watch` streams incrementally until the job reaches a terminal state.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Mutex;

use idse_exec::{breathe, with_worker};

use crate::core::{execute_job, DaemonCore};
use crate::protocol::{error_line, line, Request};

/// Serve the protocol on `socket` until a shutdown request completes.
///
/// Graceful shutdown drains the queue (in submission order, by the
/// single runner) while still answering status/watch, then returns
/// `Ok(())`; the process exit code is the caller's to decide.
pub fn serve(core: DaemonCore, socket: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let shared = Mutex::new(core);
    let (runner, accept) = with_worker(|| runner_loop(&shared), || accept_loop(&listener, &shared));
    let _ = std::fs::remove_file(socket);
    runner.and(accept)
}

fn lock(shared: &Mutex<DaemonCore>) -> std::sync::MutexGuard<'_, DaemonCore> {
    shared.lock().expect("invariant: daemon state lock is never poisoned")
}

/// Claim → execute → finish, one job at a time, until shutdown.
fn runner_loop(shared: &Mutex<DaemonCore>) -> std::io::Result<()> {
    loop {
        let started = {
            let mut core = lock(shared);
            if core.should_stop() {
                return Ok(());
            }
            core.begin_next()?
        };
        match started {
            Some(job) => {
                let (jobs, capacity) = {
                    let core = lock(shared);
                    (core.config().jobs, core.config().telemetry_capacity)
                };
                let (outcome, events) = execute_job(&job.spec, jobs, capacity, &job.cancel);
                lock(shared).finish(job.id, outcome, events)?;
            }
            None => breathe(),
        }
    }
}

fn accept_loop(listener: &UnixListener, shared: &Mutex<DaemonCore>) -> std::io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // A broken client must not take the daemon down.
                if let Err(e) = serve_client(stream, shared) {
                    eprintln!("daemon: client connection error: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if lock(shared).should_stop() {
                    return Ok(());
                }
                breathe();
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_client(stream: UnixStream, shared: &Mutex<DaemonCore>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut text = String::new();
    loop {
        text.clear();
        if reader.read_line(&mut text)? == 0 {
            return Ok(());
        }
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match Request::parse(trimmed) {
            Ok(request) => request,
            Err(e) => {
                writeln!(writer, "{}", error_line(&e))?;
                writer.flush()?;
                continue;
            }
        };
        match request {
            Request::Watch { id } => stream_watch(&mut writer, shared, id)?,
            Request::Drain => {
                // The runner drains; this connection just waits for idle.
                loop {
                    let core = lock(shared);
                    if core.is_idle() || core.should_stop() {
                        break;
                    }
                    drop(core);
                    breathe();
                }
                writeln!(writer, "{}", line(&serde_json::json!({ "ok": true, "drained": true })))?;
            }
            other => {
                for response in lock(shared).handle(other) {
                    writeln!(writer, "{response}")?;
                }
            }
        }
        writer.flush()?;
    }
}

/// Stream a job's event lines from the start, then follow the live tail
/// until the job is terminal (or the daemon stops). Ends with a summary
/// line so clients can tell the stream from the verdict.
fn stream_watch(
    writer: &mut UnixStream,
    shared: &Mutex<DaemonCore>,
    id: u64,
) -> std::io::Result<()> {
    let mut cursor = 0usize;
    loop {
        let (fresh, state, stopping) = {
            let core = lock(shared);
            match core.watch_from(id, cursor) {
                Some((fresh, state)) => (fresh, state, core.should_stop()),
                None => {
                    drop(core);
                    writeln!(writer, "{}", error_line(&format!("no such job: {id}")))?;
                    return Ok(());
                }
            }
        };
        for event in &fresh {
            writeln!(writer, "{event}")?;
        }
        cursor += fresh.len();
        if !fresh.is_empty() {
            writer.flush()?;
        }
        if state.is_terminal() || stopping {
            writeln!(
                writer,
                "{}",
                line(&serde_json::json!({
                    "ok": true,
                    "id": id,
                    "state": state.name(),
                    "events": cursor,
                }))
            )?;
            return Ok(());
        }
        breathe();
    }
}
