//! Continuous evaluation service for the IDS evaluation harness.
//!
//! Batch bins run one evaluation and exit; a procurement lab wants a
//! *service*: submit jobs, watch their telemetry, cancel the ones that
//! turned out wrong, and survive a restart without losing the ledger.
//! This crate is that service, built from the pieces the workspace
//! already trusts:
//!
//! * Jobs are [`idse_eval::JobSpec`]s — the same validated spec the
//!   `evaluate` CLI builds from its flags, so a daemon-submitted run and
//!   a direct CLI run produce byte-identical store records by
//!   construction.
//! * Admission is a bounded [`idse_exec::SlotPool`]: a full queue rejects
//!   the submit with a reason (backpressure is explicit, never a silent
//!   wait), and a finished, cancelled, or panicked job releases its slot
//!   deterministically through the RAII guard.
//! * Cancellation is the cooperative [`idse_exec::CancelToken`], observed
//!   at the chunk boundaries of the streaming path and the job starts of
//!   the batch path; the checkpoint fuse makes mid-flight cancellation
//!   reproducible at any worker count.
//! * Every state transition is appended to the crash-safe
//!   [`idse_store::Journal`]; on restart, queued work resumes and jobs
//!   that were mid-flight are re-marked aborted.
//!
//! The protocol is line-delimited JSON ([`protocol`]). It runs over a
//! Unix-domain socket ([`server`], Unix only) or, for deterministic tests
//! and CI, over a replay script with no socket at all ([`replay`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod protocol;
pub mod replay;
#[cfg(unix)]
pub mod server;

pub use core::{execute_job, DaemonConfig, DaemonCore, Job, JobOutcome};
pub use protocol::Request;
pub use replay::replay;
