//! Socketless protocol replay — the deterministic test surface.
//!
//! A replay script is the wire protocol verbatim: one JSON request per
//! line (blank lines and `#` comments skipped). Submitted jobs queue but
//! do not run until a `drain` request or a graceful `shutdown` executes
//! them synchronously, in submission order — so a script's output is a
//! pure function of its text, the specs' seeds, and the worker count,
//! and the byte-identity test can compare a daemon run against a direct
//! CLI run with no timing involved.

use crate::core::DaemonCore;
use crate::protocol::{error_line, line, Request};

/// Run a protocol script against a core, returning every response line
/// in order. I/O errors are journal failures — nothing else here touches
/// the filesystem.
pub fn replay(core: &mut DaemonCore, script: &str) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for text in script.lines() {
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let request = match Request::parse(text) {
            Ok(request) => request,
            Err(e) => {
                out.push(error_line(&e));
                continue;
            }
        };
        match request {
            Request::Drain => {
                let drained = core.run_until_idle()?;
                out.push(line(&serde_json::json!({ "ok": true, "drained": drained })));
            }
            Request::Shutdown { graceful } => {
                // Mark intent first so the drain below runs with submits
                // already refused, then drain in submission order.
                out.extend(core.handle(Request::Shutdown { graceful }));
                if graceful {
                    core.run_until_idle()?;
                }
            }
            other => out.extend(core.handle(other)),
        }
    }
    Ok(out)
}
