//! The daemon's line-delimited JSON protocol.
//!
//! One request per line, one or more response lines per request. Every
//! response line is a JSON object with an `"ok"` field; errors carry the
//! reason in `"error"` so a rejected submit (malformed spec, full queue,
//! draining daemon) is always distinguishable from a transport failure.
//!
//! Requests are parsed by hand over [`serde_json::Value`] rather than
//! derived, so a malformed line yields a message naming the field that is
//! wrong instead of a generic deserialization error — the protocol is the
//! user interface of the daemon.
//!
//! | command    | fields                               | effect |
//! |------------|--------------------------------------|--------|
//! | `submit`   | `spec` (a [`JobSpec`] object)        | enqueue a job; rejected with a reason when the queue is full or the daemon is draining |
//! | `status`   | `id`                                 | one snapshot line for the job |
//! | `watch`    | `id`                                 | the job's flushed telemetry/phase lines, then a summary line |
//! | `cancel`   | `id`, optional `after_chunks`        | cancel now, or arm the checkpoint fuse to cancel at the n-th chunk boundary |
//! | `list`     | —                                    | one line with every job's snapshot |
//! | `drain`    | —                                    | run every queued job to completion, in submission order |
//! | `shutdown` | optional `graceful` (default `true`) | stop accepting submits; graceful drains the queue first |

use idse_eval::JobSpec;
use serde_json::Value;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job described by a validated [`JobSpec`].
    Submit(Box<JobSpec>),
    /// Report one job's state.
    Status {
        /// Daemon-assigned job id.
        id: u64,
    },
    /// Stream a job's flushed telemetry and phase events.
    Watch {
        /// Daemon-assigned job id.
        id: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Daemon-assigned job id.
        id: u64,
        /// When set, arm the checkpoint fuse instead of cancelling
        /// immediately: the job stops at its `n`-th chunk boundary, at
        /// any worker count — the deterministic mid-flight cancel.
        after_chunks: Option<u64>,
    },
    /// Report every job's state.
    List,
    /// Run every queued job to completion in submission order.
    Drain,
    /// Stop the daemon.
    Shutdown {
        /// Drain the queue before stopping; `false` leaves queued jobs
        /// in the journal for the next start to resume.
        graceful: bool,
    },
}

impl Request {
    /// Parse one protocol line. Errors name the missing or mistyped
    /// field; they are protocol responses, not I/O failures.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("request is not valid JSON: {e}"))?;
        let cmd = value
            .get("cmd")
            .ok_or_else(|| "request must be an object with a \"cmd\" field".to_string())?
            .as_str()
            .ok_or_else(|| "\"cmd\" must be a string".to_string())?;
        match cmd {
            "submit" => {
                let spec = value
                    .get("spec")
                    .ok_or_else(|| "submit requires a \"spec\" object".to_string())?;
                let spec: JobSpec = serde_json::from_value(spec.clone())
                    .map_err(|e| format!("malformed job spec: {e}"))?;
                Ok(Request::Submit(Box::new(spec)))
            }
            "status" => Ok(Request::Status { id: required_id(&value)? }),
            "watch" => Ok(Request::Watch { id: required_id(&value)? }),
            "cancel" => {
                let id = required_id(&value)?;
                let after_chunks = match value.get("after_chunks") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or_else(|| "\"after_chunks\" must be an integer".to_string())?,
                    ),
                };
                Ok(Request::Cancel { id, after_chunks })
            }
            "list" => Ok(Request::List),
            "drain" => Ok(Request::Drain),
            "shutdown" => {
                let graceful = match value.get("graceful") {
                    None | Some(Value::Null) => true,
                    Some(v) => {
                        v.as_bool().ok_or_else(|| "\"graceful\" must be a boolean".to_string())?
                    }
                };
                Ok(Request::Shutdown { graceful })
            }
            other => Err(format!(
                "unknown command {other:?}: expected submit, status, watch, cancel, \
                 list, drain, or shutdown"
            )),
        }
    }
}

fn required_id(value: &Value) -> Result<u64, String> {
    value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| "request requires an integer \"id\"".to_string())
}

/// Serialize an error response line.
pub fn error_line(message: &str) -> String {
    line(&serde_json::json!({ "ok": false, "error": message }))
}

/// Serialize one response [`Value`] as a protocol line (no newline).
pub fn line(value: &Value) -> String {
    serde_json::to_string(value).expect("invariant: protocol values serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(Request::parse(r#"{"cmd":"list"}"#), Ok(Request::List));
        assert_eq!(Request::parse(r#"{"cmd":"drain"}"#), Ok(Request::Drain));
        assert_eq!(Request::parse(r#"{"cmd":"status","id":3}"#), Ok(Request::Status { id: 3 }));
        assert_eq!(Request::parse(r#"{"cmd":"watch","id":1}"#), Ok(Request::Watch { id: 1 }));
        assert_eq!(
            Request::parse(r#"{"cmd":"cancel","id":2,"after_chunks":5}"#),
            Ok(Request::Cancel { id: 2, after_chunks: Some(5) })
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown { graceful: true })
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"shutdown","graceful":false}"#),
            Ok(Request::Shutdown { graceful: false })
        );
        let submit =
            Request::parse(r#"{"cmd":"submit","spec":{"kind":"stream","transactions":100}}"#);
        match submit {
            Ok(Request::Submit(spec)) => assert_eq!(spec.transactions, Some(100)),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn errors_name_the_broken_field() {
        let e = Request::parse("not json").expect_err("invalid JSON");
        assert!(e.contains("not valid JSON"), "{e}");
        let e = Request::parse(r#"{"cmd":"status"}"#).expect_err("missing id");
        assert!(e.contains("\"id\""), "{e}");
        let e = Request::parse(r#"{"cmd":"submit"}"#).expect_err("missing spec");
        assert!(e.contains("\"spec\""), "{e}");
        let e = Request::parse(r#"{"cmd":"frobnicate"}"#).expect_err("unknown cmd");
        assert!(e.contains("unknown command"), "{e}");
        let e = Request::parse(r#"{"cmd":"cancel","id":1,"after_chunks":"soon"}"#)
            .expect_err("bad after_chunks");
        assert!(e.contains("after_chunks"), "{e}");
    }
}
