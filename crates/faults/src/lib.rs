//! # idse-faults — deterministic fault injection and survivability scoring
//!
//! The paper evaluates IDSes *for distributed real-time systems*, and its
//! class-2 Architectural metrics presume components can die: the Figure 2
//! cardinalities mark the load balancer and management console conditional
//! ("1c"), and Sensor M:M Analyzer promises that detection work can move
//! between instances. This crate makes those promises testable: a
//! [`FaultPlan`] is a declarative sim-time schedule of typed fault events —
//! component crash/restart for each of the five Figure-1 stages, tap-link
//! partition/loss/latency degradation, host CPU exhaustion, clock skew, and
//! alert-channel drop — that `idse-ids::pipeline` injects into a run.
//!
//! Determinism is load-bearing, exactly as in the rest of the workspace:
//!
//! * a plan [`compile`](FaultPlan::compile)s to a canonical interval table
//!   sorted by `(time, kind)`, so *insertion order never matters*;
//! * every stochastic choice (scattered crash times, per-record loss draws)
//!   is drawn from [`idse_sim::derive_seed`]-derived streams keyed by the
//!   plan label and the record index, never from a shared stream whose
//!   consumption order could depend on scheduling — a plan replays
//!   byte-identically at any `--jobs N`.
//!
//! The run-side accounting lands in [`FaultStats`]; `idse-eval` pairs a
//! faulted run with its fault-free twin and condenses both into a
//! [`Survivability`] measure, which explicit rubrics convert into the four
//! survivability scorecard metrics (detection retention under failure,
//! alert-loss ratio, mean sim-time-to-reroute, recovery completeness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod plan;

pub use compiled::CompiledFaults;
pub use plan::{FaultComponent, FaultEvent, FaultKind, FaultPlan};

use idse_sim::SimDuration;
use serde::Serialize;

/// Run-side fault accounting, produced by the pipeline while a
/// [`CompiledFaults`] schedule is active. All zeros when no faults were
/// injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Work items (records or detections) re-routed around a dead instance.
    pub rerouted: u64,
    /// Total extra sim-time paid by re-routing backoff.
    pub reroute_delay_total: SimDuration,
    /// Records that bypassed a dead load balancer straight to the sensors
    /// (the optional "1c" side failing open).
    pub lb_bypassed: u64,
    /// Alerts/detections buffered across a downstream outage.
    pub alerts_buffered: u64,
    /// Buffered items successfully replayed after a restart.
    pub replayed: u64,
    /// Alerts/detections irrecoverably lost to a fault (hang with no
    /// restart, bounded buffer overflow, alert-channel drop).
    pub lost_alerts: u64,
    /// Trace records lost before inspection to a link partition or loss
    /// degradation.
    pub lost_records: u64,
    /// Alerts whose presentation timestamp was shifted by clock skew.
    pub skewed_alerts: u64,
    /// Injected crashes whose outage started within the run.
    pub crashes_seen: u32,
    /// Injected crashes whose component came back before the run ended.
    pub recoveries_seen: u32,
}

impl FaultStats {
    /// Mean extra sim-time per re-routed item (zero when nothing
    /// re-routed).
    pub fn mean_reroute(&self) -> SimDuration {
        match self.reroute_delay_total.as_nanos().checked_div(self.rerouted) {
            Some(mean) => SimDuration::from_nanos(mean),
            None => SimDuration::ZERO,
        }
    }

    /// Whether any fault left a mark on the run.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// The survivability measure: one faulted run condensed against its
/// fault-free twin. Feeds the four class-2 survivability metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Survivability {
    /// True-positive alerts under faults / true-positive alerts without,
    /// clamped to `[0, 1]`. 1.0 = the faults cost no detections.
    pub detection_retention: f64,
    /// Alerts lost to faults / (alerts delivered + alerts lost) in the
    /// faulted run. 0.0 = every surviving detection reached the operator.
    pub alert_loss_ratio: f64,
    /// Mean extra sim-time per re-routed work item.
    pub mean_reroute: SimDuration,
    /// Recovered crashes / injected crashes (1.0 when nothing crashed).
    pub recovery_completeness: f64,
}

impl Survivability {
    /// Condense a faulted run against its fault-free twin.
    ///
    /// `baseline_true_alerts` / `faulted_true_alerts` are ground-truth-
    /// labeled alert counts from the two runs; `faulted_alerts` is the
    /// faulted run's total delivered alert count; `stats` is the faulted
    /// run's accounting.
    pub fn measure(
        baseline_true_alerts: u64,
        faulted_true_alerts: u64,
        faulted_alerts: u64,
        stats: &FaultStats,
    ) -> Survivability {
        let detection_retention = if baseline_true_alerts == 0 {
            1.0
        } else {
            (faulted_true_alerts as f64 / baseline_true_alerts as f64).min(1.0)
        };
        let alert_loss_ratio = {
            let denom = faulted_alerts + stats.lost_alerts;
            if denom == 0 {
                0.0
            } else {
                stats.lost_alerts as f64 / denom as f64
            }
        };
        let recovery_completeness = if stats.crashes_seen == 0 {
            1.0
        } else {
            f64::from(stats.recoveries_seen) / f64::from(stats.crashes_seen)
        };
        Survivability {
            detection_retention,
            alert_loss_ratio,
            mean_reroute: stats.mean_reroute(),
            recovery_completeness,
        }
    }

    /// The no-faults measure: perfect on every axis.
    pub fn unchallenged() -> Survivability {
        Survivability {
            detection_retention: 1.0,
            alert_loss_ratio: 0.0,
            mean_reroute: SimDuration::ZERO,
            recovery_completeness: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_reroute_divides_total_by_count() {
        let stats = FaultStats {
            rerouted: 4,
            reroute_delay_total: SimDuration::from_micros(400),
            ..FaultStats::default()
        };
        assert_eq!(stats.mean_reroute(), SimDuration::from_micros(100));
        assert!(!stats.is_quiet());
        assert!(FaultStats::default().is_quiet());
        assert_eq!(FaultStats::default().mean_reroute(), SimDuration::ZERO);
    }

    #[test]
    fn survivability_measures_retention_and_loss() {
        let stats = FaultStats {
            lost_alerts: 5,
            crashes_seen: 2,
            recoveries_seen: 1,
            ..FaultStats::default()
        };
        let s = Survivability::measure(20, 15, 15, &stats);
        assert!((s.detection_retention - 0.75).abs() < 1e-12);
        assert!((s.alert_loss_ratio - 0.25).abs() < 1e-12);
        assert!((s.recovery_completeness - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quiet_runs_are_unchallenged() {
        let s = Survivability::measure(0, 0, 0, &FaultStats::default());
        assert_eq!(s, Survivability::unchallenged());
    }

    #[test]
    fn retention_is_clamped_to_one() {
        let s = Survivability::measure(10, 12, 12, &FaultStats::default());
        assert!((s.detection_retention - 1.0).abs() < 1e-12);
    }
}
