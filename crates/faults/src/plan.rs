//! Declarative fault plans: typed fault events on the sim-time axis.
//!
//! A [`FaultPlan`] is pure data — building one runs nothing. The pipeline
//! consumes its [`compile`](FaultPlan::compile)d form; the canonical sort
//! inside `compile` makes the plan's *insertion order immaterial*, which
//! `tests/fault_determinism.rs` pins with a permutation proptest.

use idse_sim::{derive_seed, RngStream, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Seed-derivation domain separating fault draws from every other
/// consumer of the master seed.
const FAULT_SEED_DOMAIN: &str = "idse-faults";

/// A targetable component instance in the Figure-1 chain.
///
/// Indices address instances of the M-side stages (`Sensor(0)` is the
/// first sensor); the 1-side stages are singletons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultComponent {
    /// The (optional, "1c") load-balancing subprocess.
    LoadBalancer,
    /// Sensor instance `i`.
    Sensor(u8),
    /// Analyzer instance `i`.
    Analyzer(u8),
    /// The monitoring subprocess (the "1" in Analyzer M:1 Monitor).
    Monitor,
    /// The (optional, "1c") management console.
    Manager,
}

impl FaultComponent {
    /// Display name, e.g. `analyzer[0]`.
    pub fn name(self) -> String {
        match self {
            FaultComponent::LoadBalancer => "load-balancer".to_owned(),
            FaultComponent::Sensor(i) => format!("sensor[{i}]"),
            FaultComponent::Analyzer(i) => format!("analyzer[{i}]"),
            FaultComponent::Monitor => "monitor".to_owned(),
            FaultComponent::Manager => "manager".to_owned(),
        }
    }
}

/// A typed fault. Quantities that feed random draws are integral so the
/// kind itself is totally ordered (the canonical sort key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Kill a component; it restarts after `restart_after` (never, for
    /// `None` — the paper's "hang" anchor).
    Crash {
        /// Which instance dies.
        component: FaultComponent,
        /// Downtime before the instance serves again (`None` = forever).
        restart_after: Option<SimDuration>,
    },
    /// Fully partition the tap feed: no record reaches the sensors for
    /// `duration`.
    LinkPartition {
        /// Partition length.
        duration: SimDuration,
    },
    /// Degrade the tap feed: each record is independently lost with
    /// probability `loss_per_mille`/1000 and survivors arrive
    /// `extra_latency` late, for `duration`.
    LinkDegrade {
        /// Loss probability in thousandths (0–1000).
        loss_per_mille: u16,
        /// Added delivery delay for surviving records.
        extra_latency: SimDuration,
        /// Degradation length.
        duration: SimDuration,
    },
    /// A co-resident workload steals `steal_percent` of every monitored
    /// host's CPU for `duration` (host-agent inspection slows or sheds).
    CpuExhaustion {
        /// Percent of host CPU capacity stolen (0–100).
        steal_percent: u8,
        /// Exhaustion length.
        duration: SimDuration,
    },
    /// The component's clock runs ahead: timestamps it assigns are shifted
    /// by `offset` for the rest of the run.
    ClockSkew {
        /// Whose clock skews.
        component: FaultComponent,
        /// The (positive) skew.
        offset: SimDuration,
    },
    /// The analyzer→monitor alert channel silently drops every alert for
    /// `duration`.
    AlertChannelDrop {
        /// Drop-window length.
        duration: SimDuration,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Sim-time the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative sim-time schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    label: String,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan. The label names the scenario and seeds every
    /// stochastic draw the plan's faults make.
    pub fn new(label: impl Into<String>) -> Self {
        FaultPlan { label: label.into(), events: Vec::new() }
    }

    /// The scenario label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Schedule `kind` at `at` (builder form).
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Schedule `kind` at `at`.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// The scheduled events in canonical `(time, kind)` order — the order
    /// they were inserted in is deliberately unobservable.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort();
        events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan's derived seed: every stochastic draw a fault makes
    /// (per-record link-loss coin flips) flows from this, so the draws are
    /// a pure function of the label — never of scheduling.
    pub fn seed(&self) -> u64 {
        derive_seed(derive_seed(0, FAULT_SEED_DOMAIN), &self.label)
    }

    /// Compile to the canonical interval table the pipeline queries.
    pub fn compile(&self) -> crate::CompiledFaults {
        crate::CompiledFaults::compile(self)
    }

    /// A scenario with `components` each crashed once at a stochastic
    /// time inside `[window_start, window_end)`, restarting after
    /// `restart_after`. Times are drawn from streams derived via
    /// [`idse_sim::derive_seed`] from `master_seed`, the plan label and
    /// the component name — byte-identical on every replay, independent of
    /// the slice order handed in.
    pub fn scattered_crashes(
        label: impl Into<String>,
        master_seed: u64,
        components: &[FaultComponent],
        window_start: SimTime,
        window_end: SimTime,
        restart_after: Option<SimDuration>,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new(label);
        let span = window_end.saturating_since(window_start).as_nanos();
        for &component in components {
            let mut rng = RngStream::derive(
                derive_seed(master_seed, &plan.label),
                &format!("{FAULT_SEED_DOMAIN}/crash/{}", component.name()),
            );
            let offset = if span == 0 { 0 } else { rng.uniform_u64(0, span) };
            plan.push(
                window_start + SimDuration::from_nanos(offset),
                FaultKind::Crash { component, restart_after },
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_canonical_order() {
        let a = FaultKind::LinkPartition { duration: SimDuration::from_secs(1) };
        let b = FaultKind::Crash { component: FaultComponent::Monitor, restart_after: None };
        let p1 = FaultPlan::new("x").with(SimTime::from_secs(5), a).with(SimTime::from_secs(2), b);
        let p2 = FaultPlan::new("x").with(SimTime::from_secs(2), b).with(SimTime::from_secs(5), a);
        assert_eq!(p1.events(), p2.events());
        assert_eq!(p1.events()[0].at, SimTime::from_secs(2));
    }

    #[test]
    fn seed_depends_only_on_label() {
        let p1 = FaultPlan::new("s").with(
            SimTime::ZERO,
            FaultKind::AlertChannelDrop { duration: SimDuration::from_secs(1) },
        );
        let p2 = FaultPlan::new("s");
        assert_eq!(p1.seed(), p2.seed());
        assert_ne!(p1.seed(), FaultPlan::new("t").seed());
    }

    #[test]
    fn scattered_crashes_are_reproducible_and_slice_order_free() {
        let comps =
            [FaultComponent::Sensor(0), FaultComponent::Analyzer(1), FaultComponent::Monitor];
        let rev: Vec<FaultComponent> = comps.iter().rev().copied().collect();
        let window = (SimTime::from_secs(1), SimTime::from_secs(9));
        let mk = |cs: &[FaultComponent]| {
            FaultPlan::scattered_crashes("burst", 7, cs, window.0, window.1, None).events()
        };
        assert_eq!(mk(&comps), mk(&rev));
        for e in mk(&comps) {
            assert!(e.at >= window.0 && e.at < window.1, "{:?} outside window", e.at);
        }
        assert_ne!(
            FaultPlan::scattered_crashes("burst", 7, &comps, window.0, window.1, None).events(),
            FaultPlan::scattered_crashes("burst", 8, &comps, window.0, window.1, None).events(),
            "a different master seed must move the crash times"
        );
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultPlan::new("rt").with(
            SimTime::from_secs(3),
            FaultKind::LinkDegrade {
                loss_per_mille: 250,
                extra_latency: SimDuration::from_millis(5),
                duration: SimDuration::from_secs(4),
            },
        );
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(plan, back);
    }
}
