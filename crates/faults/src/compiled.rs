//! The compiled fault schedule: a canonical interval table the pipeline
//! queries once per event.
//!
//! Compilation normalizes a [`FaultPlan`] into per-category interval lists
//! sorted by `(start, kind)`. Every query is a pure function of
//! `(table, now, record index)` — nothing here holds mutable state, so two
//! pipeline runs over the same plan cannot diverge however their jobs are
//! scheduled.

use crate::plan::{FaultComponent, FaultKind, FaultPlan};
use idse_sim::{derive_seed, RngStream, SimDuration, SimTime};
use serde::Serialize;

/// One component outage: `[start, end)` (`end == SimTime::MAX` for a hang
/// that never restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Outage {
    /// Which instance is down.
    pub component: FaultComponent,
    /// Outage start.
    pub start: SimTime,
    /// Outage end (exclusive; `SimTime::MAX` = never recovers).
    pub end: SimTime,
}

/// The queryable form of a [`FaultPlan`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct CompiledFaults {
    label: String,
    seed: u64,
    outages: Vec<Outage>,
    partitions: Vec<(SimTime, SimTime)>,
    degrades: Vec<(SimTime, SimTime, u16, SimDuration)>,
    exhaustions: Vec<(SimTime, SimTime, u8)>,
    skews: Vec<(FaultComponent, SimTime, SimDuration)>,
    alert_drops: Vec<(SimTime, SimTime)>,
}

fn window(at: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
    (at, at.checked_add(duration).unwrap_or(SimTime::MAX))
}

impl CompiledFaults {
    /// An empty schedule (what a fault-free run carries).
    pub fn none() -> CompiledFaults {
        CompiledFaults::default()
    }

    /// Compile `plan` — events are taken in canonical `(time, kind)`
    /// order, so insertion order cannot reach any query answer.
    pub fn compile(plan: &FaultPlan) -> CompiledFaults {
        let mut c = CompiledFaults {
            label: plan.label().to_owned(),
            seed: plan.seed(),
            ..CompiledFaults::default()
        };
        for event in plan.events() {
            match event.kind {
                FaultKind::Crash { component, restart_after } => {
                    let end =
                        restart_after.and_then(|d| event.at.checked_add(d)).unwrap_or(SimTime::MAX);
                    c.outages.push(Outage { component, start: event.at, end });
                }
                FaultKind::LinkPartition { duration } => {
                    c.partitions.push(window(event.at, duration));
                }
                FaultKind::LinkDegrade { loss_per_mille, extra_latency, duration } => {
                    let (s, e) = window(event.at, duration);
                    c.degrades.push((s, e, loss_per_mille.min(1000), extra_latency));
                }
                FaultKind::CpuExhaustion { steal_percent, duration } => {
                    let (s, e) = window(event.at, duration);
                    c.exhaustions.push((s, e, steal_percent.min(100)));
                }
                FaultKind::ClockSkew { component, offset } => {
                    c.skews.push((component, event.at, offset));
                }
                FaultKind::AlertChannelDrop { duration } => {
                    c.alert_drops.push(window(event.at, duration));
                }
            }
        }
        c
    }

    /// The source plan's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.partitions.is_empty()
            && self.degrades.is_empty()
            && self.exhaustions.is_empty()
            && self.skews.is_empty()
            && self.alert_drops.is_empty()
    }

    /// All compiled outages.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Whether `component` is down at `now`.
    pub fn is_down(&self, component: FaultComponent, now: SimTime) -> bool {
        self.outages.iter().any(|o| o.component == component && o.start <= now && now < o.end)
    }

    /// When the *current* outage of `component` ends, if it is down at
    /// `now` and ever restarts.
    pub fn restart_at(&self, component: FaultComponent, now: SimTime) -> Option<SimTime> {
        self.outages
            .iter()
            .filter(|o| o.component == component && o.start <= now && now < o.end)
            .map(|o| o.end)
            .filter(|&end| end < SimTime::MAX)
            .max()
    }

    /// Whether the tap feed is fully partitioned at `now`.
    pub fn partitioned(&self, now: SimTime) -> bool {
        self.partitions.iter().any(|&(s, e)| s <= now && now < e)
    }

    /// Active link degradation at `now`:
    /// `(loss_per_mille, extra_latency)`. Overlapping windows compose as
    /// the worst of each.
    pub fn degrade(&self, now: SimTime) -> Option<(u16, SimDuration)> {
        let mut worst: Option<(u16, SimDuration)> = None;
        for &(s, e, loss, extra) in &self.degrades {
            if s <= now && now < e {
                let (l0, x0) = worst.unwrap_or((0, SimDuration::ZERO));
                worst = Some((l0.max(loss), x0.max(extra)));
            }
        }
        worst
    }

    /// Whether the degraded tap loses record `rec` arriving at `now`.
    ///
    /// The coin flip comes from a stream derived per record index, so the
    /// answer depends only on `(plan label, rec)` — never on how many
    /// other records were examined first.
    pub fn degrade_drops(&self, now: SimTime, rec: u32) -> bool {
        let Some((loss_per_mille, _)) = self.degrade(now) else {
            return false;
        };
        if loss_per_mille == 0 {
            return false;
        }
        let mut rng = RngStream::derive(derive_seed(self.seed, "link-loss"), &format!("rec/{rec}"));
        rng.chance(f64::from(loss_per_mille) / 1000.0)
    }

    /// Percent of monitored-host CPU stolen by co-resident load at `now`
    /// (the worst active window; 0 when none).
    pub fn cpu_steal_percent(&self, now: SimTime) -> u8 {
        self.exhaustions
            .iter()
            .filter(|&&(s, e, _)| s <= now && now < e)
            .map(|&(_, _, p)| p)
            .max()
            .unwrap_or(0)
    }

    /// Accumulated clock skew of `component` at `now` (skews are
    /// permanent once effective and compose additively).
    pub fn skew(&self, component: FaultComponent, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(c, at, offset) in &self.skews {
            if c == component && at <= now {
                total += offset;
            }
        }
        total
    }

    /// Whether the alert channel drops everything at `now`.
    pub fn alert_channel_down(&self, now: SimTime) -> bool {
        self.alert_drops.iter().any(|&(s, e)| s <= now && now < e)
    }

    /// `(crashes started, crashes recovered)` within `[0, end]` — the
    /// recovery-completeness numerator and denominator.
    pub fn crash_recovery_counts(&self, end: SimTime) -> (u32, u32) {
        let mut crashes = 0u32;
        let mut recoveries = 0u32;
        for o in &self.outages {
            if o.start <= end {
                crashes += 1;
                if o.end <= end {
                    recoveries += 1;
                }
            }
        }
        (crashes, recoveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn outage_windows_are_half_open() {
        let plan = FaultPlan::new("w").with(
            t(5),
            FaultKind::Crash { component: FaultComponent::Analyzer(0), restart_after: Some(d(3)) },
        );
        let c = plan.compile();
        let a0 = FaultComponent::Analyzer(0);
        assert!(!c.is_down(a0, t(4)));
        assert!(c.is_down(a0, t(5)));
        assert!(c.is_down(a0, SimTime::from_millis(7_999)));
        assert!(!c.is_down(a0, t(8)), "restart boundary is exclusive");
        assert!(!c.is_down(FaultComponent::Analyzer(1), t(6)));
        assert_eq!(c.restart_at(a0, t(6)), Some(t(8)));
        assert_eq!(c.restart_at(a0, t(9)), None);
        assert_eq!(c.crash_recovery_counts(t(10)), (1, 1));
        assert_eq!(c.crash_recovery_counts(t(6)), (1, 0));
    }

    #[test]
    fn hang_never_restarts() {
        let c = FaultPlan::new("h")
            .with(
                t(1),
                FaultKind::Crash { component: FaultComponent::Monitor, restart_after: None },
            )
            .compile();
        assert!(c.is_down(FaultComponent::Monitor, SimTime::from_secs(1_000_000)));
        assert_eq!(c.restart_at(FaultComponent::Monitor, t(2)), None);
        assert_eq!(c.crash_recovery_counts(t(100)), (1, 0));
    }

    #[test]
    fn degrade_composes_worst_of_overlaps() {
        let c = FaultPlan::new("d")
            .with(
                t(1),
                FaultKind::LinkDegrade {
                    loss_per_mille: 100,
                    extra_latency: SimDuration::from_millis(10),
                    duration: d(10),
                },
            )
            .with(
                t(5),
                FaultKind::LinkDegrade {
                    loss_per_mille: 50,
                    extra_latency: SimDuration::from_millis(40),
                    duration: d(2),
                },
            )
            .compile();
        assert_eq!(c.degrade(t(0)), None);
        assert_eq!(c.degrade(t(2)), Some((100, SimDuration::from_millis(10))));
        assert_eq!(c.degrade(t(6)), Some((100, SimDuration::from_millis(40))));
    }

    #[test]
    fn loss_draws_are_per_record_and_label_stable() {
        let mk = |label: &str| {
            FaultPlan::new(label)
                .with(
                    t(0),
                    FaultKind::LinkDegrade {
                        loss_per_mille: 500,
                        extra_latency: SimDuration::ZERO,
                        duration: d(100),
                    },
                )
                .compile()
        };
        let a = mk("loss");
        let b = mk("loss");
        let drops: Vec<bool> = (0..256).map(|r| a.degrade_drops(t(1), r)).collect();
        // Pure function of (label, rec): identical on replay, regardless
        // of query order.
        let again: Vec<bool> = (0..256).rev().map(|r| b.degrade_drops(t(1), r)).collect();
        assert_eq!(drops, again.into_iter().rev().collect::<Vec<_>>());
        let dropped = drops.iter().filter(|&&x| x).count();
        assert!((64..192).contains(&dropped), "~half of 256 should drop, got {dropped}");
        let other = mk("different-label");
        assert_ne!(
            drops,
            (0..256).map(|r| other.degrade_drops(t(1), r)).collect::<Vec<bool>>(),
            "a different plan label must reshuffle the draws"
        );
    }

    #[test]
    fn cpu_steal_takes_the_worst_window() {
        let c = FaultPlan::new("cpu")
            .with(t(1), FaultKind::CpuExhaustion { steal_percent: 30, duration: d(10) })
            .with(t(3), FaultKind::CpuExhaustion { steal_percent: 70, duration: d(2) })
            .compile();
        assert_eq!(c.cpu_steal_percent(t(0)), 0);
        assert_eq!(c.cpu_steal_percent(t(2)), 30);
        assert_eq!(c.cpu_steal_percent(t(4)), 70);
        assert_eq!(c.cpu_steal_percent(t(6)), 30);
    }

    #[test]
    fn skew_accumulates_once_effective() {
        let m = FaultComponent::Monitor;
        let c = FaultPlan::new("skew")
            .with(
                t(2),
                FaultKind::ClockSkew { component: m, offset: SimDuration::from_millis(100) },
            )
            .with(t(5), FaultKind::ClockSkew { component: m, offset: SimDuration::from_millis(50) })
            .compile();
        assert_eq!(c.skew(m, t(1)), SimDuration::ZERO);
        assert_eq!(c.skew(m, t(3)), SimDuration::from_millis(100));
        assert_eq!(c.skew(m, t(6)), SimDuration::from_millis(150));
        assert_eq!(c.skew(FaultComponent::Manager, t(6)), SimDuration::ZERO);
    }

    #[test]
    fn partition_and_alert_drop_windows() {
        let c = FaultPlan::new("p")
            .with(t(2), FaultKind::LinkPartition { duration: d(3) })
            .with(t(8), FaultKind::AlertChannelDrop { duration: d(1) })
            .compile();
        assert!(!c.partitioned(t(1)));
        assert!(c.partitioned(t(3)));
        assert!(!c.partitioned(t(5)));
        assert!(c.alert_channel_down(SimTime::from_millis(8_500)));
        assert!(!c.alert_channel_down(t(9)));
        assert!(!c.is_empty());
        assert!(CompiledFaults::none().is_empty());
    }
}
