//! Property-based tests for the simulation kernel's invariants.

use idse_sim::stats::{LogHistogram, Summary};
use idse_sim::{EventQueue, RngStream, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Time arithmetic: (t + a) + b == (t + b) + a for in-range values.
    #[test]
    fn time_addition_commutes(t in 0u64..1u64 << 40, a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let base = SimTime::from_nanos(t);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((base + da) + db, (base + db) + da);
    }

    /// Subtraction inverts addition within range.
    #[test]
    fn time_sub_inverts_add(t in 0u64..1u64 << 40, d in 0u64..1u64 << 30) {
        let base = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur).saturating_since(base), dur);
    }

    /// Seconds round trip within one nanosecond of quantization error.
    #[test]
    fn seconds_round_trip(ns in 0u64..1u64 << 50) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_nanos().abs_diff(d.as_nanos());
        // f64 has 52 mantissa bits; below 2^50 ns we stay within ~256 ns.
        prop_assert!(diff <= 256, "{ns} -> {diff}");
    }

    /// The event queue is a stable priority queue: pops are sorted by time
    /// and, within a time, by insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt);
                if ev.at == lt {
                    prop_assert!(ev.event > li, "same-time events must pop in insertion order");
                }
            }
            last = Some((ev.at, ev.event));
        }
    }

    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        xs.iter().for_each(|&x| s.record(x));
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Merging arbitrary splits of a sample equals the whole.
    #[test]
    fn summary_merge_is_split_invariant(
        xs in prop::collection::vec(-1e5f64..1e5, 2..150),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..cut].iter().for_each(|&x| a.record(x));
        xs[cut..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
    }

    /// Histogram quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(1e-6f64..1e3, 1..200)) {
        let mut h = LogHistogram::new(1e-6, 2.0, 40);
        xs.iter().for_each(|&x| h.record(x));
        let mut prev = 0.0;
        for k in 0..=10 {
            let q = h.quantile(k as f64 / 10.0).unwrap();
            prop_assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
    }

    /// Derived RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = RngStream::derive(seed, &label);
        let mut b = RngStream::derive(seed, &label);
        for _ in 0..16 {
            prop_assert_eq!(a.uniform_u64(0, u64::MAX - 1), b.uniform_u64(0, u64::MAX - 1));
        }
    }

    /// Weighted pick never selects a zero-weight entry.
    #[test]
    fn pick_weighted_avoids_zero_weights(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let mut rng = RngStream::derive(seed, "pw");
        for _ in 0..32 {
            let idx = rng.pick_weighted(&weights);
            prop_assert!(weights[idx] > 0.0);
        }
    }
}
