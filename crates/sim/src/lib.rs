//! # idse-sim — deterministic discrete-event simulation kernel
//!
//! The testbed substrate for the `idse` IDS-evaluation framework. The paper
//! (Fink et al., WPDRTS 2002) measured its performance metrics — system
//! throughput, maximal throughput with zero loss, network lethal dose,
//! induced traffic latency, timeliness, operational performance impact — on a
//! physical laboratory network. This crate provides the synthetic equivalent:
//! a deterministic discrete-event simulator with
//!
//! * a nanosecond-resolution virtual clock ([`SimTime`], [`SimDuration`]),
//! * a stable-ordered event queue ([`EventQueue`]) and run loop
//!   ([`Simulation`]),
//! * link models with finite bandwidth, propagation delay and bounded queues
//!   ([`link::Link`]),
//! * a host CPU resource model with utilization accounting
//!   ([`host::HostCpu`]),
//! * reproducible, independently-seeded random streams ([`rng::RngStream`]),
//! * online statistics ([`stats`]).
//!
//! Determinism is load-bearing: the paper's methodology demands *scientific
//! repeatability* ("Using a standard as the basis for comparison gives us
//! scientific repeatability"), so every experiment in `idse-eval` must be a
//! pure function of its configuration and seed. The kernel therefore breaks
//! simultaneous-event ties by insertion sequence number, never by allocation
//! or hash order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod host;
pub mod link;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, Scheduled};
pub use host::{AuditLevel, HostCpu};
pub use link::{Link, LinkConfig};
pub use rng::{derive_seed, RngStream};
pub use time::{SimDuration, SimTime};

/// A world that a [`Simulation`] can advance: it receives each event in
/// timestamp order together with a scheduler handle for enqueueing follow-up
/// events.
pub trait World {
    /// The application-defined event payload.
    type Event;

    /// Handle one event at virtual time `now`. New events may be scheduled
    /// through `queue`; they must not be scheduled in the past.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// The simulation driver: owns the event queue and repeatedly dispatches the
/// earliest event to the [`World`].
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    dispatched: u64,
    telemetry: idse_telemetry::Telemetry,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Create an empty simulation starting at time zero.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
            telemetry: idse_telemetry::Telemetry::disabled(),
        }
    }

    /// How often (in dispatched events) the kernel samples its own
    /// event-queue depth when telemetry is attached.
    pub const QUEUE_DEPTH_SAMPLE_EVERY: u64 = 1024;

    /// Attach a telemetry handle. The kernel samples the pending
    /// event-queue depth (gauge `sim.queue_depth`) every
    /// [`Self::QUEUE_DEPTH_SAMPLE_EVERY`] dispatched events. Recording is
    /// observation-only: it never changes event order or timing.
    pub fn set_telemetry(&mut self, telemetry: idse_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Current virtual time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Access the event queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Run until the queue is exhausted or virtual time would exceed `until`.
    ///
    /// Events with timestamp exactly `until` are still dispatched; the first
    /// event strictly beyond it is left in the queue. Returns the number of
    /// events dispatched by this call.
    pub fn run_until<W>(&mut self, world: &mut W, until: SimTime) -> u64
    where
        W: World<Event = E>,
    {
        self.drain(world, until, true)
    }

    /// Run until the queue is exhausted or the next event's timestamp is at
    /// or beyond `before` — the strict counterpart of [`Self::run_until`].
    ///
    /// Chunked drivers need this: before scheduling the next chunk of input
    /// events starting at time `t`, they drain everything strictly earlier
    /// than `t` and leave events *at* `t` queued, so that the new inputs
    /// (which outrank same-time derived events, see
    /// [`EventQueue::schedule_input`]) still dispatch in the order a fully
    /// pre-scheduled run would have used. Returns the number of events
    /// dispatched by this call.
    pub fn run_before<W>(&mut self, world: &mut W, before: SimTime) -> u64
    where
        W: World<Event = E>,
    {
        self.drain(world, before, false)
    }

    fn drain<W>(&mut self, world: &mut W, limit: SimTime, inclusive: bool) -> u64
    where
        W: World<Event = E>,
    {
        let mut count = 0;
        // Per-event dispatch: everything here runs once per simulated
        // event, millions of times per run (`bench.sim_events_s` prices
        // it). The header names no per-record input, so mark it for the
        // lint's performance phase explicitly.
        // idse-lint: hot
        while let Some(&Scheduled { at, .. }) = self.queue.peek() {
            if at > limit || (!inclusive && at == limit) {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            debug_assert!(ev.at >= self.now, "event queue yielded an event in the past");
            self.now = ev.at;
            world.handle(self.now, ev.event, &mut self.queue);
            self.dispatched += 1;
            count += 1;
            if self.telemetry.enabled() && self.dispatched % Self::QUEUE_DEPTH_SAMPLE_EVERY == 0 {
                self.telemetry.gauge(
                    self.now.as_nanos(),
                    "sim.queue_depth",
                    self.queue.len() as f64,
                );
            }
        }
        count
    }

    /// Run until the queue is exhausted. Returns the number of events
    /// dispatched by this call.
    pub fn run_to_completion<W>(&mut self, world: &mut W) -> u64
    where
        W: World<Event = E>,
    {
        self.run_until(world, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        fired: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    impl World for Counter {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.fired.push((now, event));
            if self.respawn && event < 3 {
                queue.schedule(now + SimDuration::from_micros(10), event + 1);
            }
        }
    }

    #[test]
    fn dispatches_in_time_order() {
        let mut sim = Simulation::new();
        sim.queue_mut().schedule(SimTime::from_micros(30), 3);
        sim.queue_mut().schedule(SimTime::from_micros(10), 1);
        sim.queue_mut().schedule(SimTime::from_micros(20), 2);
        let mut w = Counter { fired: vec![], respawn: false };
        let n = sim.run_to_completion(&mut w);
        assert_eq!(n, 3);
        assert_eq!(
            w.fired,
            vec![
                (SimTime::from_micros(10), 1),
                (SimTime::from_micros(20), 2),
                (SimTime::from_micros(30), 3),
            ]
        );
    }

    #[test]
    fn respawned_events_run() {
        let mut sim = Simulation::new();
        sim.queue_mut().schedule(SimTime::ZERO, 0);
        let mut w = Counter { fired: vec![], respawn: true };
        sim.run_to_completion(&mut w);
        assert_eq!(w.fired.len(), 4);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Simulation::new();
        sim.queue_mut().schedule(SimTime::from_micros(10), 1);
        sim.queue_mut().schedule(SimTime::from_micros(20), 2);
        let mut w = Counter { fired: vec![], respawn: false };
        let n = sim.run_until(&mut w, SimTime::from_micros(15));
        assert_eq!(n, 1);
        assert_eq!(sim.queue_mut().len(), 1);
    }

    #[test]
    fn run_before_stops_short_of_the_boundary() {
        let mut sim = Simulation::new();
        sim.queue_mut().schedule(SimTime::from_micros(10), 1);
        sim.queue_mut().schedule(SimTime::from_micros(20), 2);
        sim.queue_mut().schedule(SimTime::from_micros(20), 3);
        let mut w = Counter { fired: vec![], respawn: false };
        // Strict: the events at exactly 20 µs stay queued.
        assert_eq!(sim.run_before(&mut w, SimTime::from_micros(20)), 1);
        assert_eq!(sim.queue_mut().len(), 2);
        // Inclusive run picks them up in insertion order.
        assert_eq!(sim.run_until(&mut w, SimTime::from_micros(20)), 2);
        let order: Vec<u32> = w.fired.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn telemetry_samples_queue_depth_without_changing_dispatch() {
        let sample_every = Simulation::<u32>::QUEUE_DEPTH_SAMPLE_EVERY;
        let sink = idse_telemetry::MemorySink::new(64);
        let mut sim = Simulation::new();
        sim.set_telemetry(idse_telemetry::Telemetry::new(sink.clone()));
        let mut plain = Simulation::new();
        for i in 0..2 * sample_every {
            sim.queue_mut().schedule(SimTime::from_micros(i), 1);
            plain.queue_mut().schedule(SimTime::from_micros(i), 1);
        }
        let mut w = Counter { fired: vec![], respawn: false };
        sim.run_to_completion(&mut w);
        let mut w2 = Counter { fired: vec![], respawn: false };
        plain.run_to_completion(&mut w2);
        assert_eq!(w.fired, w2.fired, "observation must not change dispatch");
        let events = sink.events();
        assert_eq!(events.len(), 2, "one sample per {sample_every} dispatches");
        assert!(events.iter().all(|e| e.name == "sim.queue_depth"));
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Simulation::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            sim.queue_mut().schedule(t, i);
        }
        let mut w = Counter { fired: vec![], respawn: false };
        sim.run_to_completion(&mut w);
        let order: Vec<u32> = w.fired.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
