//! Bounded FIFO queues with drop accounting.
//!
//! Finite buffers are where the paper's *Maximal Throughput with Zero Loss*
//! and *Network Lethal Dose* metrics come from: once a stage's queue is full,
//! offered load is shed and the loss is observable. Every queue in the
//! testbed (link buffers, sensor input rings, analyzer backlogs) is an
//! instance of [`BoundedFifo`] so drops are counted uniformly.

use crate::stats::StageCounters;
use std::collections::VecDeque;

/// What happened when an item was offered to a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The item was enqueued.
    Accepted,
    /// The queue was full; the item was dropped (tail drop).
    Dropped,
}

/// A bounded FIFO with tail-drop semantics and offered/processed/dropped
/// accounting.
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    counters: StageCounters,
    peak_depth: usize,
}

impl<T> BoundedFifo<T> {
    /// Create a queue holding at most `capacity` items. Panics if
    /// `capacity == 0` — a zero-capacity stage would silently drop all load,
    /// which is always a configuration error in this testbed.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            counters: StageCounters::default(),
            peak_depth: 0,
        }
    }

    /// Offer an item; on overflow the item is dropped and counted.
    pub fn offer(&mut self, item: T) -> OfferOutcome {
        self.counters.offered += 1;
        if self.items.len() >= self.capacity {
            self.counters.dropped += 1;
            OfferOutcome::Dropped
        } else {
            self.items.push_back(item);
            self.peak_depth = self.peak_depth.max(self.items.len());
            OfferOutcome::Accepted
        }
    }

    /// Dequeue the oldest item and count it as processed.
    pub fn take(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.counters.processed += 1;
        }
        item
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Offered/processed/dropped counters.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Discard all queued items, counting them as dropped. Models a
    /// component failure that loses its backlog (the paper's *Error
    /// Reporting and Recovery* failure modes).
    pub fn fail_and_flush(&mut self) -> usize {
        let lost = self.items.len();
        self.counters.dropped += lost as u64;
        self.items.clear();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(8);
        for i in 0..5 {
            assert_eq!(q.offer(i), OfferOutcome::Accepted);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.take()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.counters().processed, 5);
    }

    #[test]
    fn tail_drop_on_overflow() {
        let mut q = BoundedFifo::new(2);
        assert_eq!(q.offer('a'), OfferOutcome::Accepted);
        assert_eq!(q.offer('b'), OfferOutcome::Accepted);
        assert_eq!(q.offer('c'), OfferOutcome::Dropped);
        assert!(q.is_full());
        let c = q.counters();
        assert_eq!((c.offered, c.dropped), (3, 1));
        // The surviving items are the oldest ones (tail drop).
        assert_eq!(q.take(), Some('a'));
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut q = BoundedFifo::new(10);
        for i in 0..7 {
            q.offer(i);
        }
        for _ in 0..7 {
            q.take();
        }
        q.offer(99);
        assert_eq!(q.peak_depth(), 7);
    }

    #[test]
    fn fail_and_flush_counts_losses() {
        let mut q = BoundedFifo::new(10);
        for i in 0..4 {
            q.offer(i);
        }
        assert_eq!(q.fail_and_flush(), 4);
        assert!(q.is_empty());
        assert_eq!(q.counters().dropped, 4);
        assert!((q.counters().drop_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedFifo::<u8>::new(0);
    }
}
