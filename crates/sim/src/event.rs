//! The event queue: a binary heap with deterministic tie-breaking.
//!
//! Two events scheduled for the same virtual instant are dispatched in the
//! order they were scheduled. `BinaryHeap` alone does not guarantee that, so
//! every entry carries a monotonically increasing sequence number that breaks
//! ties. This is what makes whole-testbed runs bit-reproducible across
//! processes and platforms.
//!
//! Entries additionally carry a *dispatch class*: among events at the same
//! instant, lower classes dispatch first regardless of insertion order.
//! External inputs (scheduled with [`EventQueue::schedule_input`]) use class
//! 0; everything else class 1. A driver that feeds inputs incrementally —
//! chunk by chunk rather than all upfront — therefore dispatches in exactly
//! the order a fully pre-scheduled run would: in an upfront schedule every
//! input already outranks every derived event at the same instant by
//! sequence number, so the class bit changes nothing for monolithic runs
//! while making chunked runs order-identical to them.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dispatch class of external-input events ([`EventQueue::schedule_input`]).
pub const CLASS_INPUT: u8 = 0;
/// Dispatch class of ordinary events ([`EventQueue::schedule`]).
pub const CLASS_DERIVED: u8 = 1;

/// An event payload together with its dispatch time.
#[derive(Debug)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Dispatch class; among same-time events, lower classes fire first.
    pub class: u8,
    /// Insertion sequence number; unique per queue, used to break ties.
    pub seq: u64,
    /// The application event.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.class == other.class && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of future events ordered by `(time, insertion seq)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.push(at, CLASS_DERIVED, event);
    }

    /// Schedule an external-input event at `at`. Among events at the same
    /// instant, inputs dispatch before everything scheduled with
    /// [`EventQueue::schedule`], mirroring a run where all inputs were
    /// enqueued upfront (and therefore held the lowest sequence numbers).
    pub fn schedule_input(&mut self, at: SimTime, event: E) {
        self.push(at, CLASS_INPUT, event);
    }

    fn push(&mut self, at: SimTime, class: u8, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, class, seq, event });
    }

    /// The earliest pending event, if any.
    pub fn peek(&self) -> Option<&Scheduled<E>> {
        self.heap.peek()
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn inputs_outrank_derived_events_at_the_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "derived-a");
        q.schedule_input(t, "input-late");
        q.schedule(t, "derived-b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        // The input fires first despite being scheduled second; the derived
        // events keep their insertion order among themselves.
        assert_eq!(order, vec!["input-late", "derived-a", "derived-b"]);
    }

    #[test]
    fn input_ties_break_by_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule_input(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 10);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        q.schedule(SimTime::from_secs(2) + SimDuration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 10);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }
}
