//! Link model: finite bandwidth, propagation delay, bounded buffer.
//!
//! A link is a single-server FIFO: frames serialize one at a time at the
//! configured bandwidth, then propagate. The *Induced Traffic Latency*
//! metric (Table 3) is measured by comparing traversal times with and
//! without an in-line IDS component on the path; the *Network Lethal Dose*
//! experiments push links and stages past saturation, so the buffer bound
//! and drop accounting here must be exact.

use crate::rng::RngStream;
use crate::stats::StageCounters;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Maximum bytes the transmit buffer may hold (beyond the frame in
    /// service).
    pub buffer_bytes: usize,
}

impl LinkConfig {
    /// A 100 Mb/s switched-LAN link: 5 µs propagation, 256 KiB buffer —
    /// typical of the 2002-era testbeds the paper describes.
    pub fn fast_ethernet() -> Self {
        Self {
            bandwidth_bps: 100e6,
            propagation: SimDuration::from_micros(5),
            buffer_bytes: 256 * 1024,
        }
    }

    /// A 1 Gb/s cluster interconnect link with a small, latency-oriented
    /// buffer, as used in the distributed real-time cluster profile.
    pub fn gigabit_cluster() -> Self {
        Self {
            bandwidth_bps: 1e9,
            propagation: SimDuration::from_micros(1),
            buffer_bytes: 128 * 1024,
        }
    }

    /// A T3/DS3 (45 Mb/s) border uplink with WAN propagation delay.
    pub fn border_t3() -> Self {
        Self {
            bandwidth_bps: 45e6,
            propagation: SimDuration::from_millis(2),
            buffer_bytes: 512 * 1024,
        }
    }

    /// Time to clock `bytes` onto the wire at this bandwidth.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

/// Outcome of offering a frame to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// The frame was accepted; it arrives at the far end at this time.
    Delivered {
        /// Arrival instant at the far end.
        arrives_at: SimTime,
    },
    /// The transmit buffer was full; the frame was dropped.
    Dropped,
}

/// A unidirectional link with FIFO serialization and tail-drop buffering.
///
/// The model keeps only aggregate state (when the transmitter frees up and
/// how many bytes are queued), so offering a frame is O(1). Buffered bytes
/// are released lazily on each call based on elapsed virtual time.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// Virtual time at which the transmitter finishes everything accepted
    /// so far.
    busy_until: SimTime,
    /// Bytes accepted but not yet fully serialized as of `busy_until`
    /// bookkeeping below.
    counters: StageCounters,
    bytes_sent: u64,
    bytes_dropped: u64,
    /// Injected partition window `[start, end)` (`idse-faults` hook).
    partition: Option<(SimTime, SimTime)>,
    /// Injected degradation: loss probability (per mille), added latency,
    /// and the seeded stream the loss coin flips draw from.
    degrade: Option<(u16, SimDuration, RngStream)>,
    faulted_drops: u64,
}

impl Link {
    /// Create an idle link.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.bandwidth_bps > 0.0, "bandwidth must be positive");
        Self {
            config,
            busy_until: SimTime::ZERO,
            counters: StageCounters::default(),
            bytes_sent: 0,
            bytes_dropped: 0,
            partition: None,
            degrade: None,
            faulted_drops: 0,
        }
    }

    /// Fault-injection hook: fully partition the link for `[start, end)`.
    /// Frames offered inside the window are dropped and counted in
    /// [`Link::faulted_drops`].
    pub fn inject_partition(&mut self, start: SimTime, end: SimTime) {
        self.partition = Some((start, end));
    }

    /// Fault-injection hook: until [`Link::clear_faults`], each offered
    /// frame is independently lost with probability `loss_per_mille`/1000
    /// (coin flips drawn from a stream derived from `seed` — replays are
    /// byte-identical) and survivors arrive `extra_latency` late.
    pub fn inject_degrade(&mut self, loss_per_mille: u16, extra_latency: SimDuration, seed: u64) {
        self.degrade = Some((
            loss_per_mille.min(1000),
            extra_latency,
            RngStream::derive(seed, "link-degrade"),
        ));
    }

    /// Remove every injected fault.
    pub fn clear_faults(&mut self) {
        self.partition = None;
        self.degrade = None;
    }

    /// Frames lost to injected faults (partition windows and loss
    /// degradation) — a subset of `counters().dropped`.
    pub fn faulted_drops(&self) -> u64 {
        self.faulted_drops
    }

    /// Configured parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Offer a frame of `bytes` at time `now`. Returns when the frame is
    /// delivered at the far end, or that it was dropped because the backlog
    /// exceeded the buffer bound.
    pub fn offer(&mut self, now: SimTime, bytes: usize) -> LinkVerdict {
        self.counters.offered += 1;
        if let Some((start, end)) = self.partition {
            if start <= now && now < end {
                self.counters.dropped += 1;
                self.bytes_dropped += bytes as u64;
                self.faulted_drops += 1;
                return LinkVerdict::Dropped;
            }
        }
        let mut fault_latency = SimDuration::ZERO;
        if let Some((loss_per_mille, extra, rng)) = self.degrade.as_mut() {
            // Offers are strictly sequential within a run, so advancing
            // the stream per frame is scheduling-independent.
            if rng.chance(f64::from(*loss_per_mille) / 1000.0) {
                self.counters.dropped += 1;
                self.bytes_dropped += bytes as u64;
                self.faulted_drops += 1;
                return LinkVerdict::Dropped;
            }
            fault_latency = *extra;
        }
        // Backlog currently awaiting/under transmission, in time units.
        let backlog = self.busy_until.saturating_since(now);
        let backlog_bytes = backlog.as_secs_f64() * self.config.bandwidth_bps / 8.0;
        if backlog_bytes > self.config.buffer_bytes as f64 {
            self.counters.dropped += 1;
            self.bytes_dropped += bytes as u64;
            return LinkVerdict::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + self.config.serialization_delay(bytes);
        self.busy_until = done;
        self.counters.processed += 1;
        self.bytes_sent += bytes as u64;
        LinkVerdict::Delivered { arrives_at: done + self.config.propagation + fault_latency }
    }

    /// When the transmitter becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Frame-level counters.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Total payload bytes delivered.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total payload bytes dropped.
    pub fn bytes_dropped(&self) -> u64 {
        self.bytes_dropped
    }

    /// Utilization over `[SimTime::ZERO, now]`: fraction of time the
    /// transmitter was busy, approximated from bytes sent.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (self.bytes_sent as f64 * 8.0 / self.config.bandwidth_bps / span).min(1.0)
    }

    /// Sample the link's cumulative occupancy over `[0, now]` into
    /// `telemetry` as gauge `link.occupancy`. Observation-only.
    pub fn sample_telemetry(&self, telemetry: &idse_telemetry::Telemetry, now: SimTime) {
        telemetry.gauge(now.as_nanos(), "link.occupancy", self.utilization(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_1mbps() -> Link {
        Link::new(LinkConfig {
            bandwidth_bps: 1e6,
            propagation: SimDuration::from_millis(1),
            buffer_bytes: 1000,
        })
    }

    #[test]
    fn idle_link_delivers_after_serialization_plus_propagation() {
        let mut l = link_1mbps();
        // 125 bytes = 1000 bits = 1 ms at 1 Mb/s, +1 ms propagation.
        match l.offer(SimTime::ZERO, 125) {
            LinkVerdict::Delivered { arrives_at } => {
                assert_eq!(arrives_at, SimTime::from_millis(2));
            }
            LinkVerdict::Dropped => panic!("idle link must accept"),
        }
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let mut l = link_1mbps();
        let first = l.offer(SimTime::ZERO, 125);
        let second = l.offer(SimTime::ZERO, 125);
        let (a, b) = match (first, second) {
            (
                LinkVerdict::Delivered { arrives_at: a },
                LinkVerdict::Delivered { arrives_at: b },
            ) => (a, b),
            _ => panic!("both frames fit the buffer"),
        };
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut l = link_1mbps();
        // Each 500-byte frame takes 4 ms to serialize; buffer holds 1000
        // bytes of backlog. Keep offering at t=0 until drops start.
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.offer(SimTime::ZERO, 500) {
                LinkVerdict::Delivered { .. } => delivered += 1,
                LinkVerdict::Dropped => dropped += 1,
            }
        }
        assert!(delivered >= 2, "at least the in-service + buffered frames go through");
        assert!(dropped > 0, "sustained overload must shed load");
        assert_eq!(l.counters().offered, 10);
        assert_eq!(l.counters().processed, delivered);
        assert_eq!(l.counters().dropped, dropped);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut l = link_1mbps();
        for _ in 0..3 {
            l.offer(SimTime::ZERO, 500); // 12 ms of backlog total
        }
        // After the backlog drains, a new frame is accepted again.
        match l.offer(SimTime::from_millis(20), 500) {
            LinkVerdict::Delivered { arrives_at } => {
                // Transmitter idle by t=12ms; starts at 20ms, 4ms serialize + 1ms prop.
                assert_eq!(arrives_at, SimTime::from_millis(25));
            }
            LinkVerdict::Dropped => panic!("drained link must accept"),
        }
    }

    #[test]
    fn utilization_reflects_bytes_sent() {
        let mut l = link_1mbps();
        l.offer(SimTime::ZERO, 125); // 1 ms busy
        let u = l.utilization(SimTime::from_millis(10));
        assert!((u - 0.1).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let mut l = link_1mbps();
        l.inject_partition(SimTime::from_millis(10), SimTime::from_millis(20));
        assert!(matches!(l.offer(SimTime::from_millis(5), 125), LinkVerdict::Delivered { .. }));
        assert!(matches!(l.offer(SimTime::from_millis(15), 125), LinkVerdict::Dropped));
        assert!(matches!(l.offer(SimTime::from_millis(25), 125), LinkVerdict::Delivered { .. }));
        assert_eq!(l.faulted_drops(), 1);
        l.inject_partition(SimTime::from_millis(30), SimTime::from_millis(40));
        l.clear_faults();
        assert!(matches!(l.offer(SimTime::from_millis(35), 125), LinkVerdict::Delivered { .. }));
    }

    #[test]
    fn degrade_loses_frames_reproducibly_and_delays_survivors() {
        let run = |seed: u64| {
            let mut l = link_1mbps();
            l.inject_degrade(300, SimDuration::from_millis(7), seed);
            (0..200u64)
                .map(|i| match l.offer(SimTime::from_millis(i * 50), 125) {
                    LinkVerdict::Delivered { arrives_at } => arrives_at.as_nanos(),
                    LinkVerdict::Dropped => 0,
                })
                .collect::<Vec<u64>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay byte-identically");
        assert_ne!(a, run(43), "a different seed must reshuffle the losses");
        let lost = a.iter().filter(|&&x| x == 0).count();
        assert!((30..90).contains(&lost), "~30% of 200 should drop, got {lost}");
        // A surviving frame pays serialization + propagation + injected
        // extra latency.
        let first = a.iter().find(|&&x| x != 0).copied().expect("some frames survive");
        assert!(first >= SimDuration::from_millis(7).as_nanos());
    }

    #[test]
    fn presets_are_sane() {
        assert!(
            LinkConfig::gigabit_cluster().bandwidth_bps > LinkConfig::fast_ethernet().bandwidth_bps
        );
        let d = LinkConfig::fast_ethernet().serialization_delay(1500);
        assert_eq!(d, SimDuration::from_micros(120));
    }
}
