//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The paper's performance metrics are all time-denominated — *Timeliness* is
//! "average/maximal time between an intrusion's occurrence and its being
//! reported", *Induced Traffic Latency* is the delay the IDS adds to traffic.
//! Millisecond precision is not enough to resolve per-packet serialization
//! delays on a gigabit link (a 1500-byte frame serializes in ~12 µs), so the
//! clock is kept in nanoseconds in a `u64`, giving ~584 years of range.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, saturating at the representable
    /// range and flooring negative values to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, saturating at the representable
    /// range and flooring negative values to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, saturating.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_f64_to_nanos(self.as_secs_f64() * k))
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    // Catches negatives, zero and NaN.
    if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let ns = (s * 1e9).round();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants; panics in debug builds if `rhs`
    /// is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}µs", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }
}
