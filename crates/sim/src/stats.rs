//! Online statistics for experiment measurement.
//!
//! Every performance metric in the paper's Table 3 is a summary statistic of
//! a stream of observations (latencies, report delays, rates, utilizations).
//! These accumulators are single-pass, O(1)-memory (except the histogram and
//! quantile reservoir) and numerically stable (Welford's method).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Welford mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation. NaN observations are ignored — a single
    /// NaN would otherwise poison every downstream moment (and with it a
    /// whole scorecard).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }
    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary of durations, stored in seconds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DurationSummary(Summary);

impl DurationSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self(Summary::new())
    }
    /// Record a duration.
    pub fn record(&mut self, d: SimDuration) {
        self.0.record(d.as_secs_f64());
    }
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count()
    }
    /// Mean duration.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.0.mean())
    }
    /// Maximum duration, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.0.max().unwrap_or(0.0))
    }
    /// Minimum duration, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.0.min().unwrap_or(0.0))
    }
    /// Underlying scalar summary (seconds).
    pub fn as_summary(&self) -> &Summary {
        &self.0
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. CPU
/// utilization or queue depth over virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        Self { last_change: start, current: value, weighted_sum: 0.0, start, peak: value }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "time-weighted updates must be monotonic");
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.current * dt;
        self.last_change = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Peak value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let settled =
            self.weighted_sum + self.current * now.saturating_since(self.last_change).as_secs_f64();
        let span = now.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            self.current
        } else {
            settled / span
        }
    }
}

/// Fixed-bucket histogram with logarithmic bucket edges, for latency
/// distributions spanning several orders of magnitude.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Lower edge of the first bucket.
    lo: f64,
    /// Multiplicative bucket width.
    ratio: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Buckets cover `[lo, lo * ratio^n)` with `n` buckets. Panics unless
    /// `lo > 0`, `ratio > 1` and `n > 0`.
    pub fn new(lo: f64, ratio: f64, n: usize) -> Self {
        assert!(lo > 0.0 && ratio > 1.0 && n > 0, "invalid histogram shape");
        Self { lo, ratio, buckets: vec![0; n], underflow: 0, overflow: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        // NaN and below-range both land in the underflow bucket.
        if x.partial_cmp(&self.lo).is_none_or(|o| o == std::cmp::Ordering::Less) {
            self.underflow += 1;
            return;
        }
        let idx = (x / self.lo).ln() / self.ratio.ln();
        let idx = idx as usize; // floor for x >= lo
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Approximate quantile (`q` in `[0,1]`) using bucket upper edges;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo * self.ratio.powi(i as i32 + 1));
            }
        }
        Some(f64::INFINITY)
    }

    /// Per-bucket `(lower_edge, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, &c)| (self.lo * self.ratio.powi(i as i32), c))
    }
}

/// A monotone counter bundle used by pipeline stages: offered, processed,
/// dropped.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageCounters {
    /// Items presented to the stage.
    pub offered: u64,
    /// Items the stage completed.
    pub processed: u64,
    /// Items lost (queue overflow, overload shedding, failure).
    pub dropped: u64,
}

impl StageCounters {
    /// Fraction of offered items that were dropped, 0 when nothing offered.
    pub fn drop_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Merge another counter bundle into this one.
    pub fn merge(&mut self, other: &StageCounters) {
        self.offered += other.offered;
        self.processed += other.processed;
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut left = Summary::new();
        let mut right = Summary::new();
        xs[..37].iter().for_each(|&x| left.record(x));
        xs[37..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_ignores_nan() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        // A summary fed only NaN stays empty and mean() stays finite.
        let mut n = Summary::new();
        n.record(f64::NAN);
        assert_eq!(n.count(), 0);
        assert_eq!(n.mean(), 0.0);
    }

    #[test]
    fn summary_merge_handles_empty_sides() {
        let mut a = Summary::new();
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut filled = Summary::new();
        filled.record(4.0);
        a.merge(&filled);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 4.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
    }

    #[test]
    fn time_weighted_mean() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
        u.set(SimTime::from_secs(10), 1.0); // 0.0 for 10s
        u.set(SimTime::from_secs(20), 0.5); // 1.0 for 10s
                                            // then 0.5 for 10s
        let mean = u.mean(SimTime::from_secs(30));
        assert!((mean - 0.5).abs() < 1e-12, "mean was {mean}");
        assert_eq!(u.peak(), 1.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LogHistogram::new(1e-6, 2.0, 30);
        for i in 1..=1000 {
            h.record(i as f64 * 1e-5);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        // True median is 5e-3; bucket edges quantize upward.
        assert!((5e-3..=2e-2).contains(&p50), "p50 {p50}");
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= 1e-2);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = LogHistogram::new(1.0, 10.0, 2); // [1,10), [10,100)
        h.record(0.5);
        h.record(5.0);
        h.record(5000.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
    }

    #[test]
    fn stage_counters() {
        let mut c = StageCounters { offered: 10, processed: 8, dropped: 2 };
        assert!((c.drop_ratio() - 0.2).abs() < 1e-12);
        c.merge(&StageCounters { offered: 10, processed: 10, dropped: 0 });
        assert!((c.drop_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(StageCounters::default().drop_ratio(), 0.0);
    }

    #[test]
    fn duration_summary() {
        let mut d = DurationSummary::new();
        d.record(SimDuration::from_millis(10));
        d.record(SimDuration::from_millis(30));
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean(), SimDuration::from_millis(20));
        assert_eq!(d.max(), SimDuration::from_millis(30));
        assert_eq!(d.min(), SimDuration::from_millis(10));
    }
}
