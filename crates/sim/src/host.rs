//! Host CPU resource model.
//!
//! Host-based IDS components consume the monitored host's own processing
//! power. The paper (§2.1) cites nominal event-logging at **3–5 %** of host
//! resources and DoD C2-level (Controlled Access Protection) logging at up to
//! **20 %** — "obviously a concern for real-time systems". The *Operational
//! Performance Impact* metric (Table 3) is "negative impact on the host
//! processing capacity due to the operation of the IDS, expressed as a
//! percentage of processing power". This module provides the capacity
//! accounting those experiments need.
//!
//! The model is a single-server FIFO processor: work is measured in abstract
//! *ops*, the host executes `capacity_ops` per second, and audit logging
//! inflates the cost of each audited event by a level-dependent factor.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Security-audit level configured on a monitored host.
///
/// The overhead fractions reproduce the figures the paper cites from
/// [3, 10] (Debar et al.; DoD 5200.28-STD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditLevel {
    /// No security auditing.
    Off,
    /// Nominal event logging: 3–5 % of host resources (we model 4 %).
    Nominal,
    /// DoD C2 "Controlled Access Protection" compliant logging: up to 20 %.
    C2,
}

impl AuditLevel {
    /// Fraction of host capacity consumed by audit logging alone, under a
    /// fully loaded event stream.
    pub fn overhead_fraction(self) -> f64 {
        match self {
            AuditLevel::Off => 0.0,
            AuditLevel::Nominal => 0.04,
            AuditLevel::C2 => 0.20,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Nominal => "nominal",
            AuditLevel::C2 => "C2",
        }
    }
}

/// Outcome of submitting work to a host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuVerdict {
    /// Work accepted; it completes at this virtual time.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// The run queue exceeded the configured backlog bound; work rejected.
    /// For a real-time host this is a deadline miss.
    Overloaded,
}

/// A host's CPU: fixed capacity, FIFO service, audit-level overhead, and an
/// accounting split between *production* work and *IDS* work so the
/// Operational Performance Impact metric can be read off directly.
#[derive(Debug, Clone)]
pub struct HostCpu {
    /// Work units the CPU retires per second at 100 % availability.
    capacity_ops: f64,
    /// Audit level applied to production events.
    audit: AuditLevel,
    /// Time the server frees up.
    busy_until: SimTime,
    /// Longest tolerated backlog before rejecting work.
    max_backlog: SimDuration,
    /// Fraction of capacity stolen by an injected co-resident load
    /// (`idse-faults` CPU-exhaustion hook); 0 when unfaulted.
    contention: f64,
    production_ops: f64,
    ids_ops: f64,
    audit_ops: f64,
    rejected: u64,
}

impl HostCpu {
    /// A host retiring `capacity_ops` work units per second, rejecting work
    /// once the backlog exceeds `max_backlog`.
    pub fn new(capacity_ops: f64, max_backlog: SimDuration) -> Self {
        assert!(capacity_ops > 0.0, "capacity must be positive");
        Self {
            capacity_ops,
            audit: AuditLevel::Off,
            busy_until: SimTime::ZERO,
            max_backlog,
            contention: 0.0,
            production_ops: 0.0,
            ids_ops: 0.0,
            audit_ops: 0.0,
            rejected: 0,
        }
    }

    /// Set the audit level applied to production events.
    pub fn set_audit_level(&mut self, level: AuditLevel) {
        self.audit = level;
    }

    /// Configured audit level.
    pub fn audit_level(&self) -> AuditLevel {
        self.audit
    }

    /// Fault-injection hook: a co-resident workload steals `percent` of
    /// this host's capacity (clamped to 0–95 so the host never fully
    /// stalls); subsequent work serves at the reduced rate. Pass 0 to
    /// clear.
    pub fn set_contention_percent(&mut self, percent: u8) {
        self.contention = f64::from(percent.min(95)) / 100.0;
    }

    /// Injected contention as a percent of capacity (0 when unfaulted).
    pub fn contention_percent(&self) -> u8 {
        // Inverse of `set_contention_percent`'s exact /100.0; rounding
        // guards against representation noise.
        (self.contention * 100.0).round() as u8
    }

    /// Submit production work of `ops` units at `now`. Audit overhead is
    /// added on top according to the audit level.
    pub fn execute_production(&mut self, now: SimTime, ops: f64) -> CpuVerdict {
        let audit_extra = ops * audit_cost_factor(self.audit);
        let verdict = self.serve(now, ops + audit_extra);
        if matches!(verdict, CpuVerdict::Completed { .. }) {
            self.production_ops += ops;
            self.audit_ops += audit_extra;
        }
        verdict
    }

    /// Submit IDS work (host sensor analysis, log shipping) of `ops` units.
    pub fn execute_ids(&mut self, now: SimTime, ops: f64) -> CpuVerdict {
        let verdict = self.serve(now, ops);
        if matches!(verdict, CpuVerdict::Completed { .. }) {
            self.ids_ops += ops;
        }
        verdict
    }

    fn serve(&mut self, now: SimTime, ops: f64) -> CpuVerdict {
        let backlog = self.busy_until.saturating_since(now);
        if backlog > self.max_backlog {
            self.rejected += 1;
            return CpuVerdict::Overloaded;
        }
        let start = self.busy_until.max(now);
        let effective = self.capacity_ops * (1.0 - self.contention);
        let service = SimDuration::from_secs_f64(ops / effective);
        let done = start + service;
        self.busy_until = done;
        CpuVerdict::Completed { at: done }
    }

    /// Total CPU utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        ((self.production_ops + self.ids_ops + self.audit_ops) / self.capacity_ops / span).min(1.0)
    }

    /// Fraction of total capacity consumed by IDS work plus audit overhead
    /// over `[0, now]` — the paper's Operational Performance Impact, as a
    /// fraction (multiply by 100 for the percentage the paper reports).
    pub fn ids_impact(&self, now: SimTime) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        ((self.ids_ops + self.audit_ops) / self.capacity_ops / span).min(1.0)
    }

    /// Work submissions rejected due to backlog (deadline misses).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// When the CPU becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Sample the cumulative CPU utilization over `[0, now]` into
    /// `telemetry` as gauge `host.cpu.util`. Observation-only.
    pub fn sample_telemetry(&self, telemetry: &idse_telemetry::Telemetry, now: SimTime) {
        telemetry.gauge(now.as_nanos(), "host.cpu.util", self.utilization(now));
    }
}

/// Extra ops per production op at each audit level, calibrated so that a
/// host saturated with production work sees exactly the cited overhead
/// fractions: solving `extra / (1 + extra) = overhead`.
fn audit_cost_factor(level: AuditLevel) -> f64 {
    let f = level.overhead_fraction();
    f / (1.0 - f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_overhead_matches_cited_percentages() {
        // Saturate a host with production work under each audit level and
        // check the audit share of consumed capacity.
        for (level, expect) in
            [(AuditLevel::Off, 0.0), (AuditLevel::Nominal, 0.04), (AuditLevel::C2, 0.20)]
        {
            let mut cpu = HostCpu::new(1000.0, SimDuration::from_secs(1000));
            cpu.set_audit_level(level);
            let mut t = SimTime::ZERO;
            for _ in 0..1000 {
                if let CpuVerdict::Completed { at } = cpu.execute_production(t, 1.0) {
                    t = at;
                }
            }
            let share = cpu.ids_impact(t);
            assert!(
                (share - expect).abs() < 1e-6,
                "audit level {:?}: share {share} expected {expect}",
                level
            );
        }
    }

    #[test]
    fn fifo_service_time() {
        let mut cpu = HostCpu::new(100.0, SimDuration::from_secs(10));
        match cpu.execute_production(SimTime::ZERO, 50.0) {
            CpuVerdict::Completed { at } => assert_eq!(at, SimTime::from_millis(500)),
            CpuVerdict::Overloaded => panic!("idle cpu accepts work"),
        }
        // Second job queues behind the first.
        match cpu.execute_production(SimTime::ZERO, 50.0) {
            CpuVerdict::Completed { at } => assert_eq!(at, SimTime::from_secs(1)),
            CpuVerdict::Overloaded => panic!("within backlog bound"),
        }
    }

    #[test]
    fn overload_rejects_work() {
        let mut cpu = HostCpu::new(100.0, SimDuration::from_millis(100));
        // 100 ops = 1 s of service; far beyond the 100 ms backlog bound once
        // the first job is in service.
        assert!(matches!(
            cpu.execute_production(SimTime::ZERO, 100.0),
            CpuVerdict::Completed { .. }
        ));
        assert!(matches!(cpu.execute_production(SimTime::ZERO, 100.0), CpuVerdict::Overloaded));
        assert_eq!(cpu.rejected(), 1);
    }

    #[test]
    fn ids_work_counted_separately() {
        let mut cpu = HostCpu::new(1000.0, SimDuration::from_secs(100));
        cpu.execute_production(SimTime::ZERO, 600.0);
        cpu.execute_ids(SimTime::ZERO, 200.0);
        let now = SimTime::from_secs(1);
        assert!((cpu.utilization(now) - 0.8).abs() < 1e-12);
        assert!((cpu.ids_impact(now) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn contention_slows_service_without_touching_accounting() {
        let mut cpu = HostCpu::new(100.0, SimDuration::from_secs(10));
        cpu.set_contention_percent(50);
        assert_eq!(cpu.contention_percent(), 50);
        // 50 ops at an effective 50 ops/s: one full second.
        match cpu.execute_ids(SimTime::ZERO, 50.0) {
            CpuVerdict::Completed { at } => assert_eq!(at, SimTime::from_secs(1)),
            CpuVerdict::Overloaded => panic!("within backlog bound"),
        }
        // Impact is still denominated in nominal capacity.
        assert!((cpu.ids_impact(SimTime::from_secs(1)) - 0.5).abs() < 1e-12);
        cpu.set_contention_percent(0);
        assert_eq!(cpu.contention_percent(), 0);
        // The clamp keeps a fully-stolen host serving (slowly).
        cpu.set_contention_percent(200);
        assert_eq!(cpu.contention_percent(), 95);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut cpu = HostCpu::new(10.0, SimDuration::from_secs(1000));
        cpu.execute_production(SimTime::ZERO, 10_000.0);
        assert_eq!(cpu.utilization(SimTime::from_secs(1)), 1.0);
    }
}
