//! Reproducible, independently-seeded random streams.
//!
//! Every stochastic element of the testbed — arrival processes, payload
//! synthesis, attack timing — draws from its own named stream derived from a
//! single master seed. Adding a new consumer therefore never perturbs the
//! draws seen by existing consumers, which keeps regression baselines stable
//! (the paper's "scientific repeatability" requirement).

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A named, deterministic random stream.
///
/// Streams are derived as `master_seed ⊕ fnv1a(label)` fed through
/// SplitMix64, so distinct labels give statistically independent streams and
/// the same `(seed, label)` pair always reproduces the same sequence.
///
/// ```
/// use idse_sim::RngStream;
/// let mut a = RngStream::derive(42, "traffic");
/// let mut b = RngStream::derive(42, "traffic");
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
    label: String,
}

impl RngStream {
    /// Derive the stream named `label` from `master_seed`.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        Self {
            rng: StdRng::seed_from_u64(derive_seed(master_seed, label)),
            label: label.to_owned(),
        }
    }

    /// Derive a child stream, e.g. one per simulated host.
    pub fn child(&self, sub_label: &str) -> Self {
        let combined = format!("{}/{}", self.label, sub_label);
        // The child is a pure function of the parent's label lineage, not of
        // how many draws the parent has made.
        let mixed = splitmix64(fnv1a(combined.as_bytes()));
        Self { rng: StdRng::seed_from_u64(mixed), label: combined }
    }

    /// The stream's label lineage (for diagnostics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range {lo}..{hi}");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed draw with the given rate (events per unit).
    /// Used for Poisson inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -u.ln() / rate
    }

    /// Pareto-distributed draw (heavy-tailed sizes), with scale `xm > 0` and
    /// shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
        let u = 1.0 - self.unit();
        xm / u.powf(1.0 / alpha)
    }

    /// Normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Draw from any `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.rng)
    }

    /// Pick a reference uniformly from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index according to the given non-negative weights. Panics if
    /// all weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        assert!(total > 0.0, "weights must include a positive entry");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0).expect("positive weight exists")
    }

    /// Fill a byte buffer with uniform random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.rng.fill_bytes(buf);
    }
}

/// Derive the 64-bit seed of the stream named `label` under `master_seed`:
/// `splitmix64(master_seed ⊕ fnv1a(label))`.
///
/// This is the exact derivation [`RngStream::derive`] uses, exposed so that
/// job executors can hand each parallel job a seed that is a pure function
/// of `(master seed, job label)` — independent of scheduling order, worker
/// count, and how many seeds were derived before it. A job that later calls
/// `RngStream::derive(master_seed, label)` observes the same stream.
pub fn derive_seed(master_seed: u64, label: &str) -> u64 {
    splitmix64(master_seed ^ fnv1a(label.as_bytes()))
}

/// FNV-1a hash of a byte string: stable across platforms and Rust versions
/// (unlike `DefaultHasher`), which keeps seed derivation reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structurally similar seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::derive(42, "traffic");
        let mut b = RngStream::derive(42, "traffic");
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = RngStream::derive(42, "traffic");
        let mut b = RngStream::derive(42, "attacks");
        let same = (0..64)
            .filter(|_| a.uniform_u64(0, u64::MAX - 1) == b.uniform_u64(0, u64::MAX - 1))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_seed_matches_stream_derivation() {
        // The public seed derivation and the stream constructor agree, so a
        // job executor can pre-compute seeds without constructing streams.
        let mut via_stream = RngStream::derive(99, "jobs/sweep/3");
        let mut via_seed = RngStream::derive(99, "jobs/sweep/3");
        assert_eq!(derive_seed(99, "jobs/sweep/3"), derive_seed(99, "jobs/sweep/3"));
        assert_eq!(via_stream.uniform_u64(0, 1 << 40), via_seed.uniform_u64(0, 1 << 40));
        // Distinct labels and distinct masters decorrelate.
        assert_ne!(derive_seed(99, "jobs/sweep/3"), derive_seed(99, "jobs/sweep/4"));
        assert_ne!(derive_seed(99, "jobs/sweep/3"), derive_seed(98, "jobs/sweep/3"));
    }

    #[test]
    fn child_streams_are_stable() {
        let parent = RngStream::derive(7, "hosts");
        let mut c1 = parent.child("host-3");
        let mut c2 = RngStream::derive(7, "hosts").child("host-3");
        assert_eq!(c1.uniform_u64(0, 1 << 40), c2.uniform_u64(0, 1 << 40));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = RngStream::derive(1, "exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} should be ~0.25");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = RngStream::derive(9, "w");
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.35, "ratio {ratio} should be ~3");
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::derive(5, "norm");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn empty_uniform_range_panics() {
        RngStream::derive(0, "x").uniform_u64(5, 5);
    }
}
