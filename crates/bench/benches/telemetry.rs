//! Telemetry overhead: the same pipeline run with telemetry disabled,
//! enabled into a discarding sink (pure recording-path cost), and
//! enabled into the bounded in-memory ring buffer. The disabled case is
//! the regression guard — a disabled handle must stay within noise of
//! the pre-telemetry pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_sim::SimDuration;
use idse_telemetry::{MemorySink, NoopSink, Telemetry};

fn run_once(feed: &TestFeed, telemetry: Telemetry) -> usize {
    let runner = PipelineRunner::new(
        IdsProduct::model(ProductId::GuardSecure),
        RunConfig {
            sensitivity: Sensitivity::new(0.7),
            monitored_hosts: feed.servers.clone(),
            telemetry,
            ..RunConfig::default()
        },
    )
    .with_training(feed.training.clone());
    runner.run(&feed.test).alerts.len()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let feed = TestFeed::ecommerce(
        &FeedConfig::builder()
            .session_rate(20.0)
            .training_span(SimDuration::from_secs(8))
            .test_span(SimDuration::from_secs(15))
            .campaign_intensity(1)
            .seed(77)
            .build(),
    );
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(feed.test.len() as u64));
    group.bench_function(BenchmarkId::new("pipeline", "disabled"), |b| {
        b.iter(|| run_once(&feed, Telemetry::disabled()))
    });
    group.bench_function(BenchmarkId::new("pipeline", "noop_sink"), |b| {
        b.iter(|| run_once(&feed, Telemetry::new(NoopSink)))
    });
    group.bench_function(BenchmarkId::new("pipeline", "memory_sink"), |b| {
        // A fresh ring buffer per run, like the CLI uses.
        b.iter(|| run_once(&feed, Telemetry::new(MemorySink::new(1 << 18))))
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
