//! Hot-path benchmarks backing the lint's performance phase.
//!
//! The v4 lint rules (`alloc-in-hot-loop`, `per-byte-dispatch`, …) exist
//! because two loops multiply everything the paper measures: the
//! signature engine's per-byte automaton walk and the DES kernel's
//! per-event dispatch. These benches price exactly those loops so the
//! rules' cost claims are numbers, not folklore — the results round-trip
//! through `store bench-import` into the committed `BENCH_hotpath.json`
//! as `bench.engine_mb_s` and `bench.sim_events_s`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idse_ids::aho::AhoCorasick;
use idse_ids::engine::signature::standard_rule_db;
use idse_sim::{EventQueue, RngStream, SimDuration, SimTime, Simulation, World};

fn payload_corpus(n: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = RngStream::derive(1, "bench-payloads");
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                idse_traffic::payload::http_response(&mut rng, len)
            } else {
                idse_traffic::payload::http_request(&mut rng)
            }
        })
        .collect()
}

/// Signature-engine scan throughput: the per-byte automaton walk in
/// `aho.rs` over a realistic HTTP payload mix. `bench.engine_mb_s`.
fn bench_engine_scan(c: &mut Criterion) {
    let rules = standard_rule_db();
    let patterns: Vec<&[u8]> = rules.iter().map(|r| r.pattern).collect();
    let ac = AhoCorasick::new(&patterns);
    let payloads = payload_corpus(256, 1024);
    let total_bytes: usize = payloads.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("engine_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &payloads {
                hits += ac.matching_patterns(p).len();
            }
            hits
        })
    });
    group.finish();
}

/// A world whose every event reschedules a follow-up until the budget is
/// spent: keeps the queue non-empty so the bench times the kernel's
/// peek/pop/dispatch loop, not queue teardown.
struct Relay {
    remaining: u64,
}

impl World for Relay {
    type Event = u64;

    fn handle(&mut self, now: SimTime, event: u64, queue: &mut EventQueue<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule(now + SimDuration::from_nanos(100 + (event % 7) * 13), event + 1);
        }
    }
}

/// DES kernel dispatch throughput: the `// idse-lint: hot` drain loop in
/// `idse-sim`, one event at a time. `bench.sim_events_s`.
fn bench_sim_dispatch(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    const SEEDS: u64 = 64;

    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("sim_dispatch", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let mut rng = RngStream::derive(2, "bench-dispatch");
            for i in 0..SEEDS {
                sim.queue_mut().schedule(SimTime::from_nanos(rng.uniform_u64(0, 1 << 20)), i);
            }
            let mut world = Relay { remaining: EVENTS - SEEDS };
            sim.run_to_completion(&mut world)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_scan, bench_sim_dispatch);
criterion_main!(benches);
