//! Scorecard-methodology benchmarks: catalog construction, weight
//! derivation (Figure 6), and the weighted-score computation (Figure 5).

use criterion::{criterion_group, criterion_main, Criterion};
use idse_core::catalog::catalog;
use idse_core::{DiscreteScore, RequirementSet, Scorecard, WeightSet};

fn filled_card() -> Scorecard {
    let mut c = Scorecard::new("bench-product");
    for (i, m) in catalog().into_iter().enumerate() {
        c.set(m.id, DiscreteScore::new((i % 5) as u8));
    }
    c
}

fn bench_scorecard(c: &mut Criterion) {
    let card = filled_card();
    let weights = RequirementSet::realtime_distributed().derive();
    let uniform = WeightSet::uniform();

    c.bench_function("catalog_build", |b| b.iter(|| catalog().len()));
    c.bench_function("derive_weights_realtime", |b| {
        b.iter(|| RequirementSet::realtime_distributed().derive().ideal_total())
    });
    c.bench_function("weighted_total", |b| b.iter(|| weights.weighted_total(&card)));
    c.bench_function("weighted_total_uniform", |b| b.iter(|| uniform.weighted_total(&card)));
    c.bench_function("render_comparison_4_products", |b| {
        let cards = [filled_card(), filled_card(), filled_card(), filled_card()];
        let refs: Vec<&Scorecard> = cards.iter().collect();
        b.iter(|| idse_core::report::render_comparison(&refs, &weights).len())
    });
}

criterion_group!(benches, bench_scorecard);
criterion_main!(benches);
