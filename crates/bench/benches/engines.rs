//! Detection-engine micro-benchmarks.
//!
//! The headline comparison is the signature scan: the from-scratch
//! Aho–Corasick automaton against a naive per-rule `memmem` loop — the
//! ablation DESIGN.md §5 calls out. Engine inspection costs directly set
//! the simulated products' throughput ceilings, so these numbers are the
//! ground truth behind the sensor cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idse_ids::aho::{contains, AhoCorasick};
use idse_ids::engine::anomaly::{AnomalyConfig, AnomalyEngine};
use idse_ids::engine::signature::{standard_rule_db, SignatureConfig, SignatureEngine};
use idse_ids::engine::{DetectionEngine, Sensitivity};
use idse_sim::{RngStream, SimDuration};
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};

fn payload_corpus(n: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = RngStream::derive(1, "bench-payloads");
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                idse_traffic::payload::http_response(&mut rng, len)
            } else {
                idse_traffic::payload::http_request(&mut rng)
            }
        })
        .collect()
}

fn bench_multipattern(c: &mut Criterion) {
    let rules = standard_rule_db();
    let patterns: Vec<&[u8]> = rules.iter().map(|r| r.pattern).collect();
    let ac = AhoCorasick::new(&patterns);
    let payloads = payload_corpus(64, 1024);
    let total_bytes: usize = payloads.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("signature_scan");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("aho_corasick", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &payloads {
                hits += ac.matching_patterns(p).len();
            }
            hits
        })
    });
    group.bench_function("naive_per_rule", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &payloads {
                for pat in &patterns {
                    if contains(p, pat) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let trace = BackgroundGenerator::new(GeneratorConfig::new(
        SiteProfile::ecommerce_web(),
        ArrivalProcess::Poisson { rate: 40.0 },
        SimDuration::from_secs(10),
        7,
    ))
    .generate();

    let mut group = c.benchmark_group("engine_inspect");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_function(BenchmarkId::new("signature", trace.len()), |b| {
        b.iter_with_setup(
            || {
                let mut e = SignatureEngine::standard(SignatureConfig::default());
                e.set_sensitivity(Sensitivity::new(0.8));
                e
            },
            |mut e| {
                let mut dets = 0usize;
                for r in trace.records() {
                    dets += e.inspect(r.at, &r.packet).len();
                }
                dets
            },
        )
    });

    group.bench_function(BenchmarkId::new("anomaly", trace.len()), |b| {
        b.iter_with_setup(
            || {
                let mut e = AnomalyEngine::new(AnomalyConfig::default());
                e.train(&trace);
                e.set_sensitivity(Sensitivity::new(0.8));
                e
            },
            |mut e| {
                let mut dets = 0usize;
                for r in trace.records() {
                    dets += e.inspect(r.at, &r.packet).len();
                }
                dets
            },
        )
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let trace = BackgroundGenerator::new(GeneratorConfig::new(
        SiteProfile::realtime_cluster(),
        ArrivalProcess::Poisson { rate: 40.0 },
        SimDuration::from_secs(10),
        9,
    ))
    .generate();
    let mut group = c.benchmark_group("anomaly_training");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("train", |b| {
        b.iter(|| {
            let mut e = AnomalyEngine::new(AnomalyConfig::default());
            e.train(&trace);
            e.is_trained()
        })
    });
    group.finish();
}

fn bench_automaton_build(c: &mut Criterion) {
    let mut rng = RngStream::derive(3, "patterns");
    let patterns: Vec<Vec<u8>> = (0..200)
        .map(|_| {
            let mut p = vec![0u8; 8 + rng.index(24)];
            rng.fill_bytes(&mut p);
            p
        })
        .collect();
    c.bench_function("aho_corasick_build_200_rules", |b| {
        b.iter(|| AhoCorasick::new(&patterns).state_count())
    });
}

criterion_group!(benches, bench_multipattern, bench_engines, bench_training, bench_automaton_build);
criterion_main!(benches);
