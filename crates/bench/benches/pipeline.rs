//! End-to-end pipeline benchmarks: how many simulated packets per second
//! the testbed itself sustains per product — the number that bounds how
//! large an evaluation the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_sim::SimDuration;

fn bench_pipeline(c: &mut Criterion) {
    let feed = TestFeed::ecommerce(
        &FeedConfig::builder()
            .session_rate(20.0)
            .training_span(SimDuration::from_secs(8))
            .test_span(SimDuration::from_secs(15))
            .campaign_intensity(1)
            .seed(77)
            .build(),
    );
    let mut group = c.benchmark_group("pipeline_run");
    group.sample_size(10);
    group.throughput(Throughput::Elements(feed.test.len() as u64));
    for id in ProductId::ALL {
        group.bench_function(BenchmarkId::new("product", id.name()), |b| {
            b.iter(|| {
                let runner = PipelineRunner::new(
                    IdsProduct::model(id),
                    RunConfig {
                        sensitivity: Sensitivity::new(0.7),
                        monitored_hosts: feed.servers.clone(),
                        ..RunConfig::default()
                    },
                )
                .with_training(feed.training.clone());
                runner.run(&feed.test).alerts.len()
            })
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("background_15s_ecommerce", |b| {
        b.iter(|| {
            TestFeed::ecommerce(
                &FeedConfig::builder()
                    .session_rate(20.0)
                    .training_span(SimDuration::from_secs(5))
                    .test_span(SimDuration::from_secs(15))
                    .campaign_intensity(1)
                    .seed(5)
                    .build(),
            )
            .test
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_generation);
criterion_main!(benches);
