//! Substrate micro-benchmarks: event queue, link model, session hashing,
//! fragmentation/reassembly, wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idse_net::frag::{fragment, OverlapPolicy, Reassembler};
use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use idse_net::{wire, FlowKey};
use idse_sim::{EventQueue, Link, LinkConfig, RngStream, SimTime};
use std::net::Ipv4Addr;

fn sample_packet(payload_len: usize) -> Packet {
    Packet::tcp(
        Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 2)),
        TcpHeader {
            src_port: 40123,
            dst_port: 80,
            seq: 7,
            ack: 9,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
        },
        vec![0x41u8; payload_len],
    )
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        let mut rng = RngStream::derive(5, "eq");
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(rng.uniform_u64(0, 1 << 40)), i);
            }
            let mut sum = 0u64;
            while let Some(ev) = q.pop() {
                sum = sum.wrapping_add(ev.event);
            }
            sum
        })
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_model");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("offer_10k_frames", |b| {
        b.iter(|| {
            let mut link = Link::new(LinkConfig::fast_ethernet());
            let mut delivered = 0u64;
            for i in 0..10_000u64 {
                if let idse_sim::link::LinkVerdict::Delivered { .. } =
                    link.offer(SimTime::from_micros(i * 5), 1500)
                {
                    delivered += 1;
                }
            }
            delivered
        })
    });
    group.finish();
}

fn bench_session_hash(c: &mut Criterion) {
    let packets: Vec<Packet> = (0..1000u16)
        .map(|i| {
            let mut p = sample_packet(0);
            if let idse_net::Transport::Tcp(ref mut t) = p.transport {
                t.src_port = 1000 + i;
            }
            p
        })
        .collect();
    let mut group = c.benchmark_group("flow");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("session_hash", |b| {
        b.iter(|| {
            packets.iter().map(|p| FlowKey::of(p).session_hash()).fold(0u64, u64::wrapping_add)
        })
    });
    group.finish();
}

fn bench_frag(c: &mut Criterion) {
    let packet = sample_packet(1400);
    let frags = fragment(&packet, 64);
    let mut group = c.benchmark_group("fragmentation");
    group.bench_function("fragment_1400B_into_64B", |b| b.iter(|| fragment(&packet, 64).len()));
    group.bench_function("reassemble", |b| {
        b.iter(|| {
            let mut r = Reassembler::new(OverlapPolicy::LastWins);
            let mut done = 0;
            for f in &frags {
                if r.push(f).is_some() {
                    done += 1;
                }
            }
            done
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let packet = sample_packet(512);
    let bytes = wire::encode(&packet);
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| wire::encode(&packet).len()));
    group.bench_function("decode", |b| b.iter(|| wire::decode(&bytes).expect("valid")));
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_link,
    bench_session_hash,
    bench_frag,
    bench_wire
);
criterion_main!(benches);
