//! Shared command-line plumbing for the artifact binaries.
//!
//! Every `figure*`, `table*` and `exp_*` binary speaks the same dialect:
//!
//! ```text
//! <bin> [--seed N] [--jobs N] [--out PATH] [--json PATH]
//! ```
//!
//! * `--seed N` — override the feed master seed (default: the binary's
//!   canonical seed, usually [`crate::STANDARD_SEED`]).
//! * `--jobs N` — executor width for the parallel experiment jobs
//!   (`0` = one worker per core; output is byte-identical for any `N`).
//! * `--out PATH` — write the rendered artifact to a file instead of
//!   stdout.
//! * `--json PATH` — where a binary has a machine-readable report, write
//!   it there; binaries without one reject the flag.
//!
//! Binaries with extra flags (`evaluate`) parse them off an [`Args`]
//! before calling [`Args::finish`]; plain binaries call [`shell`] and get
//! back the parsed [`Common`] plus an [`Out`] sink for the [`outln!`]
//! macro.

use idse_exec::Executor;

/// The flags every artifact binary shares.
#[derive(Debug, Clone)]
pub struct Common {
    /// `--seed N`: feed master-seed override.
    pub seed: Option<u64>,
    /// `--jobs N`: executor width (`0` = auto, default `1`).
    pub jobs: usize,
    /// `--json PATH`: machine-readable report destination.
    pub json: Option<String>,
    /// `--out PATH`: rendered-text destination (stdout when absent).
    pub out: Option<String>,
}

impl Default for Common {
    /// No overrides: default seed, serial executor, stdout output.
    fn default() -> Self {
        Common { seed: None, jobs: 1, json: None, out: None }
    }
}

impl Common {
    /// The seed to run with: the `--seed` override or `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The executor `--jobs` asked for (default 1, serial; 0 = auto).
    pub fn executor(&self) -> Executor {
        Executor::new(self.jobs)
    }

    /// Exit with usage error if `--json` was passed to a binary that has
    /// no machine-readable report.
    pub fn deny_json(&self, bin: &str) {
        if self.json.is_some() {
            eprintln!("error: {bin} has no JSON report (--json is not supported here)");
            std::process::exit(2);
        }
    }

    /// If `--json PATH` was given, pretty-print `value` there (`-` means
    /// stdout) and note it on stderr.
    pub fn write_json(&self, value: &serde_json::Value) {
        let Some(path) = &self.json else { return };
        let body = serde_json::to_string_pretty(value).expect("report serializes");
        if path == "-" {
            println!("{body}");
            return;
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: writing {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

/// A partially-consumed argument list. Binaries pull their own flags off
/// it with [`Args::flag`]/[`Args::opt`], then [`Args::finish`] consumes
/// the shared flags and rejects anything left over.
#[derive(Debug)]
pub struct Args {
    rest: Vec<String>,
}

impl Args {
    /// Parse the process arguments. `--help`/`-h` prints `usage` (plus
    /// the shared-flag reference) and exits.
    pub fn parse(usage: &str) -> Args {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "{usage}\n\nshared flags:\n  --seed N   feed master-seed override\n  \
                 --jobs N   parallel executor width (0 = one per core; output is byte-identical)\n  \
                 --out PATH write rendered text to PATH instead of stdout\n  \
                 --json PATH write the machine-readable report to PATH (- for stdout)"
            );
            std::process::exit(0);
        }
        Args { rest: args }
    }

    /// An `Args` over an explicit vector (no `--help` handling) — the
    /// testable constructor.
    pub fn from_vec(args: Vec<String>) -> Args {
        Args { rest: args }
    }

    /// Consume a boolean `name` flag; true if it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    /// Consume `name VALUE`; `None` if absent. Exits with a usage error
    /// if the flag is present without a value.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == name)?;
        if i + 1 >= self.rest.len() {
            eprintln!("error: {name} requires a value (try --help)");
            std::process::exit(2);
        }
        let value = self.rest.remove(i + 1);
        self.rest.remove(i);
        Some(value)
    }

    /// Consume `name VALUE` and parse it; exits with a usage error when
    /// the value does not parse.
    pub fn opt_parsed<T>(&mut self, name: &str) -> Option<T>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        let raw = self.opt(name)?;
        match raw.parse() {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error: {name} {raw:?}: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Consume the next positional argument (the first remaining arg not
    /// starting with `--`). Pull all `--` flags off first — a flag's
    /// value would otherwise look positional.
    pub fn positional(&mut self) -> Option<String> {
        let i = self.rest.iter().position(|a| !a.starts_with("--"))?;
        Some(self.rest.remove(i))
    }

    /// Consume the shared flags; error out on anything still unclaimed.
    pub fn finish(self) -> Common {
        match self.try_finish() {
            Ok(common) => common,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`Args::finish`] without the process exit — the testable core.
    pub fn try_finish(mut self) -> Result<Common, String> {
        let mut common = Common::default();
        if let Some(raw) = self.opt_checked("--seed")? {
            common.seed = Some(raw.parse().map_err(|e| format!("--seed {raw:?}: {e}"))?);
        }
        if let Some(raw) = self.opt_checked("--jobs")? {
            common.jobs = raw.parse().map_err(|e| format!("--jobs {raw:?}: {e}"))?;
        }
        common.json = self.opt_checked("--json")?;
        common.out = self.opt_checked("--out")?;
        match self.rest.first() {
            Some(unknown) => Err(format!("unknown flag {unknown:?} (try --help)")),
            None => Ok(common),
        }
    }

    fn opt_checked(&mut self, name: &str) -> Result<Option<String>, String> {
        let Some(i) = self.rest.iter().position(|a| a == name) else {
            return Ok(None);
        };
        if i + 1 >= self.rest.len() {
            return Err(format!("{name} requires a value (try --help)"));
        }
        let value = self.rest.remove(i + 1);
        self.rest.remove(i);
        Ok(Some(value))
    }
}

/// Buffered text output honoring `--out`: lines accumulate via
/// [`outln!`] and land on stdout or in the file when [`Out::finish`]
/// runs.
#[derive(Debug)]
pub struct Out {
    buf: String,
    path: Option<String>,
}

impl Out {
    /// An output sink honoring `common.out`.
    pub fn new(common: &Common) -> Out {
        Out { buf: String::new(), path: common.out.clone() }
    }

    /// Append one formatted line (use through [`outln!`]).
    pub fn line(&mut self, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write;
        writeln!(self.buf, "{args}").expect("string write is infallible");
    }

    /// The accumulated text so far.
    pub fn text(&self) -> &str {
        &self.buf
    }

    /// Deliver the buffer: print to stdout, or write the `--out` file.
    pub fn finish(self) {
        match self.path {
            None => print!("{}", self.buf),
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &self.buf) {
                    eprintln!("error: writing {path:?}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {path}");
            }
        }
    }
}

/// Append one formatted line to an [`Out`](crate::cli::Out) sink.
#[macro_export]
macro_rules! outln {
    ($out:expr) => {
        $out.line(format_args!(""))
    };
    ($out:expr, $($arg:tt)*) => {
        $out.line(format_args!($($arg)*))
    };
}

/// The one-call front door for plain binaries: parse the shared flags,
/// reject everything else, and hand back the output sink.
pub fn shell(usage: &str) -> (Common, Out) {
    let common = Args::parse(usage).finish();
    let out = Out::new(&common);
    (common, out)
}

/// Pull the shared `--store DIR [--stamp S] [--git-rev REV]` triple off
/// `args`, returning an annotated [`idse_eval::StoreSpec`] when
/// `--store` was given. The stamp and revision flags are consumed either
/// way so they never leak to [`Args::finish`] as unknown flags.
pub fn store_spec(args: &mut Args) -> Option<idse_eval::StoreSpec> {
    let dir = args.opt("--store");
    let stamp = args.opt("--stamp");
    let git_rev = args.opt("--git-rev");
    dir.map(|dir| idse_eval::StoreSpec::new(dir).with_stamp(stamp).with_git_rev(git_rev))
}

/// Print the committed-run confirmation every recording binary shares, or
/// exit 1 when the store rejected the run.
pub fn report_store_result(
    spec: &idse_eval::StoreSpec,
    result: Result<idse_store::StoredRun, idse_store::StoreError>,
) {
    match result {
        Ok(run) => eprintln!(
            "recorded run {} ({} records) in {}",
            run.header.run_id,
            run.header.records,
            spec.dir.display()
        ),
        Err(e) => {
            eprintln!("error: run store recording failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn common_flags_parse_anywhere_in_the_line() {
        let common = Args::from_vec(vec_of(&["--jobs", "4", "--seed", "99", "--out", "x.txt"]))
            .try_finish()
            .expect("valid args");
        assert_eq!(common.seed_or(1), 99);
        assert_eq!(common.jobs, 4);
        assert_eq!(common.out.as_deref(), Some("x.txt"));
        assert_eq!(common.json, None);
        assert_eq!(common.executor().workers(), 4);
    }

    #[test]
    fn defaults_are_serial_and_seedless() {
        let common = Args::from_vec(vec![]).try_finish().expect("empty args");
        assert_eq!(common.jobs, 1);
        assert_eq!(common.seed_or(7), 7);
        assert_eq!(common.executor().workers(), 1);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Args::from_vec(vec_of(&["--bogus"])).try_finish().unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        let err = Args::from_vec(vec_of(&["--seed"])).try_finish().unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = Args::from_vec(vec_of(&["--jobs", "many"])).try_finish().unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn bin_specific_flags_come_off_before_finish() {
        let mut args = Args::from_vec(vec_of(&["--sweep", "9", "--jobs", "2", "--verbose"]));
        assert_eq!(args.opt("--sweep").as_deref(), Some("9"));
        assert!(args.flag("--verbose"));
        assert!(!args.flag("--verbose"), "flags consume");
        let common = args.try_finish().expect("only shared flags remain");
        assert_eq!(common.jobs, 2);
    }

    #[test]
    fn positionals_come_off_in_order_after_flags() {
        let mut args = Args::from_vec(vec_of(&["diff", "--dir", "runs", "rAAAA", "rBBBB"]));
        let dir = args.opt("--dir");
        assert_eq!(dir.as_deref(), Some("runs"));
        assert_eq!(args.positional().as_deref(), Some("diff"));
        assert_eq!(args.positional().as_deref(), Some("rAAAA"));
        assert_eq!(args.positional().as_deref(), Some("rBBBB"));
        assert_eq!(args.positional(), None);
        args.try_finish().expect("nothing left over");
    }

    #[test]
    fn outln_buffers_lines_in_order() {
        let common = Common::default();
        let mut out = Out::new(&common);
        outln!(out, "a {}", 1);
        outln!(out);
        outln!(out, "b");
        assert_eq!(out.text(), "a 1\n\nb\n");
    }
}
