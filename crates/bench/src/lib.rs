//! # idse-bench — table/figure regeneration and micro-benchmarks
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` `table2` `table3` | the selected-metric tables with per-product scores |
//! | `figure1` | the generalized architecture, walked per product |
//! | `figure2` | the subprocess cardinality relations + conformance |
//! | `figure3` | FP/FN confusion counts and the paper's ratio formulas |
//! | `figure4` | error-rate curves vs sensitivity + Equal Error Rate |
//! | `figure5` | the weighted score computation `S = ΣΣ U·W` |
//! | `figure6` | requirement → metric weight mapping |
//! | `exp_host_overhead` | X1: §2.1 audit-cost percentages |
//! | `exp_payload_realism` | X2: random-flood vs realistic-content loads |
//! | `exp_site_profile` | X3: e-commerce-tuned IDS on cluster traffic |
//! | `exp_operating_point` | X4: §3.3 distributed operating-point rule |
//! | `lb_ablation` | load-balancing strategy ablation |
//! | `sensor_analyzer_split` | combined vs separated sensing/analysis |
//!
//! Criterion benches live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

use idse_eval::feeds::FeedConfig;
use idse_eval::harness::{EvaluationRequest, ProductEvaluation};
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::TestFeed;
use idse_sim::SimDuration;

/// The canonical master seed for the paper artifacts (the workshop date).
/// Defined next to the job specs so daemon submissions and the CLIs agree.
pub use idse_eval::service::STANDARD_SEED;

/// The standard evaluation setup shared by the table/figure binaries so
/// every artifact is computed from the same canned feed, parameterized by
/// the shared `--seed`/`--jobs` flags.
pub fn standard_setup_with(seed: u64, jobs: usize) -> (TestFeed, EvaluationRequest) {
    let request = EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(25.0)
                .training_span(SimDuration::from_secs(20))
                .test_span(SimDuration::from_secs(45))
                .campaign_intensity(2)
                .seed(seed)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(3_000.0))
        .with_sweep_steps(7)
        .with_max_throughput_factor(4096.0)
        .with_fp_budget(0.15)
        .with_jobs(jobs);
    let feed = request.build_feed();
    (feed, request)
}

/// [`standard_setup_with`] at the canonical seed, serial.
pub fn standard_setup() -> (TestFeed, EvaluationRequest) {
    standard_setup_with(STANDARD_SEED, 1)
}

/// Run the full standard evaluation (all four products).
pub fn standard_evaluation_with(
    seed: u64,
    jobs: usize,
) -> (TestFeed, EvaluationRequest, Vec<ProductEvaluation>) {
    let (feed, request) = standard_setup_with(seed, jobs);
    let evals = request.evaluate_all(&feed);
    (feed, request, evals)
}

/// [`standard_evaluation_with`] at the canonical seed, serial.
pub fn standard_evaluation() -> (TestFeed, EvaluationRequest, Vec<ProductEvaluation>) {
    standard_evaluation_with(STANDARD_SEED, 1)
}

/// Render a compact fixed-width table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            line.push_str(&format!("{c:<w$}  "));
        }
        line.trim_end().to_owned()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn standard_setup_is_reproducible() {
        let (a, _) = standard_setup();
        let (b, _) = standard_setup();
        assert_eq!(a.test.len(), b.test.len());
    }
}
