//! Figure 2 — relational cardinality of IDS subprocesses, plus conformance
//! of each simulated product.

use idse_bench::{cli, outln, table};
use idse_ids::cardinality::{figure2_relations, SubprocessCounts};
use idse_ids::products::IdsProduct;

fn main() {
    let (common, mut out) = cli::shell("usage: figure2 [--out PATH]");
    common.deny_json("figure2");

    outln!(out, "=== Paper Figure 2: Relational cardinality of IDS subprocesses ===\n");
    for rel in figure2_relations() {
        outln!(out, "  {}", rel.notation());
    }
    outln!(
        out,
        "\n  (\"1c\" marks the conditional — optional — side; subprocesses 2–4 are essential.)\n"
    );

    outln!(out, "=== Product architectures vs the Figure 2 relations ===\n");
    let rows: Vec<Vec<String>> = IdsProduct::all_models()
        .iter()
        .map(|p| {
            let c = SubprocessCounts::of(p);
            let v = c.validate();
            vec![
                p.id.name().to_owned(),
                c.load_balancers.to_string(),
                c.sensors.to_string(),
                c.analyzers.to_string(),
                c.monitors.to_string(),
                c.managers.to_string(),
                if v.is_empty() { "conformant".to_owned() } else { v.join("; ") },
            ]
        })
        .collect();
    outln!(
        out,
        "{}",
        table(
            &["Product", "LB", "Sensors", "Analyzers", "Monitors", "Consoles", "Figure-2 check"],
            &rows
        )
    );

    // A deliberately malformed architecture, to show the validator bites.
    let bad =
        SubprocessCounts { load_balancers: 1, sensors: 0, analyzers: 0, monitors: 2, managers: 1 };
    outln!(out, "Counter-example (sensors=0, monitors=2):");
    for v in bad.validate() {
        outln!(out, "  violation: {v}");
    }
    out.finish();
}
