//! Figure 2 — relational cardinality of IDS subprocesses, plus conformance
//! of each simulated product.

use idse_bench::table;
use idse_ids::cardinality::{figure2_relations, SubprocessCounts};
use idse_ids::products::IdsProduct;

fn main() {
    println!("=== Paper Figure 2: Relational cardinality of IDS subprocesses ===\n");
    for rel in figure2_relations() {
        println!("  {}", rel.notation());
    }
    println!(
        "\n  (\"1c\" marks the conditional — optional — side; subprocesses 2–4 are essential.)\n"
    );

    println!("=== Product architectures vs the Figure 2 relations ===\n");
    let rows: Vec<Vec<String>> = IdsProduct::all_models()
        .iter()
        .map(|p| {
            let c = SubprocessCounts::of(p);
            let v = c.validate();
            vec![
                p.id.name().to_owned(),
                c.load_balancers.to_string(),
                c.sensors.to_string(),
                c.analyzers.to_string(),
                c.monitors.to_string(),
                c.managers.to_string(),
                if v.is_empty() { "conformant".to_owned() } else { v.join("; ") },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Product", "LB", "Sensors", "Analyzers", "Monitors", "Consoles", "Figure-2 check"],
            &rows
        )
    );

    // A deliberately malformed architecture, to show the validator bites.
    let bad =
        SubprocessCounts { load_balancers: 1, sensors: 0, analyzers: 0, monitors: 2, managers: 1 };
    println!("Counter-example (sensors=0, monitors=2):");
    for v in bad.validate() {
        println!("  violation: {v}");
    }
}
