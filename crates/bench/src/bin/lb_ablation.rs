//! Ablation — load-balancing strategy (DESIGN.md §5): session-aware
//! hashing vs round robin vs static placement vs none, on the same
//! 4-sensor product. "Individual, statically placed sensors may overload
//! or starve, and the protection of the network will be uneven" (§2.2).

use idse_bench::{cli, outln, standard_setup_with, table, STANDARD_SEED};
use idse_eval::confusion::TransactionLedger;
use idse_ids::components::BalanceStrategy;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;

fn main() {
    let (common, mut out) = cli::shell("usage: lb_ablation [--seed N] [--jobs N] [--out PATH]");
    common.deny_json("lb_ablation");

    outln!(out, "=== Ablation: load-balancing strategies on a 4-sensor deployment ===\n");
    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);
    let ledger = TransactionLedger::of(&feed.test);
    // Offered load well above one sensor's capacity so the strategy
    // matters (tiled so buffers cannot absorb the burst).
    let hot = feed.test.time_scaled(1200.0).repeated(4);
    let hot_ledger = TransactionLedger::of(&hot);

    let strategies = [
        BalanceStrategy::None,
        BalanceStrategy::StaticPartition,
        BalanceStrategy::RoundRobin,
        BalanceStrategy::SessionHash,
    ];
    let exec = request.executor();
    let rows = exec.par_map(&strategies, |_, strategy| {
        let mut product = IdsProduct::model(ProductId::FlowHunter);
        product.architecture.balance = *strategy;
        let run_config = RunConfig {
            sensitivity: Sensitivity::new(0.7),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let out = PipelineRunner::new(product.clone(), run_config.clone())
            .with_training(feed.training.clone())
            .run(&hot);
        let counts = hot_ledger.score(&out.alerts);

        let loads: Vec<u64> = out.sensor_counters.iter().map(|c| c.processed).collect();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let min = *loads.iter().min().unwrap_or(&0) as f64;
        let imbalance = if min > 0.0 { max / min } else { f64::INFINITY };

        // Detection at normal load for the same strategy.
        let out_normal = PipelineRunner::new(product, run_config)
            .with_training(feed.training.clone())
            .run(&feed.test);
        let normal_counts = ledger.score(&out_normal.alerts);

        vec![
            format!("{strategy:?}"),
            loads.iter().map(|l| l.to_string()).collect::<Vec<_>>().join("/"),
            if imbalance.is_finite() { format!("{imbalance:.1}x") } else { "∞".into() },
            format!("{:.3}", out.loss_ratio()),
            format!("{:.2}", counts.detection_rate()),
            format!("{:.2}", normal_counts.detection_rate()),
        ]
    });
    outln!(
        out,
        "{}",
        table(
            &[
                "Strategy",
                "Per-sensor processed (hot)",
                "Imbalance",
                "Loss (hot)",
                "Detect (hot)",
                "Detect (normal)",
            ],
            &rows
        )
    );
    outln!(
        out,
        "\nNone: one sensor takes the whole offered load — overload, loss, missed attacks."
    );
    outln!(out, "StaticPartition: placement spreads load unevenly (subnets differ in traffic),");
    outln!(out, "matching the paper's 'statically placed sensors may overload or starve'.");
    outln!(out, "RoundRobin: even load, but both directions of a session land on different");
    outln!(out, "sensors, splitting the stateful detectors' per-source view.");
    outln!(out, "SessionHash: even load AND session affinity — the paper's 'intelligent,");
    outln!(out, "dynamic' high anchor.");
    out.finish();
}
