//! `lint` — run the idse-lint workspace static-analysis pass.
//!
//! ```text
//! cargo run -p idse-bench --bin lint                  # human output, exit 1 on errors
//! cargo run -p idse-bench --bin lint -- --jobs 8      # parallel scan, identical bytes
//! cargo run -p idse-bench --bin lint -- --json out.json
//! cargo run -p idse-bench --bin lint -- --sarif lint.sarif
//! cargo run -p idse-bench --bin lint -- --stats       # per-crate rule-hit counts
//! cargo run -p idse-bench --bin lint -- --fix         # dry-run directive cleanup
//! cargo run -p idse-bench --bin lint -- --fix --write # apply it
//! cargo run -p idse-bench --bin lint -- --write-baseline lint-baseline.json
//! ```
//!
//! Runs in CI between clippy and the test suite; exits nonzero when any
//! error-severity finding is active. `--jobs N` fans the per-file phase out
//! over N workers (`0` = one per core) and is guaranteed byte-identical to
//! serial for the text, JSON, and SARIF outputs — CI diffs them. `--stats`
//! prints the suppression-debt ledger (per-crate, per-rule
//! error/warning/suppressed counts) so allowlist growth is visible over
//! time; `--write-baseline` snapshots it to the committed
//! `lint-baseline.json`. `--fix` plans mechanical allow-directive cleanup
//! (delete unused, normalize malformed) and only touches files with
//! `--write`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    jobs: Option<usize>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    stats: bool,
    write_baseline: Option<PathBuf>,
    fix: bool,
    write: bool,
    list_rules: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [--root DIR] [--jobs N] [--json FILE|-] [--sarif FILE|-] [--stats]\n\
         \x20           [--fix [--write]] [--write-baseline FILE] [--rules]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: workspace_root(),
        jobs: None,
        json: None,
        sarif: None,
        stats: false,
        write_baseline: None,
        fix: false,
        write: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.jobs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--json" => args.json = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--sarif" => args.sarif = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--stats" => args.stats = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--fix" => args.fix = true,
            "--write" => args.write = true,
            "--rules" => args.list_rules = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.write && !args.fix {
        eprintln!("lint: --write requires --fix");
        std::process::exit(2);
    }
    args
}

/// The workspace root: walk up from the current directory to the first
/// Cargo.toml containing a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn emit(path: &Path, what: &str, payload: &str) -> Result<(), ExitCode> {
    if path == Path::new("-") {
        println!("{payload}");
        return Ok(());
    }
    std::fs::write(path, payload).map_err(|e| {
        eprintln!("lint: failed to write {what} {}: {e}", path.display());
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list_rules {
        for rule in idse_lint::rules::RuleId::ALL {
            println!("{:<40} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let ws = match idse_lint::load_workspace(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let exec = match args.jobs {
        Some(n) => idse_exec::Executor::new(n),
        None => idse_exec::Executor::serial(),
    };
    let analysis = idse_lint::analyze_full(&ws, &exec);

    if args.fix {
        let plan = idse_lint::fix::plan(&ws, &analysis);
        if plan.is_empty() {
            println!("lint --fix: nothing to do");
            return ExitCode::SUCCESS;
        }
        print!("{}", plan.render());
        if args.write {
            match idse_lint::fix::apply(&plan, &args.root) {
                Ok(n) => println!("lint --fix: applied {n} edit(s)"),
                Err(e) => {
                    eprintln!("lint: failed to apply fixes: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            println!(
                "lint --fix: {} edit(s) planned (dry run; add --write to apply)",
                plan.edits.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = analysis.report;

    if let Some(path) = &args.json {
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(code) = emit(path, "json", &payload) {
            return code;
        }
    }

    if let Some(path) = &args.sarif {
        let payload = idse_lint::sarif::to_sarif(&report);
        if let Err(code) = emit(path, "sarif", &payload) {
            return code;
        }
    }

    if let Some(path) = &args.write_baseline {
        let payload = serde_json::to_string_pretty(&report.stats()).expect("stats serialize");
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", idse_lint::render_text(&report));

    if args.stats {
        print!("{}", report.stats().render_table());
    }

    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
