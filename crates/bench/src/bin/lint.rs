//! `lint` — run the idse-lint workspace static-analysis pass.
//!
//! ```text
//! cargo run -p idse-bench --bin lint                  # human output, exit 1 on errors
//! cargo run -p idse-bench --bin lint -- --jobs 8      # parallel scan, identical bytes
//! cargo run -p idse-bench --bin lint -- --json out.json
//! cargo run -p idse-bench --bin lint -- --sarif lint.sarif
//! cargo run -p idse-bench --bin lint -- --stats       # per-crate rule-hit counts
//! cargo run -p idse-bench --bin lint -- --fix         # dry-run directive cleanup
//! cargo run -p idse-bench --bin lint -- --fix --write # apply it
//! cargo run -p idse-bench --bin lint -- --write-baseline lint-baseline.json
//! cargo run -p idse-bench --bin lint -- --no-cache     # force full re-extraction
//! ```
//!
//! Runs in CI between clippy and the test suite; exits nonzero when any
//! error-severity finding is active. `--jobs N` fans the per-file phase out
//! over N workers (`0` = one per core) and is guaranteed byte-identical to
//! serial for the text, JSON, and SARIF outputs — CI diffs them. `--stats`
//! prints the suppression-debt ledger (per-crate, per-rule
//! error/warning/suppressed counts) so allowlist growth is visible over
//! time; `--write-baseline` snapshots it to the committed
//! `lint-baseline.json`. `--fix` plans mechanical allow-directive cleanup
//! (delete unused, normalize malformed) and only touches files with
//! `--write`. Per-file models are cached content-addressed under
//! `<root>/target/idse-lint-cache/` (override with `--cache-dir DIR`,
//! disable with `--no-cache`): a warm scan re-extracts only changed files
//! and is byte-identical to cold; the wall time and hit/miss counts print
//! to stderr so they never perturb the diffable stdout.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    jobs: Option<usize>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    stats: bool,
    write_baseline: Option<PathBuf>,
    fix: bool,
    write: bool,
    list_rules: bool,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [--root DIR] [--jobs N] [--json FILE|-] [--sarif FILE|-] [--stats]\n\
         \x20           [--fix [--write]] [--write-baseline FILE] [--rules]\n\
         \x20           [--cache-dir DIR] [--no-cache]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: workspace_root(),
        jobs: None,
        json: None,
        sarif: None,
        stats: false,
        write_baseline: None,
        fix: false,
        write: false,
        list_rules: false,
        cache_dir: None,
        no_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.jobs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--json" => args.json = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--sarif" => args.sarif = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--stats" => args.stats = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--fix" => args.fix = true,
            "--write" => args.write = true,
            "--rules" => args.list_rules = true,
            "--cache-dir" => {
                args.cache_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--no-cache" => args.no_cache = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.write && !args.fix {
        eprintln!("lint: --write requires --fix");
        std::process::exit(2);
    }
    args
}

/// The workspace root: walk up from the current directory to the first
/// Cargo.toml containing a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn emit(path: &Path, what: &str, payload: &str) -> Result<(), ExitCode> {
    if path == Path::new("-") {
        println!("{payload}");
        return Ok(());
    }
    std::fs::write(path, payload).map_err(|e| {
        eprintln!("lint: failed to write {what} {}: {e}", path.display());
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list_rules {
        for rule in idse_lint::rules::RuleId::ALL {
            println!("{:<40} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let ws = match idse_lint::load_workspace(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let exec = match args.jobs {
        Some(n) => idse_exec::Executor::new(n),
        None => idse_exec::Executor::serial(),
    };
    // Incremental phase-1 cache, on by default under target/. The cache
    // only changes wall time, never findings; timing goes to stderr so the
    // stdout byte-diff across --jobs values stays clean.
    let cache_dir = match (&args.cache_dir, args.no_cache) {
        (_, true) => None,
        (Some(dir), false) => Some(dir.clone()),
        (None, false) => Some(args.root.join("target").join("idse-lint-cache")),
    };
    let file_cache = cache_dir.and_then(|dir| match idse_lint::cache::Cache::open(&dir) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("lint: cache disabled ({}: {e})", dir.display());
            None
        }
    });
    let started = std::time::Instant::now();
    let (analysis, cache_stats) =
        idse_lint::analyze_full_with_cache(&ws, &exec, file_cache.as_ref());
    eprintln!(
        "lint: analyzed in {} ms ({} cached, {} analyzed)",
        started.elapsed().as_millis(),
        cache_stats.hits,
        cache_stats.misses
    );

    if args.fix {
        let plan = idse_lint::fix::plan(&ws, &analysis);
        if plan.is_empty() {
            println!("lint --fix: nothing to do");
            return ExitCode::SUCCESS;
        }
        print!("{}", plan.render());
        if args.write {
            match idse_lint::fix::apply(&plan, &args.root) {
                Ok(n) => println!("lint --fix: applied {n} edit(s)"),
                Err(e) => {
                    eprintln!("lint: failed to apply fixes: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            println!(
                "lint --fix: {} edit(s) planned (dry run; add --write to apply)",
                plan.edits.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = analysis.report;

    if let Some(path) = &args.json {
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(code) = emit(path, "json", &payload) {
            return code;
        }
    }

    if let Some(path) = &args.sarif {
        let payload = idse_lint::sarif::to_sarif(&report);
        if let Err(code) = emit(path, "sarif", &payload) {
            return code;
        }
    }

    if let Some(path) = &args.write_baseline {
        let payload = serde_json::to_string_pretty(&report.stats()).expect("stats serialize");
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", idse_lint::render_text(&report));

    if args.stats {
        print!("{}", report.stats().render_table());
    }

    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
