//! `lint` — run the idse-lint workspace static-analysis pass.
//!
//! ```text
//! cargo run -p idse-bench --bin lint                  # human output, exit 1 on errors
//! cargo run -p idse-bench --bin lint -- --json out.json
//! cargo run -p idse-bench --bin lint -- --stats       # per-crate rule-hit counts
//! cargo run -p idse-bench --bin lint -- --write-baseline lint-baseline.json
//! ```
//!
//! Runs in CI between clippy and the test suite; exits nonzero when any
//! error-severity finding is active. `--stats` prints the suppression-debt
//! ledger (per-crate, per-rule error/warning/suppressed counts) so
//! allowlist growth is visible over time; `--write-baseline` snapshots it
//! to the committed `lint-baseline.json`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    stats: bool,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [--root DIR] [--json FILE|-] [--stats] [--write-baseline FILE] [--rules]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: workspace_root(),
        json: None,
        stats: false,
        write_baseline: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--json" => args.json = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--stats" => args.stats = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--rules" => args.list_rules = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// The workspace root: walk up from the current directory to the first
/// Cargo.toml containing a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list_rules {
        for rule in idse_lint::rules::RuleId::ALL {
            println!("{:<32} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let report = match idse_lint::run_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        if path == Path::new("-") {
            println!("{payload}");
        } else if let Err(e) = std::fs::write(path, payload) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &args.write_baseline {
        let payload = serde_json::to_string_pretty(&report.stats()).expect("stats serialize");
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!("{}[{}] {}:{}:{} — {}", f.severity, f.rule, f.file, f.line, f.column, f.message);
        if !f.excerpt.is_empty() {
            println!("    | {}", f.excerpt);
        }
    }

    if args.stats {
        print!("{}", report.stats().render_table());
    }

    println!(
        "lint: {} files scanned, {} errors, {} warnings, {} suppressed by allow",
        report.files_scanned,
        report.error_count(),
        report.warning_count(),
        report.suppressed.len()
    );

    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
