//! Experiment X3 — site-profile mismatch (§4 lesson): "Commercial IDSs
//! will often be geared toward [e-commerce traffic] and not perform well
//! in the [high-trust cluster] situation. The best way to evaluate any IDS
//! is to use real traffic … from the site where the IDS is expected to be
//! deployed."

use idse_bench::{cli, outln, table};
use idse_eval::experiments::site_profile_experiment;
use idse_eval::provenance::record_site_profile;
use idse_ids::products::IdsProduct;

const USAGE: &str = "usage: exp_site_profile [--seed N] [--jobs N] [--json PATH] [--out PATH]\n\
                     \x20                       [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    let mut out = cli::Out::new(&common);
    let seed = common.seed_or(0x0b35);
    let exec = common.executor();

    outln!(out, "=== Experiment X3: e-commerce-tuned IDS on cluster traffic ===\n");
    outln!(out, "Both runs replay the SAME real-time cluster test feed; only the");
    outln!(out, "training/tuning traffic differs (matched = cluster, mismatched = e-commerce).\n");

    let products = IdsProduct::all_models();
    let rows = site_profile_experiment(&products, 0.7, seed, &exec);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.product.clone(),
                format!("{:.4}", r.fp_matched),
                format!("{:.4}", r.fp_mismatched),
                format!("{:.2}", r.detection_matched),
                format!("{:.2}", r.detection_mismatched),
            ]
        })
        .collect();
    outln!(
        out,
        "{}",
        table(
            &[
                "Product",
                "FP (matched)",
                "FP (mismatched)",
                "Detect (matched)",
                "Detect (mismatched)"
            ],
            &table_rows
        )
    );
    outln!(out, "Behavior-based products trained on web traffic misread the cluster's binary,");
    outln!(out, "high-trust protocols as anomalous — the false-positive column moves exactly as");
    outln!(out, "the paper's lesson predicts. Signature products barely move: their knowledge");
    outln!(out, "base, not a baseline, decides what fires.");
    out.finish();

    if common.json.is_some() {
        common.write_json(&serde_json::json!({ "seed": seed, "rows": rows }));
    }

    if let Some(spec) = &store {
        cli::report_store_result(spec, record_site_profile(spec, seed, 0.7, &rows));
    }
}
