//! Figure 5 — the weighted score computation `S_j = Σ_i (U_ij · W_ij)`,
//! applied to the four filled scorecards under contrasting weightings.

use idse_bench::{cli, outln, standard_evaluation_with, STANDARD_SEED};
use idse_core::report::{render_comparison, render_ranking};
use idse_core::{RequirementSet, Scorecard, WeightSet};

fn main() {
    let (common, mut out) = cli::shell("usage: figure5 [--seed N] [--jobs N] [--out PATH]");
    common.deny_json("figure5");

    outln!(out, "=== Paper Figure 5: Calculation of weighted scores ===\n");
    outln!(out, "  S = Σ_j=1..3 [ Σ_i=1..n_j ( U_ij · W_ij ) ]");
    outln!(out, "  U_ij: unweighted 0–4 score of metric i in class j");
    outln!(out, "  W_ij: real-valued weight (negative allowed)\n");

    let (_feed, _request, evals) =
        standard_evaluation_with(common.seed_or(STANDARD_SEED), common.jobs);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    let realtime = RequirementSet::realtime_distributed().derive();
    outln!(out, "{}", render_comparison(&cards, &realtime));
    outln!(out, "{}", render_ranking(&cards, &realtime));

    // The same scorecards, re-weighted for a different customer — the
    // methodology's headline feature ("the evaluation may be reused with
    // the metrics given different weighting").
    let ecommerce = RequirementSet::ecommerce_site().derive();
    outln!(out, "--- Same scorecards, e-commerce weighting (no re-testing needed) ---\n");
    outln!(out, "{}", render_ranking(&cards, &ecommerce));

    let uniform = WeightSet::uniform();
    outln!(out, "--- Uniform weighting (no stated requirements) ---\n");
    outln!(out, "{}", render_ranking(&cards, &uniform));
    out.finish();
}
