//! Figure 5 — the weighted score computation `S_j = Σ_i (U_ij · W_ij)`,
//! applied to the four filled scorecards under contrasting weightings.

use idse_bench::standard_evaluation;
use idse_core::report::{render_comparison, render_ranking};
use idse_core::{RequirementSet, Scorecard, WeightSet};

fn main() {
    println!("=== Paper Figure 5: Calculation of weighted scores ===\n");
    println!("  S = Σ_j=1..3 [ Σ_i=1..n_j ( U_ij · W_ij ) ]");
    println!("  U_ij: unweighted 0–4 score of metric i in class j");
    println!("  W_ij: real-valued weight (negative allowed)\n");

    let (_feed, _config, evals) = standard_evaluation();
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    let realtime = RequirementSet::realtime_distributed().derive();
    println!("{}", render_comparison(&cards, &realtime));
    println!("{}", render_ranking(&cards, &realtime));

    // The same scorecards, re-weighted for a different customer — the
    // methodology's headline feature ("the evaluation may be reused with
    // the metrics given different weighting").
    let ecommerce = RequirementSet::ecommerce_site().derive();
    println!("--- Same scorecards, e-commerce weighting (no re-testing needed) ---\n");
    println!("{}", render_ranking(&cards, &ecommerce));

    let uniform = WeightSet::uniform();
    println!("--- Uniform weighting (no stated requirements) ---\n");
    println!("{}", render_ranking(&cards, &uniform));
}
