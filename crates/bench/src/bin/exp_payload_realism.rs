//! Experiment X2 — payload realism (§4 lesson 1): "a simple flooding of
//! the network … with meaningless data is not sufficient … the data portion
//! of an IP packet should have realistic content."

use idse_bench::{cli, outln, table};
use idse_eval::experiments::payload_realism_experiment;
use idse_eval::provenance::{record_payload_realism, PayloadStatsRow};
use idse_ids::products::IdsProduct;
use idse_sim::RngStream;
use idse_traffic::realism::{byte_entropy, printable_fraction, realism_score};

const USAGE: &str = "usage: exp_payload_realism [--seed N] [--jobs N] [--json PATH] [--out PATH]\n\
                     \x20                          [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    let mut out = cli::Out::new(&common);
    let seed = common.seed_or(0x0b35);
    let exec = common.executor();

    outln!(out, "=== Experiment X2: random-byte flood vs realistic-content load ===\n");

    // First show the content statistics that separate the two loads.
    let mut rng = RngStream::derive(seed, "x2-content");
    let real: Vec<Vec<u8>> =
        (0..200).map(|_| idse_traffic::payload::http_request(&mut rng)).collect();
    let rand: Vec<Vec<u8>> =
        real.iter().map(|p| idse_traffic::payload::random_bytes(&mut rng, p.len())).collect();
    let stats = |ps: &[Vec<u8>]| {
        let all: Vec<u8> = ps.iter().flatten().copied().collect();
        (
            byte_entropy(&all),
            printable_fraction(&all),
            realism_score(ps.iter().map(|v| v.as_slice())),
        )
    };
    let (re, rp, rs) = stats(&real);
    let (ne, np, ns) = stats(&rand);
    outln!(
        out,
        "{}",
        table(
            &["Load", "Byte entropy (bits)", "Printable fraction", "Realism score"],
            &[
                vec![
                    "realistic".into(),
                    format!("{re:.2}"),
                    format!("{rp:.2}"),
                    format!("{rs:.2}")
                ],
                vec![
                    "random bytes".into(),
                    format!("{ne:.2}"),
                    format!("{np:.2}"),
                    format!("{ns:.2}")
                ],
            ]
        )
    );

    outln!(out, "IDS behaviour under the two loads (same session timing and sizes):\n");
    let products = IdsProduct::all_models();
    let rows = payload_realism_experiment(&products, 0.8, seed, &exec);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.product.clone(),
                format!("{:.2}", r.alerts_per_kpkt_realistic),
                format!("{:.2}", r.alerts_per_kpkt_random),
                format!("{:.0}", r.cost_realistic),
                format!("{:.0}", r.cost_random),
            ]
        })
        .collect();
    outln!(
        out,
        "{}",
        table(
            &[
                "Product",
                "Alerts/kpkt (realistic)",
                "Alerts/kpkt (random)",
                "ops/pkt (realistic)",
                "ops/pkt (random)"
            ],
            &table_rows
        )
    );
    outln!(out, "A payload-inspecting IDS behaves differently under the two loads — the anomaly");
    outln!(out, "product drowns in alarms under the random flood, while the signature products'");
    outln!(out, "content matches vanish. A random flood therefore measures neither correctly.");
    out.finish();

    if common.json.is_some() {
        common.write_json(&serde_json::json!({ "seed": seed, "rows": rows }));
    }

    if let Some(spec) = &store {
        let stats = [
            PayloadStatsRow {
                load: "realistic".to_owned(),
                byte_entropy: re,
                printable_fraction: rp,
                realism_score: rs,
            },
            PayloadStatsRow {
                load: "random bytes".to_owned(),
                byte_entropy: ne,
                printable_fraction: np,
                realism_score: ns,
            },
        ];
        cli::report_store_result(spec, record_payload_realism(spec, seed, 0.8, &stats, &rows));
    }
}
