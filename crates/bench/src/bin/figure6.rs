//! Figure 6 — requirement-to-metric weight mapping: the paper's schematic
//! example with its exact derived weights, and the full real-time
//! distributed requirement set.

use idse_bench::{cli, outln, table};
use idse_core::catalog::metric_def;
use idse_core::RequirementSet;

fn main() {
    let (common, mut out) = cli::shell("usage: figure6 [--out PATH]");
    common.deny_json("figure6");

    outln!(out, "=== Paper Figure 6: Requirement to Metric Weighting Example ===\n");
    let (set, metrics) = RequirementSet::figure6_example();
    outln!(out, "Requirements (importance-ordered, duplicates allowed):");
    for r in &set.requirements {
        let contributes: Vec<&str> = r.contributes.iter().map(|&m| metric_def(m).name).collect();
        outln!(out, "  {:4} weight {:>4}  -> {}", r.name, r.weight, contributes.join(", "));
    }
    let w = set.derive();
    outln!(out, "\nDerived metric weights (each = sum of contributing requirement weights):");
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|&m| vec![metric_def(m).name.to_owned(), format!("{}", w.get(m))])
        .collect();
    outln!(out, "{}", table(&["Metric", "Weight"], &rows));
    outln!(out, "(The figure's derived weights: 3, 6.5, 5, 0, 0, 8.)\n");

    outln!(out, "=== §3.3 worked requirement set: distributed real-time cluster ===\n");
    let rt = RequirementSet::realtime_distributed();
    for issue in rt.validate() {
        outln!(out, "  WARNING: {issue}");
    }
    for r in &rt.requirements {
        outln!(out, "  [{:>4}] {:26} {}", r.weight, r.name, r.statement);
    }
    let w = rt.derive();
    outln!(out, "\nTop-weighted metrics under this requirement set:");
    let mut weights: Vec<(String, f64)> =
        w.iter().map(|(id, wt)| (metric_def(id).name.to_owned(), wt)).collect();
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let rows: Vec<Vec<String>> =
        weights.iter().take(12).map(|(n, wt)| vec![n.clone(), format!("{wt}")]).collect();
    outln!(out, "{}", table(&["Metric", "Derived weight"], &rows));
    out.finish();
}
