//! Experiment X4 — operating-point selection (§3.3): "Distributed systems
//! … should put emphasis on reducing the false negative ratio to the
//! lowest possible level accepting an increased false positive alert ratio
//! in the process."

use idse_bench::{cli, outln, table};
use idse_eval::experiments::operating_point_experiment;
use idse_eval::provenance::record_operating_point;
use idse_ids::products::{IdsProduct, ProductId};

const USAGE: &str = "usage: exp_operating_point [--seed N] [--jobs N] [--json PATH] [--out PATH]\n\
                     \x20                          [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    let mut out = cli::Out::new(&common);
    let seed = common.seed_or(0x0b35);
    let exec = common.executor();

    outln!(out, "=== Experiment X4: EER vs low-FN operating points on the cluster feed ===\n");
    let mut reports = Vec::new();
    for id in [ProductId::FlowHunter, ProductId::GuardSecure, ProductId::AgentWatch] {
        let report = operating_point_experiment(&IdsProduct::model(id), 0.2, seed, &exec);
        outln!(out, "--- {} ---", report.product);
        let rows: Vec<Vec<String>> = report
            .curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.sensitivity),
                    format!("{:.4}", p.false_positive_ratio),
                    format!("{:.4}", p.false_negative_ratio),
                ]
            })
            .collect();
        outln!(out, "{}", table(&["Sensitivity", "FP ratio", "FN ratio"], &rows));
        match report.eer_point {
            Some((s, r)) => outln!(out, "  EER point: rate {:.4} at sensitivity {:.2}", r, s),
            None => outln!(out, "  EER point: no crossing in range"),
        }
        match report.low_fn_point {
            Some(p) => outln!(
                out,
                "  §3.3 low-FN point (FP budget 0.20): sensitivity {:.2}, FP {:.4}, FN {:.4}",
                p.sensitivity,
                p.false_positive_ratio,
                p.false_negative_ratio
            ),
            None => outln!(out, "  §3.3 low-FN point: no setting within the FP budget"),
        }
        outln!(
            out,
            "  trust-exploit detection: at EER {:?}, at low-FN point {:?}\n",
            report.trust_detection_at_eer,
            report.trust_detection_at_low_fn
        );
        reports.push(report);
    }
    outln!(out, "The hardest case — trust exploitation between cluster hosts — is exactly what");
    outln!(out, "the higher-sensitivity operating point buys: \"it is critical to catch the");
    outln!(out, "initial compromise of the first component host and isolate it\" (§3.3).");
    out.finish();

    if common.json.is_some() {
        common.write_json(&serde_json::json!({ "seed": seed, "reports": reports }));
    }

    if let Some(spec) = &store {
        cli::report_store_result(spec, record_operating_point(spec, seed, 0.2, &reports));
    }
}
