//! Table 1 — Selected Logistical Metrics, with per-product scores.

use idse_bench::{cli, outln, standard_evaluation_with, table, STANDARD_SEED};
use idse_core::catalog::metrics_of_class;
use idse_core::report::render_metric_table;
use idse_core::MetricClass;
use idse_eval::record_evaluation;

const USAGE: &str = "usage: table1 [--seed N] [--jobs N] [--out PATH]\n\
                     \x20             [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    common.deny_json("table1");
    let mut out = cli::Out::new(&common);

    outln!(out, "=== Paper Table 1: Selected Logistical Metrics ===\n");
    outln!(out, "{}", render_metric_table(MetricClass::Logistical, true));
    outln!(out, "--- Metrics defined but not shown in the paper's table ---\n");
    let named: Vec<String> = metrics_of_class(MetricClass::Logistical)
        .into_iter()
        .filter(|m| !m.in_paper_table)
        .map(|m| m.name.to_owned())
        .collect();
    outln!(out, "{}\n", named.join(", "));

    outln!(out, "=== Scores (prototype scorecard applied to the four simulated products) ===\n");
    let (feed, request, evals) =
        standard_evaluation_with(common.seed_or(STANDARD_SEED), common.jobs);
    let metrics = metrics_of_class(MetricClass::Logistical);
    let mut headers: Vec<&str> = vec!["Metric"];
    let names: Vec<String> = evals.iter().map(|e| e.scorecard.system.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            let mut row = vec![m.name.to_owned()];
            for e in &evals {
                row.push(
                    e.scorecard
                        .get(m.id)
                        .map(|s| s.value().to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    outln!(out, "{}", table(&headers, &rows));

    outln!(out, "\nObservation notes (scoring provenance):");
    for m in &metrics {
        if let Some(note) = evals[0].scorecard.note(m.id) {
            outln!(out, "  {:28} {}", m.name, note);
        }
    }
    out.finish();

    if let Some(spec) = &store {
        let spec = spec.clone().with_profile(feed.profile.name.clone());
        cli::report_store_result(&spec, record_evaluation(&spec, &request, &evals));
    }
}
