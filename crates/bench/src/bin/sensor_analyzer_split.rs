//! Ablation — combined vs separated sensing/analysis (§2.2): "Separating
//! sensing from analysis may allow better throughput by offloading the
//! analysis burden, but separation adds network overhead."

use idse_bench::{cli, outln, standard_setup_with, table, STANDARD_SEED};
use idse_eval::throughput::throughput_search;
use idse_eval::timing::timing_report;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;

fn main() {
    let (common, mut out) =
        cli::shell("usage: sensor_analyzer_split [--seed N] [--jobs N] [--out PATH]");
    common.deny_json("sensor_analyzer_split");

    outln!(out, "=== Ablation: combined vs separated sensor/analyzer (§2.2) ===\n");
    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);

    // An alert-storm hot run: hundreds of distinct scanning sources, each
    // tripping its own anomaly alert, so analysis work genuinely contends
    // with sensing (per-source cooldowns make one big attack cheap to
    // analyze — many small ones are the expensive case).
    use idse_attacks::scan::PortScan;
    use idse_attacks::Scenario;
    let mut storm = feed.test.time_scaled(2000.0).repeated(2);
    let mut rng = idse_sim::RngStream::derive(0xab1e, "storm");
    for k in 0..600u32 {
        let attacker = std::net::Ipv4Addr::new(67, (k / 250) as u8 + 1, (k % 250) as u8 + 1, 7);
        let scan = PortScan {
            attacker,
            target: feed.servers[(k as usize) % feed.servers.len()],
            first_port: 1,
            port_count: 40,
            rate: 4000.0,
        };
        let start = idse_sim::SimTime::from_millis(rng.uniform_u64(0, 50));
        storm.merge(scan.generate(start, 1000 + k, &mut rng));
    }
    let hot = storm;
    let variants = [("separated (M:M)", false), ("combined (1:1)", true)];
    let exec = request.executor();
    let rows = exec.par_map(&variants, |_, (label, combined)| {
        let mut product = IdsProduct::model(ProductId::FlowHunter);
        product.architecture.combined_sensor_analyzer = *combined;
        let tp = throughput_search(&product, &feed, request.max_throughput_factor);
        let run_config = RunConfig {
            sensitivity: Sensitivity::new(0.8),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let out =
            PipelineRunner::new(product, run_config).with_training(feed.training.clone()).run(&hot);
        let timing = timing_report(&hot, &out);
        vec![
            (*label).to_owned(),
            format!("{:.0}", tp.zero_loss_pps),
            format!("{:.4}", out.loss_ratio()),
            format!("{}", timing.timeliness_mean),
            out.alerts.len().to_string(),
        ]
    });
    outln!(
        out,
        "{}",
        table(
            &["Configuration", "Zero-loss pps", "Loss (hot)", "Timeliness mean", "Alerts (hot)"],
            &rows
        )
    );
    outln!(out, "\nCombining analysis onto the sensor steals sensing capacity exactly when");
    outln!(out, "alerts surge (the hot column); the separated tier keeps the sensor's");
    outln!(out, "headroom at the price of the extra analyzer hop (§2.2's trade).");
    out.finish();
}
