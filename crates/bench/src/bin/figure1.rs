//! Figure 1 — the generalized network IDS architecture, instantiated per
//! product, with per-stage packet counts from a short run.

use idse_bench::{cli, outln, standard_setup_with, STANDARD_SEED};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;

fn main() {
    let (common, mut out) = cli::shell("usage: figure1 [--seed N] [--jobs N] [--out PATH]");
    common.deny_json("figure1");

    outln!(out, "=== Paper Figure 1: Generalized network IDS architecture ===\n");
    outln!(
        out,
        r#"  Internet --- Border Router --- [Load Balancer] --+-- Sensor --+
                                  (1c)             +-- Sensor --+--> Analyzer(s) --> Monitoring
                                                   +-- Sensor --+         |            Console
                                                   +-- Sensor --+         v              |
                                                              Management Console <-------+
                                                              (traffic control / response)
"#
    );
    outln!(out, "Subprocesses: 1. load balancing (optional)  2. sensing  3. analyzing");
    outln!(out, "              4. monitoring  5. managing (optional)\n");

    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);
    let exec = request.executor();
    let products = IdsProduct::all_models();
    let walks = exec.par_map(&products, |_, product| {
        let run_config = RunConfig {
            sensitivity: Sensitivity::new(0.6),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        PipelineRunner::new(product.clone(), run_config)
            .with_training(feed.training.clone())
            .run(&feed.test)
    });
    for (product, walk) in products.iter().zip(&walks) {
        let arch = &product.architecture;
        outln!(out, "--- {} ---", product.id.name());
        outln!(
            out,
            "  tap {:?} | balance {:?} | sensors {} | analyzers {}{} | console {}",
            arch.tap,
            arch.balance,
            arch.sensors,
            arch.analyzers,
            if arch.combined_sensor_analyzer { " (combined with sensors)" } else { "" },
            if arch.response.firewall || arch.response.router || arch.response.snmp {
                "yes"
            } else {
                "no"
            }
        );
        if let Some(lb) = walk.lb_counters {
            outln!(
                out,
                "  load balancer: offered {} processed {} dropped {}",
                lb.offered,
                lb.processed,
                lb.dropped
            );
        }
        for (i, s) in walk.sensor_counters.iter().enumerate() {
            outln!(
                out,
                "  sensor[{i}]: offered {} processed {} dropped {}",
                s.offered,
                s.processed,
                s.dropped
            );
        }
        for (i, a) in walk.analyzer_counters.iter().enumerate() {
            if a.offered > 0 {
                outln!(
                    out,
                    "  analyzer[{i}]: offered {} processed {} dropped {}",
                    a.offered,
                    a.processed,
                    a.dropped
                );
            }
        }
        outln!(
            out,
            "  monitor: {} alerts surfaced | monitored {}/{} in-scope packets\n",
            walk.alerts.len(),
            walk.monitored,
            walk.offered
        );
    }
    out.finish();
}
