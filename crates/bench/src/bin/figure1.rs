//! Figure 1 — the generalized network IDS architecture, instantiated per
//! product, with per-stage packet counts from a short run.

use idse_bench::standard_setup;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;

fn main() {
    println!("=== Paper Figure 1: Generalized network IDS architecture ===\n");
    println!(
        r#"  Internet --- Border Router --- [Load Balancer] --+-- Sensor --+
                                  (1c)             +-- Sensor --+--> Analyzer(s) --> Monitoring
                                                   +-- Sensor --+         |            Console
                                                   +-- Sensor --+         v              |
                                                              Management Console <-------+
                                                              (traffic control / response)
"#
    );
    println!("Subprocesses: 1. load balancing (optional)  2. sensing  3. analyzing");
    println!("              4. monitoring  5. managing (optional)\n");

    let (feed, _config) = standard_setup();
    for product in IdsProduct::all_models() {
        let arch = &product.architecture;
        println!("--- {} ---", product.id.name());
        println!(
            "  tap {:?} | balance {:?} | sensors {} | analyzers {}{} | console {}",
            arch.tap,
            arch.balance,
            arch.sensors,
            arch.analyzers,
            if arch.combined_sensor_analyzer { " (combined with sensors)" } else { "" },
            if arch.response.firewall || arch.response.router || arch.response.snmp {
                "yes"
            } else {
                "no"
            }
        );
        let run_config = RunConfig {
            sensitivity: Sensitivity::new(0.6),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let out = PipelineRunner::new(product.clone(), run_config)
            .with_training(feed.training.clone())
            .run(&feed.test);
        if let Some(lb) = out.lb_counters {
            println!(
                "  load balancer: offered {} processed {} dropped {}",
                lb.offered, lb.processed, lb.dropped
            );
        }
        for (i, s) in out.sensor_counters.iter().enumerate() {
            println!(
                "  sensor[{i}]: offered {} processed {} dropped {}",
                s.offered, s.processed, s.dropped
            );
        }
        for (i, a) in out.analyzer_counters.iter().enumerate() {
            if a.offered > 0 {
                println!(
                    "  analyzer[{i}]: offered {} processed {} dropped {}",
                    a.offered, a.processed, a.dropped
                );
            }
        }
        println!(
            "  monitor: {} alerts surfaced | monitored {}/{} in-scope packets\n",
            out.alerts.len(),
            out.monitored,
            out.offered
        );
    }
}
