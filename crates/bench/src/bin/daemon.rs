//! The continuous evaluation service CLI.
//!
//! Three modes over the same line-delimited JSON protocol:
//!
//! * `serve`  — run the live daemon on a Unix-domain socket.
//! * `replay` — run a protocol script with no socket: same state
//!   machine, deterministic output (the CI/test surface).
//! * `client` — send requests to a live daemon and print the responses
//!   (waits for the socket to appear, so CI can start both at once).

use idse_bench::cli;
use idse_daemon::{replay, DaemonConfig, DaemonCore};

const USAGE: &str = "usage: daemon serve  --socket PATH [--queue N] [--journal PATH]\n\
                     \x20      daemon replay SCRIPT.jsonl [--queue N] [--journal PATH]\n\
                     \x20      daemon client --socket PATH REQUEST-JSON [REQUEST-JSON ...]\n\
                     \n\
                     \x20 --queue N     queued+running jobs admitted at once (default 4)\n\
                     \x20 --journal P   crash-safe job journal (resume queued work on restart)\n\
                     \x20 --jobs N      worker threads per evaluation (shared flag)";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let socket = args.opt("--socket");
    let queue: usize = args.opt_parsed("--queue").unwrap_or(4);
    let journal = args.opt("--journal");
    // Shared value-taking flags must come off before the positionals —
    // a flag's value would otherwise be claimed as an operand.
    let jobs: Option<usize> = args.opt_parsed("--jobs");
    let out_path = args.opt("--out");
    let command = args.positional();
    let operands: Vec<String> = std::iter::from_fn(|| args.positional()).collect();
    let mut common = args.finish();
    if let Some(jobs) = jobs {
        common.jobs = jobs;
    }
    common.out = out_path;
    common.deny_json("daemon");

    let mut config = DaemonConfig::default().with_queue_capacity(queue).with_jobs(common.jobs);
    if let Some(path) = &journal {
        config = config.with_journal(path);
    }

    match command.as_deref() {
        Some("serve") => serve(config, socket),
        Some("replay") => run_replay(config, &common, &operands),
        Some("client") => client(socket, &operands),
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n{USAGE}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn open_core(config: DaemonConfig) -> DaemonCore {
    match DaemonCore::new(config) {
        Ok(core) => core,
        Err(e) => {
            eprintln!("error: opening daemon state: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(unix)]
fn serve(config: DaemonConfig, socket: Option<String>) {
    let Some(socket) = socket else {
        eprintln!("error: serve requires --socket PATH");
        std::process::exit(2);
    };
    let core = open_core(config);
    eprintln!("daemon: listening on {socket}");
    if let Err(e) = idse_daemon::server::serve(core, std::path::Path::new(&socket)) {
        eprintln!("error: daemon terminated: {e}");
        std::process::exit(1);
    }
    eprintln!("daemon: shut down cleanly");
}

#[cfg(not(unix))]
fn serve(_config: DaemonConfig, _socket: Option<String>) {
    eprintln!("error: the live daemon needs Unix-domain sockets; use `daemon replay`");
    std::process::exit(2);
}

fn run_replay(config: DaemonConfig, common: &cli::Common, operands: &[String]) {
    let [script] = operands else {
        eprintln!("error: replay requires exactly one SCRIPT.jsonl path");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(script) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: reading {script:?}: {e}");
            std::process::exit(1);
        }
    };
    let mut core = open_core(config);
    let lines = match replay(&mut core, &text) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("error: replay journal failure: {e}");
            std::process::exit(1);
        }
    };
    let mut out = cli::Out::new(common);
    for line in &lines {
        idse_bench::outln!(out, "{line}");
    }
    out.finish();
}

#[cfg(unix)]
fn client(socket: Option<String>, operands: &[String]) {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let Some(socket) = socket else {
        eprintln!("error: client requires --socket PATH");
        std::process::exit(2);
    };
    if operands.is_empty() {
        eprintln!("error: client requires at least one REQUEST-JSON operand");
        std::process::exit(2);
    }
    let mut all_ok = true;
    for request in operands {
        // One request per connection: send, half-close, stream responses
        // to EOF. Waits up to ~10s for the daemon socket to appear.
        let mut stream = None;
        for _ in 0..5000 {
            match UnixStream::connect(&socket) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => idse_exec::breathe(),
            }
        }
        let Some(mut stream) = stream else {
            eprintln!("error: could not connect to {socket}");
            std::process::exit(1);
        };
        if let Err(e) =
            writeln!(stream, "{request}").and_then(|()| stream.shutdown(std::net::Shutdown::Write))
        {
            eprintln!("error: sending request: {e}");
            std::process::exit(1);
        }
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(line) => {
                    if line.contains("\"ok\":false") {
                        all_ok = false;
                    }
                    println!("{line}");
                }
                Err(e) => {
                    eprintln!("error: reading response: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn client(_socket: Option<String>, _operands: &[String]) {
    eprintln!("error: the daemon client needs Unix-domain sockets");
    std::process::exit(2);
}
