//! Query CLI over the provenance-keyed run store (`idse-store`).
//!
//! ```text
//! store [--dir DIR] list
//! store [--dir DIR] show <run>
//! store [--dir DIR] history <metric> [--product P] [--sparkline]
//! store [--dir DIR] diff <run-A> <run-B> [--fail-on-regression]
//! store [--dir DIR] top-regressions <run-A> <run-B> [-n K]
//! store [--dir DIR] bench-import <file> [--stamp S]
//! store [--dir DIR] bench-export <run>
//! ```
//!
//! Run references are full ids, unique id prefixes, or file paths.
//! `diff` compares two runs metric-by-metric with the registry's
//! direction supplying the regression sign; `--fail-on-regression`
//! turns any REGRESSED verdict into exit code 1, which is the CI gate.
//! `bench-import` folds a `BENCH_*.json` report into a `bench`-context
//! run; `bench-export` regenerates the report from the stored run, so
//! the committed benchmark files are products of the store.

use idse_bench::{cli, outln, table};
use idse_store::{diff_runs, RunDraft, RunStore, StoreError, StoredRun, Verdict};
use serde_json::Value;

const USAGE: &str = "usage: store [--dir DIR] <command> [args]\n\
                     \x20 list                                        all stored runs\n\
                     \x20 show <run>                                  one run in full\n\
                     \x20 history <metric> [--product P] [--sparkline] a metric across runs\n\
                     \x20 diff <run-A> <run-B> [--fail-on-regression] direction-aware scorecard diff\n\
                     \x20 top-regressions <run-A> <run-B> [-n K]      worst regressions by severity\n\
                     \x20 bench-import <file> [--stamp S]             fold a BENCH_*.json into the store\n\
                     \x20 bench-export <run>                          regenerate BENCH JSON from a run";

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn need(arg: Option<String>, what: &str) -> String {
    arg.unwrap_or_else(|| {
        eprintln!("error: missing {what} (try --help)");
        std::process::exit(2);
    })
}

fn resolve(store: &RunStore, run_ref: &str) -> StoredRun {
    store.resolve(run_ref).unwrap_or_else(|e| fail(e))
}

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let dir = args.opt("--dir").unwrap_or_else(|| "runs".to_owned());
    let product = args.opt("--product");
    let stamp = args.opt("--stamp");
    let fail_on_regression = args.flag("--fail-on-regression");
    let spark = args.flag("--sparkline");
    let top_n: usize = args.opt_parsed("-n").unwrap_or(10);
    // Shared value-taking flags must come off before the positionals —
    // a flag's value would otherwise be claimed as an operand.
    let out_path = args.opt("--out");
    let json_path = args.opt("--json");
    let command = need(args.positional(), "a command");
    let operands: Vec<String> = std::iter::from_fn(|| args.positional()).collect();
    let mut common = args.finish();
    common.out = out_path;
    common.json = json_path;
    common.deny_json("store");
    let mut out = cli::Out::new(&common);

    let store = RunStore::open(&dir).unwrap_or_else(|e| fail(e));
    let mut exit_code = 0;

    match command.as_str() {
        "list" => {
            let runs = store.list().unwrap_or_else(|e| fail(e));
            let rows: Vec<Vec<String>> = runs
                .iter()
                .map(|r| {
                    vec![
                        r.header.run_id.clone(),
                        r.header.context.clone(),
                        r.header.stamp.clone().unwrap_or_else(|| "-".to_owned()),
                        r.header.products.len().to_string(),
                        r.header.records.to_string(),
                    ]
                })
                .collect();
            outln!(out, "{}", table(&["Run", "Context", "Stamp", "Products", "Records"], &rows));
            outln!(out, "{} runs in {}", runs.len(), store.dir().display());
        }
        "show" => {
            let run = resolve(&store, &need(operands.first().cloned(), "a run reference"));
            outln!(out, "run      {}", run.header.run_id);
            outln!(out, "context  {}", run.header.context);
            outln!(out, "catalog  {}", run.header.catalog_version);
            outln!(out, "stamp    {}", run.header.stamp.as_deref().unwrap_or("-"));
            outln!(out, "file     {}", run.path.display());
            outln!(
                out,
                "provenance:\n{}",
                serde_json::to_string_pretty(&run.header.provenance)
                    .expect("stored provenance re-serializes")
            );
            if let Some(telemetry) = &run.header.telemetry {
                outln!(
                    out,
                    "telemetry:\n{}",
                    serde_json::to_string_pretty(telemetry)
                        .expect("stored telemetry re-serializes")
                );
            }
            let rows: Vec<Vec<String>> = run
                .metrics
                .iter()
                .map(|m| {
                    vec![
                        m.product.clone(),
                        m.metric.clone(),
                        format!("{:?}", m.value),
                        m.unit.clone(),
                        m.note.clone().unwrap_or_default(),
                    ]
                })
                .collect();
            outln!(out, "{}", table(&["Product", "Metric", "Value", "Unit", "Note"], &rows));
            outln!(
                out,
                "{} records across {} products",
                run.header.records,
                run.header.products.len()
            );
        }
        "history" => {
            let metric = need(operands.first().cloned(), "a metric key");
            let points = store.history(&metric, product.as_deref()).unwrap_or_else(|e| fail(e));
            if spark {
                // Shape view: one bar per stored run, oldest on the left,
                // grouped per product — trend at a glance instead of a
                // table of floats.
                for line in idse_store::history_sparklines(&points) {
                    outln!(out, "{line}");
                }
            } else {
                let rows: Vec<Vec<String>> = points
                    .iter()
                    .map(|p| {
                        vec![
                            p.run_id.clone(),
                            p.context.clone(),
                            p.stamp.clone().unwrap_or_else(|| "-".to_owned()),
                            p.product.clone(),
                            format!("{:?}", p.value),
                            p.unit.clone(),
                        ]
                    })
                    .collect();
                outln!(
                    out,
                    "{}",
                    table(&["Run", "Context", "Stamp", "Product", "Value", "Unit"], &rows)
                );
            }
            outln!(out, "{} points for {}", points.len(), metric);
        }
        "diff" => {
            let a = resolve(&store, &need(operands.first().cloned(), "run-A"));
            let b = resolve(&store, &need(operands.get(1).cloned(), "run-B"));
            let diff = diff_runs(&a, &b);
            outln!(out, "diff {} -> {}", diff.run_a, diff.run_b);
            for entry in diff.entries.iter().filter(|e| e.verdict != Verdict::Unchanged) {
                outln!(out, "{}", entry.render());
            }
            outln!(out, "{}", diff.summary());
            if fail_on_regression && diff.has_regressions() {
                exit_code = 1;
            }
        }
        "top-regressions" => {
            let a = resolve(&store, &need(operands.first().cloned(), "run-A"));
            let b = resolve(&store, &need(operands.get(1).cloned(), "run-B"));
            let diff = diff_runs(&a, &b);
            outln!(out, "top {} regressions, {} -> {}", top_n, diff.run_a, diff.run_b);
            for entry in diff.top_regressions(top_n) {
                outln!(out, "severity {:.4}  {}", entry.severity, entry.render());
            }
            outln!(out, "{}", diff.summary());
        }
        "bench-import" => {
            let file = need(operands.first().cloned(), "a BENCH_*.json path");
            let run = bench_import(&store, &file, stamp).unwrap_or_else(|e| fail(e));
            outln!(
                out,
                "{} run {} ({} records) in {}",
                if run.created { "recorded" } else { "matched existing" },
                run.header.run_id,
                run.header.records,
                store.dir().display()
            );
        }
        "bench-export" => {
            let run = resolve(&store, &need(operands.first().cloned(), "a run reference"));
            let report = bench_export(&run).unwrap_or_else(|e| fail(e));
            outln!(out, "{}", serde_json::to_string_pretty(&report).expect("report serializes"));
        }
        other => {
            eprintln!("error: unknown command {other:?} (try --help)");
            std::process::exit(2);
        }
    }

    out.finish();
    std::process::exit(exit_code);
}

/// Fold one `BENCH_*.json` report into a `bench`-context run: the
/// `runs` array becomes per-`jobs=N` wall-time/worker records (its
/// original order preserved as `runs_order` in the provenance), a
/// `speedup` field becomes an `overall` record, `lint_cold_ms` /
/// `lint_warm_ms` become `lint` records (staying in provenance so the
/// export round-trips), and every other field rides along as provenance.
fn bench_import(
    store: &RunStore,
    file: &str,
    stamp: Option<String>,
) -> Result<StoredRun, StoreError> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| StoreError::Io { path: file.to_owned(), source: e })?;
    let report: Value = serde_json::from_str(&text).map_err(|e| StoreError::Parse {
        at: file.to_owned(),
        message: format!("not valid JSON: {e}"),
    })?;
    let bad =
        |message: &str| StoreError::Parse { at: file.to_owned(), message: message.to_owned() };
    let Value::Object(pairs) = &report else {
        return Err(bad("a BENCH report is a JSON object"));
    };
    let mut provenance = Vec::new();
    let mut draft_metrics: Vec<(String, &'static str, f64)> = Vec::new();
    for (key, value) in pairs {
        match key.as_str() {
            "runs" => {
                let runs = value.as_array().ok_or_else(|| bad("\"runs\" must be an array"))?;
                let mut order = Vec::new();
                for entry in runs {
                    let jobs = entry
                        .get("jobs")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("each run needs an integer \"jobs\""))?;
                    let workers = entry
                        .get("workers")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("each run needs an integer \"workers\""))?;
                    let wall_ms = entry
                        .get("wall_ms")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| bad("each run needs a numeric \"wall_ms\""))?;
                    let product = format!("jobs={jobs}");
                    draft_metrics.push((product.clone(), "bench.wall_ms", wall_ms));
                    draft_metrics.push((product, "bench.workers", workers as f64));
                    order.push(Value::U64(jobs));
                }
                provenance.push(("runs_order".to_owned(), Value::Array(order)));
            }
            "speedup" => {
                let speedup = value.as_f64().ok_or_else(|| bad("\"speedup\" must be numeric"))?;
                draft_metrics.push(("overall".to_owned(), "bench.speedup", speedup));
            }
            // Lint-cache wall times double as records (so `store diff`
            // sees them) and stay in provenance verbatim (so the export
            // reproduces the report byte-for-byte).
            "lint_cold_ms" | "lint_warm_ms" => {
                let wall = value.as_f64().ok_or_else(|| bad("lint wall times must be numeric"))?;
                let metric =
                    if key == "lint_cold_ms" { "bench.lint_cold_ms" } else { "bench.lint_warm_ms" };
                draft_metrics.push(("lint".to_owned(), metric, wall));
                provenance.push((key.clone(), value.clone()));
            }
            // Hot-path throughputs (BENCH_hotpath.json): `hotpath`
            // records for `store diff`, provenance for the round-trip.
            "engine_mb_s" | "sim_events_s" => {
                let rate = value.as_f64().ok_or_else(|| bad("throughputs must be numeric"))?;
                let metric =
                    if key == "engine_mb_s" { "bench.engine_mb_s" } else { "bench.sim_events_s" };
                draft_metrics.push(("hotpath".to_owned(), metric, rate));
                provenance.push((key.clone(), value.clone()));
            }
            _ => provenance.push((key.clone(), value.clone())),
        }
    }
    let mut draft = RunDraft::new("bench", Value::Object(provenance)).with_stamp(stamp);
    for (product, metric, value) in &draft_metrics {
        draft.record(product, metric, *value)?;
    }
    store.commit(draft)
}

/// Invert [`bench_import`]: rebuild the BENCH report from a stored
/// `bench` run, byte-stable — field order follows the provenance, with
/// `runs` re-inflated in `runs_order` position and `speedup` (when an
/// `overall` record exists) directly after it.
fn bench_export(run: &StoredRun) -> Result<Value, StoreError> {
    let bad = |message: String| StoreError::Parse { at: run.header.run_id.clone(), message };
    if run.header.context != "bench" {
        return Err(bad(format!("run has context {:?}, not \"bench\"", run.header.context)));
    }
    let Value::Object(provenance) = &run.header.provenance else {
        return Err(bad("bench provenance is not an object".to_owned()));
    };
    // Integral wall times re-render as the integers they were imported
    // from; fractional values (and the speedup) stay floats.
    let renumber = |v: f64| {
        // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel: only a bit-exact integral value re-renders as the integer it was imported from")
        if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Value::U64(v as u64)
        } else {
            Value::F64(v)
        }
    };
    let mut report = Vec::new();
    for (key, value) in provenance {
        if key != "runs_order" {
            report.push((key.clone(), value.clone()));
            continue;
        }
        let order = value.as_array().ok_or_else(|| bad("runs_order is not an array".to_owned()))?;
        let mut runs = Vec::new();
        for jobs in order {
            let jobs =
                jobs.as_u64().ok_or_else(|| bad("runs_order holds non-integers".to_owned()))?;
            let product = format!("jobs={jobs}");
            let wall = run
                .get(&product, "bench.wall_ms")
                .ok_or_else(|| bad(format!("no bench.wall_ms record for {product}")))?;
            let workers = run
                .get(&product, "bench.workers")
                .ok_or_else(|| bad(format!("no bench.workers record for {product}")))?;
            runs.push(Value::Object(vec![
                ("jobs".to_owned(), Value::U64(jobs)),
                ("workers".to_owned(), renumber(workers.value)),
                ("wall_ms".to_owned(), renumber(wall.value)),
            ]));
        }
        report.push(("runs".to_owned(), Value::Array(runs)));
        if let Some(speedup) = run.get("overall", "bench.speedup") {
            report.push(("speedup".to_owned(), Value::F64(speedup.value)));
        }
    }
    Ok(Value::Object(report))
}
