//! Figure 3 — False Positive (Type I) and False Negative (Type II) errors:
//! the confusion quantities and the paper's ratio formulas, per product.

use idse_bench::{standard_evaluation, table};

fn main() {
    println!("=== Paper Figure 3: FP (Type I) / FN (Type II) errors ===\n");
    println!("  Transactions (T) ⊇ Actual Intrusions (A), IDS Detections (D)");
    println!("  False Positive Ratio = |D - A| / |T|");
    println!("  False Negative Ratio = |A - D| / |T|\n");

    let (_feed, _config, evals) = standard_evaluation();
    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            let c = &e.confusion;
            vec![
                e.scorecard.system.clone(),
                c.transactions.to_string(),
                c.actual_attacks.to_string(),
                c.detected_attacks.to_string(),
                c.false_positives.to_string(),
                c.missed_attacks.len().to_string(),
                format!("{:.4}", c.false_positive_ratio()),
                format!("{:.4}", c.false_negative_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["Product", "|T|", "|A|", "|A∩D|", "|D-A|", "|A-D|", "FP ratio", "FN ratio"], &rows)
    );

    println!("\nMissed attack instances (A - D), the Type II region:");
    for e in &evals {
        let missed: Vec<String> = e
            .confusion
            .missed_attacks
            .iter()
            .map(|(id, class)| format!("#{id}:{}", class.name()))
            .collect();
        println!(
            "  {:20} {}",
            e.scorecard.system,
            if missed.is_empty() { "(none)".to_owned() } else { missed.join(", ") }
        );
    }
}
