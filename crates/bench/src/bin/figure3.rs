//! Figure 3 — False Positive (Type I) and False Negative (Type II) errors:
//! the confusion quantities and the paper's ratio formulas, per product.

use idse_bench::{cli, outln, standard_evaluation_with, table, STANDARD_SEED};

fn main() {
    let (common, mut out) = cli::shell("usage: figure3 [--seed N] [--jobs N] [--out PATH]");
    common.deny_json("figure3");

    outln!(out, "=== Paper Figure 3: FP (Type I) / FN (Type II) errors ===\n");
    outln!(out, "  Transactions (T) ⊇ Actual Intrusions (A), IDS Detections (D)");
    outln!(out, "  False Positive Ratio = |D - A| / |T|");
    outln!(out, "  False Negative Ratio = |A - D| / |T|\n");

    let (_feed, _request, evals) =
        standard_evaluation_with(common.seed_or(STANDARD_SEED), common.jobs);
    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            let c = &e.confusion;
            vec![
                e.scorecard.system.clone(),
                c.transactions.to_string(),
                c.actual_attacks.to_string(),
                c.detected_attacks.to_string(),
                c.false_positives.to_string(),
                c.missed_attacks.len().to_string(),
                format!("{:.4}", c.false_positive_ratio()),
                format!("{:.4}", c.false_negative_ratio()),
            ]
        })
        .collect();
    outln!(
        out,
        "{}",
        table(&["Product", "|T|", "|A|", "|A∩D|", "|D-A|", "|A-D|", "FP ratio", "FN ratio"], &rows)
    );

    outln!(out, "\nMissed attack instances (A - D), the Type II region:");
    for e in &evals {
        let missed: Vec<String> = e
            .confusion
            .missed_attacks
            .iter()
            .map(|(id, class)| format!("#{id}:{}", class.name()))
            .collect();
        outln!(
            out,
            "  {:20} {}",
            e.scorecard.system,
            if missed.is_empty() { "(none)".to_owned() } else { missed.join(", ") }
        );
    }
    out.finish();
}
