//! §2.1 taxonomy ablation — "An IDS may be categorized by its detection
//! mechanism: anomaly-based, signature-based, or hybrid. … many of the
//! research endeavors have implemented a hybrid design."
//!
//! Same architecture (the distributed 4-sensor deployment), three engine
//! suites: signature-only, anomaly-only, and the parallel hybrid. The
//! hybrid unions the detection coverage and pays for it in per-packet
//! inspection cost — measurably lower zero-loss throughput.
//!
//! With `--store DIR` the three mechanism rows are committed to the
//! provenance-keyed run store, one product key per mechanism, so
//! `store history measure.zero_loss_pps --product "hybrid (parallel)"`
//! tracks the hybrid's inspection cost across commits.

use idse_bench::{cli, outln, standard_setup_with, table, STANDARD_SEED};
use idse_eval::confusion::TransactionLedger;
use idse_eval::provenance::{record_hybrid_taxonomy, HybridTaxonomyRow, StoreSpec};
use idse_eval::throughput::throughput_search;
use idse_ids::engine::anomaly::AnomalyConfig;
use idse_ids::engine::signature::SignatureConfig;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{EngineSuite, IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_net::trace::AttackClass;

fn variant(engines: EngineSuite) -> IdsProduct {
    let mut p = IdsProduct::model(ProductId::FlowHunter);
    p.engines = engines;
    p
}

const USAGE: &str = "usage: exp_hybrid_taxonomy [--seed N] [--jobs N] [--out PATH]\n\
                     \x20                          [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store_dir = args.opt("--store");
    let stamp = args.opt("--stamp");
    let git_rev = args.opt("--git-rev");
    let common = args.finish();
    common.deny_json("exp_hybrid_taxonomy");
    let mut out = cli::Out::new(&common);

    outln!(out, "=== §2.1 taxonomy: signature vs anomaly vs parallel hybrid ===\n");
    outln!(out, "Identical architecture (4 load-balanced sensors); only the detection");
    outln!(out, "mechanism differs. Sensitivity 0.8, cluster feed.\n");
    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);
    let ledger = TransactionLedger::of(&feed.test);

    let suites = [
        (
            "signature-only",
            EngineSuite {
                signature: Some(SignatureConfig::default()),
                anomaly: None,
                host_agents: false,
            },
        ),
        (
            "anomaly-only",
            EngineSuite {
                signature: None,
                anomaly: Some(AnomalyConfig::default()),
                host_agents: false,
            },
        ),
        (
            "hybrid (parallel)",
            EngineSuite {
                signature: Some(SignatureConfig::default()),
                anomaly: Some(AnomalyConfig::default()),
                host_agents: false,
            },
        ),
    ];

    let exec = request.executor();
    let probes = exec.par_map(&suites, |_, (_, engines)| {
        let product = variant(engines.clone());
        let out = PipelineRunner::new(
            product.clone(),
            RunConfig {
                sensitivity: Sensitivity::new(0.8),
                monitored_hosts: feed.servers.clone(),
                ..RunConfig::default()
            },
        )
        .with_training(feed.training.clone())
        .run(&feed.test);
        let c = ledger.score(&out.alerts);
        let tp = throughput_search(&product, &feed, request.max_throughput_factor);
        (c, tp)
    });

    let mut rows = Vec::new();
    let mut class_rows: Vec<Vec<String>> =
        AttackClass::ALL.iter().map(|c| vec![c.name().to_owned()]).collect();
    for ((label, _), (c, tp)) in suites.iter().zip(&probes) {
        rows.push(vec![
            (*label).to_owned(),
            format!("{:.2}", c.detection_rate()),
            format!("{:.4}", c.false_positive_ratio()),
            format!("{:.0}", tp.zero_loss_pps),
            c.alert_count.to_string(),
        ]);
        for (row, class) in class_rows.iter_mut().zip(AttackClass::ALL.iter()) {
            row.push(match c.class_detection_rate(*class) {
                Some(r) => format!("{r:.2}"),
                None => "-".into(),
            });
        }
    }

    outln!(
        out,
        "{}",
        table(&["Mechanism", "Detection", "FP ratio", "Zero-loss pps", "Alerts"], &rows)
    );
    outln!(out, "Per-class detection rates:\n");
    outln!(out, "{}", table(&["Class", "signature", "anomaly", "hybrid"], &class_rows));
    outln!(out, "The hybrid unions the two coverage sets (the signature engine's known");
    outln!(out, "exploits + the anomaly engine's behavioral classes) and inherits both");
    outln!(out, "false-positive sources, while its per-packet cost — both engines run on");
    outln!(out, "every packet — buys the lowest zero-loss throughput of the three.");
    out.finish();

    if let Some(dir) = &store_dir {
        let spec = StoreSpec::new(dir).with_stamp(stamp).with_git_rev(git_rev);
        let store_rows: Vec<HybridTaxonomyRow> = suites
            .iter()
            .zip(&probes)
            .map(|((label, _), (c, tp))| HybridTaxonomyRow {
                mechanism: (*label).to_owned(),
                detection_rate: c.detection_rate(),
                fp_ratio: c.false_positive_ratio(),
                zero_loss_pps: tp.zero_loss_pps,
                alerts: c.alert_count,
            })
            .collect();
        match record_hybrid_taxonomy(&spec, &request, 0.8, &store_rows) {
            Ok(run) => eprintln!(
                "recorded run {} ({} records) in {}",
                run.header.run_id,
                run.header.records,
                spec.dir.display()
            ),
            Err(e) => {
                eprintln!("error: run store recording failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
