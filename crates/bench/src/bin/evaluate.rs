//! `evaluate` — the full methodology as a command-line tool.
//!
//! ```text
//! evaluate [--profile cluster|web|office] [--seed N] [--rate SESSIONS_PER_SEC]
//!          [--weighting realtime|ecommerce|uniform] [--sweep STEPS]
//!          [--intensity N] [--jobs N] [--json PATH]
//!          [--telemetry-out PATH] [--telemetry-summary]
//!          [--store DIR] [--stamp S] [--git-rev REV]
//! ```
//!
//! Runs the canned-feed evaluation of all four products, prints the
//! comparison and ranking under the chosen weighting, and optionally dumps
//! a machine-readable JSON report (scorecards with notes, measurements,
//! curves, run provenance) for downstream tooling.
//!
//! `--jobs N` fans the independent experiment jobs (sweep points,
//! operating runs, throughput searches) out over N workers. Every output
//! byte — ranking, JSON report, telemetry stream — is identical for any
//! `N`; the flag only changes wall time, so it is deliberately absent
//! from the report provenance.
//!
//! With `--telemetry-out` the run streams every recorded sim-time event
//! (per-stage spans, shed/alert counters, queue-depth and CPU gauges) as
//! JSONL; with `--telemetry-summary` it prints a per-product per-stage
//! aggregation after the ranking.
//!
//! With `--store DIR` the run is committed to the provenance-keyed run
//! store at DIR (see `store --help` for querying). `--stamp` annotates
//! the run header with an opaque timestamp and `--git-rev` folds a
//! revision into provenance; both are caller-supplied, never read from
//! the environment, so records stay byte-stable.

use idse_bench::cli;
use idse_bench::STANDARD_SEED;
use idse_core::report::{render_comparison, render_ranking};
use idse_core::{Scorecard, WeightSet};
use idse_eval::feeds::TestFeed;
use idse_eval::{JobSpec, Provenance, StoreRequest};
use idse_telemetry::{summary::summarize, MemorySink, Telemetry};

/// Ring-buffer capacity for `--telemetry-out`/`--telemetry-summary`: four
/// products' instrumented operating runs, with headroom.
const TELEMETRY_CAPACITY: usize = 1 << 21;

const USAGE: &str = "usage: evaluate [--profile cluster|web|office] [--seed N] [--rate R]\n\
                     \x20               [--weighting realtime|ecommerce|uniform] [--sweep STEPS]\n\
                     \x20               [--intensity N] [--jobs N] [--json PATH]\n\
                     \x20               [--telemetry-out PATH] [--telemetry-summary]\n\
                     \x20               [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let profile_name = args.opt("--profile").unwrap_or_else(|| "cluster".into());
    let rate: f64 = args.opt_parsed("--rate").unwrap_or(25.0);
    let weighting = args.opt("--weighting").unwrap_or_else(|| "realtime".into());
    let sweep: usize = args.opt_parsed("--sweep").unwrap_or(7);
    let intensity: u32 = args.opt_parsed("--intensity").unwrap_or(2);
    let telemetry_out = args.opt("--telemetry-out");
    let telemetry_summary = args.flag("--telemetry-summary");
    let store_dir = args.opt("--store");
    let stamp = args.opt("--stamp");
    let git_rev = args.opt("--git-rev");
    let common = args.finish();
    let seed = common.seed_or(STANDARD_SEED);

    // The CLI flags become a service job spec: the daemon's `submit`
    // payload takes the same shape, and both entry points turn a spec into
    // a request through `JobSpec::to_request` — the byte-identity
    // chokepoint.
    let spec = JobSpec {
        kind: Some("evaluate".to_owned()),
        profile: Some(profile_name),
        weighting: Some(weighting),
        seed: Some(seed),
        rate: Some(rate),
        sweep: Some(sweep),
        intensity: Some(intensity),
        store: store_dir.map(|dir| StoreRequest {
            dir,
            stamp: stamp.clone(),
            git_rev: git_rev.clone(),
        }),
        ..JobSpec::default()
    };
    let (profile, weights, request) = match spec.site().and_then(|(profile, _)| {
        let weights = spec.weights()?;
        let request = spec.to_request()?;
        Ok((profile, weights, request))
    }) {
        Ok(resolved) => resolved,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let weights: WeightSet = weights;

    // One shared ring buffer receives all four products' event streams.
    // Scopes keep them separable; the executor merges each job's buffer in
    // canonical job-key order, and a post-run stable sort by scope keeps
    // the JSONL layout identical to the historical per-product grouping.
    let telemetry_wanted = telemetry_out.is_some() || telemetry_summary;
    let sink = telemetry_wanted.then(|| MemorySink::new(TELEMETRY_CAPACITY));
    let request = request
        .with_telemetry(
            sink.as_ref().map(|s| Telemetry::new(s.clone())).unwrap_or_else(Telemetry::disabled),
        )
        .with_jobs(common.jobs);

    eprintln!(
        "evaluating 4 products on the {:?} profile (seed {:#x}, {} sweep steps, {} worker(s))…",
        profile.name,
        seed,
        sweep,
        request.executor().workers()
    );
    // idse-lint: allow(materialized-feed-in-experiment, reason = "45-second canned methodology run: sweep curves and timing joins need the trace")
    let feed = TestFeed::build(profile, &request.feed);
    let evals = request.evaluate_all(&feed);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    let mut out = cli::Out::new(&common);
    idse_bench::outln!(out, "{}", render_comparison(&cards, &weights));
    idse_bench::outln!(out, "{}", render_ranking(&cards, &weights));

    let mut telemetry_events_recorded = 0u64;
    let mut telemetry_events_dropped = 0u64;
    if let Some(sink) = &sink {
        let mut events = sink.events();
        events.sort_by_key(|e| e.scope);
        telemetry_events_recorded = events.len() as u64;
        telemetry_events_dropped = sink.dropped();
        if telemetry_events_dropped > 0 {
            eprintln!(
                "warning: telemetry ring buffer evicted {telemetry_events_dropped} events \
                 (capacity {TELEMETRY_CAPACITY})"
            );
        }

        if let Some(path) = &telemetry_out {
            let mut body = String::with_capacity(events.len() * 80);
            for ev in &events {
                body.push_str(&ev.to_jsonl());
                body.push('\n');
            }
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("error: writing {path:?}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {} telemetry events to {path}", events.len());
        }

        if telemetry_summary {
            for eval in &evals {
                let scoped: Vec<idse_telemetry::Event> =
                    events.iter().filter(|e| e.scope == eval.scorecard.system).copied().collect();
                let mut summary = summarize(&scoped);
                // The ring buffer is shared across scopes, so each
                // per-product report carries the sink-wide eviction count:
                // any drop anywhere means truncated statistics everywhere.
                summary.dropped_events = telemetry_events_dropped;
                idse_bench::outln!(out, "=== {} ===", eval.scorecard.system);
                idse_bench::outln!(out, "{}", summary.render_text());
            }
        }
    }
    out.finish();

    // The report deliberately omits the worker count: `--jobs` must never
    // change a single output byte, so it is not provenance. The manifest
    // is the same `Provenance` the store's run headers carry, plus the
    // report-only telemetry counters.
    let mut provenance = Provenance::for_request(&request)
        .with_profile(feed.profile.name.clone())
        .with_weighting(weights.name.clone())
        .with_git_rev(git_rev.clone())
        .to_value();
    if let serde_json::Value::Object(pairs) = &mut provenance {
        pairs.push((
            "telemetry".to_owned(),
            serde_json::json!({
                "enabled": telemetry_wanted,
                "events_recorded": telemetry_events_recorded,
                "events_dropped": telemetry_events_dropped,
            }),
        ));
    }
    let report = serde_json::json!({
        "profile": feed.profile.name,
        "seed": seed,
        "weighting": weights.name,
        "standard": weights.ideal_total(),
        "provenance": provenance,
        "products": evals.iter().map(|e| serde_json::json!({
            "name": e.scorecard.system,
            "weighted_total": weights.weighted_total(&e.scorecard),
            "operating_sensitivity": e.operating_sensitivity,
            "scorecard": e.scorecard,
            "curve": e.curve,
            "throughput": e.throughput,
            "confusion": serde_json::json!({
                "transactions": e.confusion.transactions,
                "actual_attacks": e.confusion.actual_attacks,
                "detected_attacks": e.confusion.detected_attacks,
                "false_positives": e.confusion.false_positives,
                "fp_ratio": e.confusion.false_positive_ratio(),
                "fn_ratio": e.confusion.false_negative_ratio(),
            }),
            "timing": e.timing,
            "host_impact": e.host_impact,
        })).collect::<Vec<_>>(),
    });
    common.write_json(&report);
}
