//! `evaluate` — the full methodology as a command-line tool.
//!
//! ```text
//! evaluate [--profile cluster|web|office] [--seed N] [--rate SESSIONS_PER_SEC]
//!          [--weighting realtime|ecommerce|uniform] [--sweep STEPS]
//!          [--intensity N] [--json PATH]
//! ```
//!
//! Runs the canned-feed evaluation of all four products, prints the
//! comparison and ranking under the chosen weighting, and optionally dumps
//! a machine-readable JSON report (scorecards with notes, measurements,
//! curves) for downstream tooling.

use idse_core::report::{render_comparison, render_ranking};
use idse_core::{RequirementSet, Scorecard, WeightSet};
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::harness::{evaluate_all, EvaluationConfig};
use idse_eval::measure::EnvironmentNeeds;
use idse_sim::SimDuration;
use idse_traffic::SiteProfile;

#[derive(Debug)]
struct Args {
    profile: String,
    seed: u64,
    rate: f64,
    weighting: String,
    sweep: usize,
    intensity: u32,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        profile: "cluster".into(),
        seed: 0x2002_0415,
        rate: 25.0,
        weighting: "realtime".into(),
        sweep: 7,
        intensity: 2,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--profile" => args.profile = value("--profile")?,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--rate" => args.rate = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--weighting" => args.weighting = value("--weighting")?,
            "--sweep" => {
                args.sweep = value("--sweep")?.parse().map_err(|e| format!("--sweep: {e}"))?
            }
            "--intensity" => {
                args.intensity =
                    value("--intensity")?.parse().map_err(|e| format!("--intensity: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!(
                    "usage: evaluate [--profile cluster|web|office] [--seed N] [--rate R]\n\
                     \x20               [--weighting realtime|ecommerce|uniform] [--sweep STEPS]\n\
                     \x20               [--intensity N] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.sweep < 2 {
        return Err("--sweep must be at least 2".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let (profile, needs) = match args.profile.as_str() {
        "cluster" => (SiteProfile::realtime_cluster(), EnvironmentNeeds::realtime_cluster(3_000.0)),
        "web" => (SiteProfile::ecommerce_web(), EnvironmentNeeds::ecommerce(3_000.0)),
        "office" => (SiteProfile::office_lan(), EnvironmentNeeds::ecommerce(1_500.0)),
        other => {
            eprintln!("error: unknown profile {other:?} (cluster|web|office)");
            std::process::exit(2);
        }
    };
    let weights: WeightSet = match args.weighting.as_str() {
        "realtime" => RequirementSet::realtime_distributed().derive(),
        "ecommerce" => RequirementSet::ecommerce_site().derive(),
        "uniform" => WeightSet::uniform(),
        other => {
            eprintln!("error: unknown weighting {other:?} (realtime|ecommerce|uniform)");
            std::process::exit(2);
        }
    };

    let config = EvaluationConfig {
        feed: FeedConfig {
            session_rate: args.rate,
            training_span: SimDuration::from_secs(20),
            test_span: SimDuration::from_secs(45),
            campaign_intensity: args.intensity,
            seed: args.seed,
        },
        needs,
        sweep_steps: args.sweep,
        max_throughput_factor: 4096.0,
        fp_budget: 0.15,
    };

    eprintln!(
        "evaluating 4 products on the {:?} profile (seed {:#x}, {} sweep steps)…",
        profile.name, args.seed, args.sweep
    );
    let feed = TestFeed::build(profile, &config.feed);
    let evals = evaluate_all(&feed, &config);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    println!("{}", render_comparison(&cards, &weights));
    println!("{}", render_ranking(&cards, &weights));

    if let Some(path) = args.json {
        let report = serde_json::json!({
            "profile": feed.profile.name,
            "seed": args.seed,
            "weighting": weights.name,
            "standard": weights.ideal_total(),
            "products": evals.iter().map(|e| serde_json::json!({
                "name": e.scorecard.system,
                "weighted_total": weights.weighted_total(&e.scorecard),
                "operating_sensitivity": e.operating_sensitivity,
                "scorecard": e.scorecard,
                "curve": e.curve,
                "throughput": e.throughput,
                "confusion": {
                    "transactions": e.confusion.transactions,
                    "actual_attacks": e.confusion.actual_attacks,
                    "detected_attacks": e.confusion.detected_attacks,
                    "false_positives": e.confusion.false_positives,
                    "fp_ratio": e.confusion.false_positive_ratio(),
                    "fn_ratio": e.confusion.false_negative_ratio(),
                },
                "timing": e.timing,
                "host_impact": e.host_impact,
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable"))
            .unwrap_or_else(|e| {
                eprintln!("error: writing {path:?}: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote {path}");
    }
}
