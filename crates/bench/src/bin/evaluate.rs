//! `evaluate` — the full methodology as a command-line tool.
//!
//! ```text
//! evaluate [--profile cluster|web|office] [--seed N] [--rate SESSIONS_PER_SEC]
//!          [--weighting realtime|ecommerce|uniform] [--sweep STEPS]
//!          [--intensity N] [--json PATH]
//!          [--telemetry-out PATH] [--telemetry-summary]
//! ```
//!
//! Runs the canned-feed evaluation of all four products, prints the
//! comparison and ranking under the chosen weighting, and optionally dumps
//! a machine-readable JSON report (scorecards with notes, measurements,
//! curves, run provenance) for downstream tooling.
//!
//! With `--telemetry-out` the run streams every recorded sim-time event
//! (per-stage spans, shed/alert counters, queue-depth and CPU gauges) as
//! JSONL; with `--telemetry-summary` it prints a per-product per-stage
//! aggregation after the ranking.

use idse_core::report::{render_comparison, render_ranking};
use idse_core::{RequirementSet, Scorecard, WeightSet};
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::harness::{evaluate_all, EvaluationConfig};
use idse_eval::measure::EnvironmentNeeds;
use idse_sim::SimDuration;
use idse_telemetry::{summary::summarize, MemorySink, Telemetry};
use idse_traffic::SiteProfile;

/// Ring-buffer capacity for `--telemetry-out`/`--telemetry-summary`: four
/// products' instrumented operating runs, with headroom.
const TELEMETRY_CAPACITY: usize = 1 << 21;

#[derive(Debug)]
struct Args {
    profile: String,
    seed: u64,
    rate: f64,
    weighting: String,
    sweep: usize,
    intensity: u32,
    json: Option<String>,
    telemetry_out: Option<String>,
    telemetry_summary: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        profile: "cluster".into(),
        seed: 0x2002_0415,
        rate: 25.0,
        weighting: "realtime".into(),
        sweep: 7,
        intensity: 2,
        json: None,
        telemetry_out: None,
        telemetry_summary: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--profile" => args.profile = value("--profile")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--rate" => args.rate = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--weighting" => args.weighting = value("--weighting")?,
            "--sweep" => {
                args.sweep = value("--sweep")?.parse().map_err(|e| format!("--sweep: {e}"))?
            }
            "--intensity" => {
                args.intensity =
                    value("--intensity")?.parse().map_err(|e| format!("--intensity: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--telemetry-out" => args.telemetry_out = Some(value("--telemetry-out")?),
            "--telemetry-summary" => args.telemetry_summary = true,
            "--help" | "-h" => {
                println!(
                    "usage: evaluate [--profile cluster|web|office] [--seed N] [--rate R]\n\
                     \x20               [--weighting realtime|ecommerce|uniform] [--sweep STEPS]\n\
                     \x20               [--intensity N] [--json PATH]\n\
                     \x20               [--telemetry-out PATH] [--telemetry-summary]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.sweep < 2 {
        return Err("--sweep must be at least 2".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let (profile, needs) = match args.profile.as_str() {
        "cluster" => (SiteProfile::realtime_cluster(), EnvironmentNeeds::realtime_cluster(3_000.0)),
        "web" => (SiteProfile::ecommerce_web(), EnvironmentNeeds::ecommerce(3_000.0)),
        "office" => (SiteProfile::office_lan(), EnvironmentNeeds::ecommerce(1_500.0)),
        other => {
            eprintln!("error: unknown profile {other:?} (cluster|web|office)");
            std::process::exit(2);
        }
    };
    let weights: WeightSet = match args.weighting.as_str() {
        "realtime" => RequirementSet::realtime_distributed().derive(),
        "ecommerce" => RequirementSet::ecommerce_site().derive(),
        "uniform" => WeightSet::uniform(),
        other => {
            eprintln!("error: unknown weighting {other:?} (realtime|ecommerce|uniform)");
            std::process::exit(2);
        }
    };

    // One shared ring buffer receives all four products' event streams;
    // scopes keep them separable, and a post-run stable sort by scope
    // makes the JSONL independent of thread interleaving.
    let telemetry_wanted = args.telemetry_out.is_some() || args.telemetry_summary;
    let sink = telemetry_wanted.then(|| MemorySink::new(TELEMETRY_CAPACITY));
    let config = EvaluationConfig {
        feed: FeedConfig {
            session_rate: args.rate,
            training_span: SimDuration::from_secs(20),
            test_span: SimDuration::from_secs(45),
            campaign_intensity: args.intensity,
            seed: args.seed,
        },
        needs,
        sweep_steps: args.sweep,
        max_throughput_factor: 4096.0,
        fp_budget: 0.15,
        telemetry: sink
            .as_ref()
            .map(|s| Telemetry::new(s.clone()))
            .unwrap_or_else(Telemetry::disabled),
    };

    eprintln!(
        "evaluating 4 products on the {:?} profile (seed {:#x}, {} sweep steps)…",
        profile.name, args.seed, args.sweep
    );
    let feed = TestFeed::build(profile, &config.feed);
    let evals = evaluate_all(&feed, &config);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    println!("{}", render_comparison(&cards, &weights));
    println!("{}", render_ranking(&cards, &weights));

    let mut telemetry_events_recorded = 0u64;
    let mut telemetry_events_dropped = 0u64;
    if let Some(sink) = &sink {
        // Each product's stream is in deterministic program order; a
        // stable sort by scope removes the only nondeterminism (thread
        // interleaving between products).
        let mut events = sink.events();
        events.sort_by_key(|e| e.scope);
        telemetry_events_recorded = events.len() as u64;
        telemetry_events_dropped = sink.dropped();
        if telemetry_events_dropped > 0 {
            eprintln!(
                "warning: telemetry ring buffer evicted {telemetry_events_dropped} events \
                 (capacity {TELEMETRY_CAPACITY})"
            );
        }

        if let Some(path) = &args.telemetry_out {
            let mut out = String::with_capacity(events.len() * 80);
            for ev in &events {
                out.push_str(&ev.to_jsonl());
                out.push('\n');
            }
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("error: writing {path:?}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {} telemetry events to {path}", events.len());
        }

        if args.telemetry_summary {
            for eval in &evals {
                let scoped: Vec<idse_telemetry::Event> =
                    events.iter().filter(|e| e.scope == eval.scorecard.system).copied().collect();
                println!("=== {} ===", eval.scorecard.system);
                print!("{}", summarize(&scoped).render_text());
                println!();
            }
        }
    }

    if let Some(path) = args.json {
        let report = serde_json::json!({
            "profile": feed.profile.name,
            "seed": args.seed,
            "weighting": weights.name,
            "standard": weights.ideal_total(),
            "provenance": serde_json::json!({
                "crate_version": env!("CARGO_PKG_VERSION"),
                "seed": args.seed,
                "profile": feed.profile.name,
                "weighting": weights.name,
                "feed": serde_json::json!({
                    "session_rate": config.feed.session_rate,
                    "training_span_s": config.feed.training_span.as_secs_f64(),
                    "test_span_s": config.feed.test_span.as_secs_f64(),
                    "campaign_intensity": config.feed.campaign_intensity,
                    "seed": config.feed.seed,
                }),
                "sensitivity_policy": serde_json::json!({
                    "rule": "min false-negative ratio within the false-positive budget",
                    "fp_budget": config.fp_budget,
                    "sweep_steps": config.sweep_steps,
                }),
                "timebase": "sim-time (deterministic virtual clock; wall time never enters a measurement)",
                "telemetry": serde_json::json!({
                    "enabled": telemetry_wanted,
                    "events_recorded": telemetry_events_recorded,
                    "events_dropped": telemetry_events_dropped,
                }),
            }),
            "products": evals.iter().map(|e| serde_json::json!({
                "name": e.scorecard.system,
                "weighted_total": weights.weighted_total(&e.scorecard),
                "operating_sensitivity": e.operating_sensitivity,
                "scorecard": e.scorecard,
                "curve": e.curve,
                "throughput": e.throughput,
                "confusion": serde_json::json!({
                    "transactions": e.confusion.transactions,
                    "actual_attacks": e.confusion.actual_attacks,
                    "detected_attacks": e.confusion.detected_attacks,
                    "false_positives": e.confusion.false_positives,
                    "fp_ratio": e.confusion.false_positive_ratio(),
                    "fn_ratio": e.confusion.false_negative_ratio(),
                }),
                "timing": e.timing,
                "host_impact": e.host_impact,
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable"))
            .unwrap_or_else(|e| {
                eprintln!("error: writing {path:?}: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote {path}");
    }
}
