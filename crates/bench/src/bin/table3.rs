//! Table 3 — Selected Performance Metrics, with per-product scores and the
//! measured values behind them.

use idse_bench::{cli, outln, standard_evaluation_with, table, STANDARD_SEED};
use idse_core::catalog::metrics_of_class;
use idse_core::report::render_metric_table;
use idse_core::MetricClass;
use idse_eval::record_evaluation;

const USAGE: &str = "usage: table3 [--seed N] [--jobs N] [--out PATH]\n\
                     \x20             [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    common.deny_json("table3");
    let mut out = cli::Out::new(&common);

    outln!(out, "=== Paper Table 3: Selected Performance Metrics ===\n");
    outln!(out, "{}", render_metric_table(MetricClass::Performance, true));
    outln!(out, "--- Metrics defined but not shown in the paper's table ---\n");
    let named: Vec<String> = metrics_of_class(MetricClass::Performance)
        .into_iter()
        .filter(|m| !m.in_paper_table)
        .map(|m| m.name.to_owned())
        .collect();
    outln!(out, "{}\n", named.join(", "));

    outln!(out, "=== Scores ===\n");
    let (feed, request, evals) =
        standard_evaluation_with(common.seed_or(STANDARD_SEED), common.jobs);
    let metrics = metrics_of_class(MetricClass::Performance);
    let mut headers: Vec<&str> = vec!["Metric"];
    let names: Vec<String> = evals.iter().map(|e| e.scorecard.system.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            let mut row = vec![m.name.to_owned()];
            for e in &evals {
                row.push(
                    e.scorecard
                        .get(m.id)
                        .map(|s| s.value().to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    outln!(out, "{}", table(&headers, &rows));

    outln!(out, "\nMeasured values at each product's operating point:");
    for e in &evals {
        outln!(
            out,
            "\n  {} (operating sensitivity {:.2})",
            e.scorecard.system,
            e.operating_sensitivity
        );
        outln!(
            out,
            "    FP ratio {:.4}   FN ratio {:.4}   detection rate {:.2}   alerts {}",
            e.confusion.false_positive_ratio(),
            e.confusion.false_negative_ratio(),
            e.confusion.detection_rate(),
            e.confusion.alert_count
        );
        outln!(
            out,
            "    timeliness mean {} / max {}   induced latency mean {}",
            e.timing.timeliness_mean,
            e.timing.timeliness_max,
            e.timing.induced_latency_mean
        );
        outln!(
            out,
            "    host impact {:.2}%   state {} KiB   zero-loss {:.0} pps",
            100.0 * e.host_impact,
            e.state_bytes / 1024,
            e.throughput.zero_loss_pps
        );
        outln!(out, "    per-class detection:");
        for (class, (d, t)) in &e.confusion.per_class {
            outln!(out, "      {:20} {d}/{t}", class.name());
        }
    }
    out.finish();

    if let Some(spec) = &store {
        let spec = spec.clone().with_profile(feed.profile.name.clone());
        cli::report_store_result(&spec, record_evaluation(&spec, &request, &evals));
    }
}
