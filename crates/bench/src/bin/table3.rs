//! Table 3 — Selected Performance Metrics, with per-product scores and the
//! measured values behind them.

use idse_bench::{standard_evaluation, table};
use idse_core::catalog::metrics_of_class;
use idse_core::report::render_metric_table;
use idse_core::MetricClass;

fn main() {
    println!("=== Paper Table 3: Selected Performance Metrics ===\n");
    println!("{}", render_metric_table(MetricClass::Performance, true));
    println!("--- Metrics defined but not shown in the paper's table ---\n");
    let named: Vec<String> = metrics_of_class(MetricClass::Performance)
        .into_iter()
        .filter(|m| !m.in_paper_table)
        .map(|m| m.name.to_owned())
        .collect();
    println!("{}\n", named.join(", "));

    println!("=== Scores ===\n");
    let (_feed, _config, evals) = standard_evaluation();
    let metrics = metrics_of_class(MetricClass::Performance);
    let mut headers: Vec<&str> = vec!["Metric"];
    let names: Vec<String> = evals.iter().map(|e| e.scorecard.system.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            let mut row = vec![m.name.to_owned()];
            for e in &evals {
                row.push(
                    e.scorecard
                        .get(m.id)
                        .map(|s| s.value().to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    println!("{}", table(&headers, &rows));

    println!("\nMeasured values at each product's operating point:");
    for e in &evals {
        println!(
            "\n  {} (operating sensitivity {:.2})",
            e.scorecard.system, e.operating_sensitivity
        );
        println!(
            "    FP ratio {:.4}   FN ratio {:.4}   detection rate {:.2}   alerts {}",
            e.confusion.false_positive_ratio(),
            e.confusion.false_negative_ratio(),
            e.confusion.detection_rate(),
            e.confusion.alert_count
        );
        println!(
            "    timeliness mean {} / max {}   induced latency mean {}",
            e.timing.timeliness_mean, e.timing.timeliness_max, e.timing.induced_latency_mean
        );
        println!(
            "    host impact {:.2}%   state {} KiB   zero-loss {:.0} pps",
            100.0 * e.host_impact,
            e.state_bytes / 1024,
            e.throughput.zero_loss_pps
        );
        println!("    per-class detection:");
        for (class, (d, t)) in &e.confusion.per_class {
            println!("      {:20} {d}/{t}", class.name());
        }
    }
}
