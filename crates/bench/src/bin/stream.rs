//! `stream` — constant-memory streaming evaluation at scale.
//!
//! ```text
//! stream [--transactions N] [--hosts N] [--rate SESSIONS_PER_SEC]
//!        [--chunk RECORDS] [--shards N] [--intensity N]
//!        [--product nid|guard|flow|agent] [--sensitivity S]
//!        [--seed N] [--jobs N] [--json PATH] [--out PATH]
//! ```
//!
//! Drives the `RecordStream` evaluation path end to end: the test feed is
//! never materialized — each flow-key shard pulls fixed-size record chunks
//! from a lazy generator, runs them through the Figure-1 pipeline, and
//! folds counts into a constant-memory ledger. Memory stays O(chunk +
//! distinct flows) regardless of `--transactions`, so ten-million-record
//! runs fit where the materialized path would need gigabytes.
//!
//! The merged scorecard is byte-identical for any `--jobs N` and any
//! `--chunk` size (pure batching); `--shards` is part of the experiment's
//! identity and is recorded in the scorecard. The text report includes the
//! peak resident set (Linux `VmHWM`) so bounded-memory claims are
//! checkable from the command line.

use idse_bench::cli;
use idse_bench::STANDARD_SEED;
use idse_eval::{EvaluationRequest, FeedConfig, StreamEvaluation};
use idse_ids::products::{IdsProduct, ProductId};

const USAGE: &str = "usage: stream [--transactions N] [--hosts N] [--rate R]\n\
                     \x20             [--chunk RECORDS] [--shards N] [--intensity N]\n\
                     \x20             [--product nid|guard|flow|agent] [--sensitivity S]\n\
                     \x20             [--seed N] [--jobs N] [--json PATH] [--out PATH]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let transactions: u64 = args.opt_parsed("--transactions").unwrap_or(1_000_000);
    let hosts: Option<u32> = args.opt_parsed("--hosts");
    let rate: f64 = args.opt_parsed("--rate").unwrap_or(25_000.0);
    let chunk: usize = args.opt_parsed("--chunk").unwrap_or(idse_traffic::DEFAULT_CHUNK_RECORDS);
    let shards: u32 = args.opt_parsed("--shards").unwrap_or(8);
    let intensity: u32 = args.opt_parsed("--intensity").unwrap_or(2);
    let product_name = args.opt("--product");
    let sensitivity: f64 = args.opt_parsed("--sensitivity").unwrap_or(0.6);
    let common = args.finish();
    let seed = common.seed_or(STANDARD_SEED);

    let products: Vec<IdsProduct> = match product_name.as_deref() {
        None => vec![IdsProduct::model(ProductId::FlowHunter)],
        Some("all") => ProductId::ALL.iter().map(|&id| IdsProduct::model(id)).collect(),
        Some(name) => {
            let id = match name {
                "nid" => ProductId::NidSentry,
                "guard" => ProductId::GuardSecure,
                "flow" => ProductId::FlowHunter,
                "agent" => ProductId::AgentWatch,
                other => {
                    eprintln!("error: unknown product {other:?} (nid|guard|flow|agent|all)");
                    std::process::exit(2);
                }
            };
            vec![IdsProduct::model(id)]
        }
    };

    let mut builder = FeedConfig::builder()
        .session_rate(rate)
        .transactions(transactions)
        .campaign_intensity(intensity)
        .seed(seed)
        .chunk_records(chunk)
        .shards(shards);
    if let Some(h) = hosts {
        builder = builder.hosts(h);
    }
    let request = EvaluationRequest::new().with_feed(builder.build()).with_jobs(common.jobs);

    eprintln!(
        "streaming {transactions} transactions across {shards} shard(s), chunk {chunk}, \
         {} worker(s)…",
        request.executor().workers()
    );
    let started = std::time::Instant::now();
    let evals: Vec<StreamEvaluation> = request.evaluate_stream(&products, sensitivity);
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut out = cli::Out::new(&common);
    for eval in &evals {
        let card = &eval.scorecard;
        idse_bench::outln!(out, "=== {} ===", card.product);
        idse_bench::outln!(
            out,
            "records {}  transactions {}  shards {}  window peak {} records",
            card.records,
            card.transactions,
            card.shards,
            eval.window_peak
        );
        idse_bench::outln!(
            out,
            "attacks {}/{} detected  fp {} ({:.5}/txn)  fn ratio {:.4}  alerts {}",
            card.detected_attacks,
            card.actual_attacks,
            card.false_positives,
            card.false_positive_ratio,
            card.false_negative_ratio,
            card.alerts
        );
        idse_bench::outln!(
            out,
            "offered {}  monitored {}  lost {}  blocked {} attack / {} benign",
            card.offered,
            card.monitored,
            card.lost,
            card.blocked_attack,
            card.blocked_benign
        );
    }
    idse_bench::outln!(out, "wall {wall_ms} ms{}", peak_rss_note());
    out.finish();

    let report = serde_json::json!({
        "seed": seed,
        "transactions": transactions,
        "rate": rate,
        "chunk_records": chunk,
        "shards": shards,
        "sensitivity": sensitivity,
        "wall_ms": wall_ms,
        "peak_rss_kib": peak_rss_kib(),
        "products": evals.iter().map(|e| serde_json::json!({
            "scorecard": e.scorecard,
            "window_peak": e.window_peak,
        })).collect::<Vec<_>>(),
    });
    common.write_json(&report);
}

/// Peak resident set in KiB from `/proc/self/status` (Linux only).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn peak_rss_note() -> String {
    match peak_rss_kib() {
        Some(kib) => format!("  peak rss {:.1} MiB", kib as f64 / 1024.0),
        None => String::new(),
    }
}
