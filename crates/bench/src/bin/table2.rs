//! Table 2 — Selected Architectural Metrics, with per-product scores.

use idse_bench::{standard_evaluation, table};
use idse_core::catalog::metrics_of_class;
use idse_core::report::render_metric_table;
use idse_core::MetricClass;

fn main() {
    println!("=== Paper Table 2: Selected Architectural Metrics ===\n");
    println!("{}", render_metric_table(MetricClass::Architectural, true));
    println!("--- Metrics defined but not shown in the paper's table ---\n");
    let named: Vec<String> = metrics_of_class(MetricClass::Architectural)
        .into_iter()
        .filter(|m| !m.in_paper_table)
        .map(|m| m.name.to_owned())
        .collect();
    println!("{}\n", named.join(", "));

    println!("=== Scores ===\n");
    let (_feed, _config, evals) = standard_evaluation();
    let metrics = metrics_of_class(MetricClass::Architectural);
    let mut headers: Vec<&str> = vec!["Metric"];
    let names: Vec<String> = evals.iter().map(|e| e.scorecard.system.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            let mut row = vec![m.name.to_owned()];
            for e in &evals {
                row.push(
                    e.scorecard
                        .get(m.id)
                        .map(|s| s.value().to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    println!("{}", table(&headers, &rows));

    println!("\nMeasured backing (throughput search):");
    for e in &evals {
        println!(
            "  {:20} zero-loss {:>9.0} pps ({} simultaneous TCP streams)   lethal dose {}",
            e.scorecard.system,
            e.throughput.zero_loss_pps,
            e.throughput.zero_loss_streams,
            match e.throughput.lethal_dose_pps {
                Some(p) => format!("{p:>9.0} pps"),
                None => "none found (graceful)".to_owned(),
            }
        );
    }
}
