//! Experiment X1 — host-based monitoring overhead (§2.1): "nominal
//! event-logging … three to five percent"; "C2-level … as much as twenty
//! percent of the host's processing power".

use idse_bench::{cli, outln, table};
use idse_eval::host_overhead::host_overhead_experiment;
use idse_eval::provenance::record_host_overhead;
use idse_sim::SimDuration;

const USAGE: &str = "usage: exp_host_overhead [--seed N] [--out PATH]\n\
                     \x20                        [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    common.deny_json("exp_host_overhead");
    let mut out = cli::Out::new(&common);
    let seed = common.seed_or(0x0b35);

    outln!(out, "=== Experiment X1: host audit/monitoring overhead (§2.1) ===\n");
    let mut sections = Vec::new();
    for load in [0.3, 0.6, 0.95] {
        outln!(out, "--- production load ≈ {:.0}% of host capacity ---", load * 100.0);
        let rows = host_overhead_experiment(load, SimDuration::from_secs(40), 800.0, seed);
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.level.to_owned(),
                    format!("{:.2}%", 100.0 * r.audit_share),
                    format!("{:.2}%", 100.0 * r.with_agent_share),
                    format!("{:.0}", r.production_events_per_sec),
                ]
            })
            .collect();
        outln!(
            out,
            "{}",
            table(
                &["Audit level", "Audit share", "Audit+agent share", "Production events/s"],
                &table_rows
            )
        );
        sections.push((load, rows));
    }
    outln!(out, "Paper's cited figures: nominal logging 3–5% of host resources; DoD C2-level");
    outln!(out, "(Controlled Access Protection) up to 20% — 'obviously a concern for real-time");
    outln!(out, "systems'. The saturated-host rows reproduce those shares; lighter loads scale");
    outln!(out, "them proportionally.");
    out.finish();

    if let Some(spec) = &store {
        cli::report_store_result(spec, record_host_overhead(spec, seed, &sections));
    }
}
