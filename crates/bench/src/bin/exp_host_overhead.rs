//! Experiment X1 — host-based monitoring overhead (§2.1): "nominal
//! event-logging … three to five percent"; "C2-level … as much as twenty
//! percent of the host's processing power".

use idse_bench::table;
use idse_eval::host_overhead::host_overhead_experiment;
use idse_sim::SimDuration;

fn main() {
    println!("=== Experiment X1: host audit/monitoring overhead (§2.1) ===\n");
    for load in [0.3, 0.6, 0.95] {
        println!("--- production load ≈ {:.0}% of host capacity ---", load * 100.0);
        let rows = host_overhead_experiment(load, SimDuration::from_secs(40), 800.0, 0x0b35);
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.level.to_owned(),
                    format!("{:.2}%", 100.0 * r.audit_share),
                    format!("{:.2}%", 100.0 * r.with_agent_share),
                    format!("{:.0}", r.production_events_per_sec),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &["Audit level", "Audit share", "Audit+agent share", "Production events/s"],
                &table_rows
            )
        );
    }
    println!("Paper's cited figures: nominal logging 3–5% of host resources; DoD C2-level");
    println!("(Controlled Access Protection) up to 20% — 'obviously a concern for real-time");
    println!("systems'. The saturated-host rows reproduce those shares; lighter loads scale");
    println!("them proportionally.");
}
