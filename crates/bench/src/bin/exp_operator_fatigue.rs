//! Future-work experiment — the human dimension (§4: "expand the scorecard
//! metrics to capture the human dimension of IDS"): operator triage
//! capacity turns the monotone machine detection curve into a humped
//! *effective* detection curve, because "frequent alerts on trivial or
//! normal events … lead to the IDS being ignored by the operators" (§2.2).

use idse_bench::{cli, outln, standard_setup_with, table, STANDARD_SEED};
use idse_eval::operator::{fatigue_sweep, OperatorModel};
use idse_eval::provenance::record_operator_fatigue;
use idse_ids::products::{IdsProduct, ProductId};

const USAGE: &str = "usage: exp_operator_fatigue [--seed N] [--jobs N] [--out PATH]\n\
                     \x20                           [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store = cli::store_spec(&mut args);
    let common = args.finish();
    common.deny_json("exp_operator_fatigue");
    let mut out = cli::Out::new(&common);

    outln!(
        out,
        "=== Future work: operator fatigue and the human-constrained operating point ===\n"
    );
    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);
    let mut sections = Vec::new();

    // The 45-second canned feed stands for one watch hour of traffic.
    for (label, operator) in [
        ("single watchstander (40 triage/hour)", OperatorModel::single_watchstander()),
        ("staffed floor (200 triage/hour)", OperatorModel::staffed_floor()),
    ] {
        outln!(out, "--- {} — GuardSecure GS-5 ---", label);
        let rows =
            fatigue_sweep(&IdsProduct::model(ProductId::GuardSecure), &feed, operator, 1.0, 7);
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.sensitivity),
                    r.alerts.to_string(),
                    r.triaged.to_string(),
                    format!("{:.2}", r.machine_detection),
                    format!("{:.2}", r.effective_detection),
                ]
            })
            .collect();
        outln!(
            out,
            "{}",
            table(
                &["Sensitivity", "Alerts", "Triaged", "Machine detect", "Effective detect"],
                &table_rows
            )
        );
        let best_machine = rows
            .iter()
            .max_by(|a, b| a.machine_detection.partial_cmp(&b.machine_detection).expect("finite"))
            .expect("rows");
        let best_effective = rows
            .iter()
            .max_by(|a, b| {
                a.effective_detection.partial_cmp(&b.effective_detection).expect("finite")
            })
            .expect("rows");
        outln!(
            out,
            "  machine-optimal sensitivity {:.2} (detect {:.2}); human-constrained optimum {:.2} (effective {:.2})\n",
            best_machine.sensitivity,
            best_machine.machine_detection,
            best_effective.sensitivity,
            best_effective.effective_detection,
        );
        sections.push((label.to_owned(), rows));
    }
    outln!(out, "When the alert stream exceeds the triage budget, added sensitivity buys");
    outln!(out, "machine detections that no human ever reads. A procurer sizing a watch floor");
    outln!(out, "should weight Observed False Positive Ratio by this capacity — the human");
    outln!(out, "dimension the paper left for future work, as a measurable quantity.");
    out.finish();

    if let Some(spec) = &store {
        cli::report_store_result(spec, record_operator_fatigue(spec, &request, &sections));
    }
}
