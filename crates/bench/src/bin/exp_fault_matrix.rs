//! Experiment X7 — fault-injection survivability matrix. Every product
//! crossed with every [`fault_scenarios`] entry, so each Figure 2
//! cardinality (LB 1c:M, Sensor M:M Analyzer, Analyzer M:1 Monitor,
//! Monitor 1:1c Manager) is broken at least once and the four class-2
//! survivability metrics are measured against a fault-free twin run.
//!
//! With `--store DIR` the matrix is committed to the provenance-keyed
//! run store, one product key per cell (`product@scenario`), so
//! `store diff` can compare survivability across commits.
//!
//! [`fault_scenarios`]: idse_eval::experiments::fault_scenarios

use idse_bench::{cli, outln, table, STANDARD_SEED};
use idse_eval::experiments::{fault_matrix_experiment, fault_scenarios};
use idse_eval::provenance::{record_fault_matrix, StoreSpec};
use idse_ids::products::IdsProduct;

const USAGE: &str = "usage: exp_fault_matrix [--seed N] [--jobs N] [--json PATH] [--out PATH]\n\
                     \x20                       [--store DIR] [--stamp S] [--git-rev REV]";

fn main() {
    let mut args = cli::Args::parse(USAGE);
    let store_dir = args.opt("--store");
    let stamp = args.opt("--stamp");
    let git_rev = args.opt("--git-rev");
    let common = args.finish();
    let mut out = cli::Out::new(&common);
    let seed = common.seed_or(STANDARD_SEED);
    let exec = common.executor();

    outln!(out, "=== Experiment X7: component x fault-type survivability matrix ===\n");
    outln!(out, "Each cell replays the SAME seeded feed twice — once clean, once with the");
    outln!(out, "scenario's fault plan — and condenses the pair into the four survivability");
    outln!(out, "measures (retention / alert loss / reroute time / recovery), scored 0-4.\n");

    let products = IdsProduct::all_models();
    let scenarios = fault_scenarios();
    let rows = fault_matrix_experiment(&products, &scenarios, 0.7, seed, &exec);

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.product.clone(),
                r.scenario.clone(),
                r.relation.clone(),
                format!("{:.2}", r.survivability.detection_retention),
                format!("{:.3}", r.survivability.alert_loss_ratio),
                format!("{:.1} µs", r.survivability.mean_reroute.as_secs_f64() * 1e6),
                format!("{:.2}", r.survivability.recovery_completeness),
                r.scores.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("/"),
                format!("{}/{}/{}", r.rerouted, r.replayed, r.lost_alerts),
            ]
        })
        .collect();
    outln!(
        out,
        "{}",
        table(
            &[
                "Product",
                "Scenario",
                "Figure-2 relation",
                "Retain",
                "Loss",
                "Reroute",
                "Recover",
                "Scores",
                "Rerouted/Replayed/Lost",
            ],
            &table_rows
        )
    );
    outln!(out, "Redundant fan-outs (M:M sensors, 1c:M load balancing) keep retention near 1.0");
    outln!(out, "through single kills; the 1:1 stages (Monitor, Manager) lean on buffering and");
    outln!(out, "replay instead, trading alert latency for loss. Degradation scenarios (CPU");
    outln!(out, "steal, lossy tap, clock skew) erode retention without tripping any reroute.");
    out.finish();

    if let Some(dir) = &store_dir {
        let spec = StoreSpec::new(dir).with_stamp(stamp).with_git_rev(git_rev);
        match record_fault_matrix(&spec, &scenarios, &rows, 0.7, seed) {
            Ok(run) => eprintln!(
                "recorded run {} ({} records) in {}",
                run.header.run_id,
                run.header.records,
                spec.dir.display()
            ),
            Err(e) => {
                eprintln!("error: run store recording failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if common.json.is_some() {
        common.write_json(&serde_json::json!({
            "experiment": "X7 fault matrix",
            "seed": seed,
            "sensitivity": 0.7,
            "rows": rows,
        }));
    }
}
