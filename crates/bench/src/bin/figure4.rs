//! Figure 4 — error-rate curves vs sensitivity and the Equal Error Rate,
//! per product.

use idse_bench::{standard_setup, table};
use idse_eval::sweep::sweep_product;
use idse_ids::products::IdsProduct;

fn main() {
    println!("=== Paper Figure 4: Error rate curves and Equal Error Rate ===\n");
    let (feed, config) = standard_setup();
    for product in IdsProduct::all_models() {
        let curve = sweep_product(&product, &feed, config.sweep_steps);
        println!("--- {} ---", curve.product);
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.sensitivity),
                    format!("{:.4}", p.false_positive_ratio),
                    format!("{:.4}", p.false_negative_ratio),
                    p.alerts.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table(&["Sensitivity", "FP ratio (Type I)", "FN ratio (Type II)", "Alerts"], &rows)
        );
        match curve.equal_error_rate() {
            Some((s, r)) => println!("  Equal Error Rate: {:.4} at sensitivity {:.2}\n", r, s),
            None => println!("  Equal Error Rate: curves do not cross in the swept range\n"),
        }
    }
    println!("(\"Of course the equal error rate is not always ideal. Given the choice, users");
    println!(" might prefer to have lower Type II error at the expense of higher Type I\" — §2.2;");
    println!(" see exp_operating_point for that trade.)");
}
