//! Figure 4 — error-rate curves vs sensitivity and the Equal Error Rate,
//! per product.

use idse_bench::{cli, outln, standard_setup_with, table, STANDARD_SEED};
use idse_eval::sweep::sweep;
use idse_ids::products::IdsProduct;

fn main() {
    let (common, mut out) =
        cli::shell("usage: figure4 [--seed N] [--jobs N] [--out PATH] [--json PATH]");
    let (feed, request) = standard_setup_with(common.seed_or(STANDARD_SEED), common.jobs);
    let exec = request.executor();

    outln!(out, "=== Paper Figure 4: Error rate curves and Equal Error Rate ===\n");
    let mut curves = Vec::new();
    for product in IdsProduct::all_models() {
        let curve = sweep(&product, &feed, &request.sweep, &exec);
        outln!(out, "--- {} ---", curve.product);
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.sensitivity),
                    format!("{:.4}", p.false_positive_ratio),
                    format!("{:.4}", p.false_negative_ratio),
                    p.alerts.to_string(),
                ]
            })
            .collect();
        outln!(
            out,
            "{}",
            table(&["Sensitivity", "FP ratio (Type I)", "FN ratio (Type II)", "Alerts"], &rows)
        );
        match curve.equal_error_rate() {
            Some((s, r)) => outln!(out, "  Equal Error Rate: {:.4} at sensitivity {:.2}\n", r, s),
            None => outln!(out, "  Equal Error Rate: curves do not cross in the swept range\n"),
        }
        curves.push(curve);
    }
    outln!(out, "(\"Of course the equal error rate is not always ideal. Given the choice, users");
    outln!(
        out,
        " might prefer to have lower Type II error at the expense of higher Type I\" — §2.2;"
    );
    outln!(out, " see exp_operating_point for that trade.)");
    out.finish();

    common.write_json(&serde_json::json!({
        "seed": common.seed_or(STANDARD_SEED),
        "sweep_steps": request.sweep.steps,
        "curves": curves,
    }));
}
