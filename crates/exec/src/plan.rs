//! Jobs, job keys, and experiment plans.
//!
//! An [`ExperimentPlan`] is the declarative middle of an evaluation:
//! *plan construction* enumerates every independent unit of work as a
//! [`Job`] under an ordered [`JobKey`]; *parallel execution* runs the jobs
//! on an [`Executor`](crate::Executor) with a per-job RNG seed and a
//! per-job telemetry buffer; the *deterministic reduce* hands results (and
//! replays telemetry) back in canonical key order, so downstream
//! aggregation never observes scheduling.

use idse_sim::derive_seed;
use idse_telemetry::{JobRecorder, Telemetry};

use crate::Executor;

/// Default per-job telemetry buffer capacity (events). Generous: a fully
/// instrumented operating-point pipeline run stays well under this.
pub const DEFAULT_JOB_TELEMETRY_CAPACITY: usize = 1 << 20;

/// Ordered identity of one job.
///
/// The derived `Ord` (subject, then stage, then point) *is* the canonical
/// merge order: results grouped by evaluated subject (e.g. a product),
/// then by experiment stage, then by point index. It is also the job's
/// seed-derivation label, so identities double as RNG lineage.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey {
    /// What is being evaluated (e.g. the product name). Groups first.
    pub subject: String,
    /// Which experiment stage (e.g. `"sweep"`, `"operate"`, `"throughput"`).
    pub stage: String,
    /// Point index within the stage (sweep step, trial number, …).
    pub point: u32,
}

impl JobKey {
    /// A key for `(subject, stage, point)`.
    pub fn new(subject: impl Into<String>, stage: impl Into<String>, point: u32) -> Self {
        JobKey { subject: subject.into(), stage: stage.into(), point }
    }

    /// The seed-derivation label: `subject/stage/point`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.subject, self.stage, self.point)
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.subject, self.stage, self.point)
    }
}

/// One planned unit of work.
#[derive(Debug, Clone)]
pub struct Job<T> {
    /// Ordered identity.
    pub key: JobKey,
    /// Telemetry scope for events this job records (`None` inherits the
    /// parent handle's scope).
    pub scope: Option<&'static str>,
    /// Worker input.
    pub input: T,
}

/// What a running job can see about itself.
#[derive(Debug)]
pub struct JobCtx<'a> {
    /// The job's key.
    pub key: &'a JobKey,
    /// Canonical index of this job within the plan (key order).
    pub index: usize,
    /// This job's derived RNG seed: `derive_seed(master_seed, key.label())`.
    /// Feed it to `RngStream::derive` for named sub-streams.
    pub seed: u64,
    /// Buffered telemetry handle: events recorded here are merged into the
    /// shared sink in canonical job order after the batch completes.
    pub telemetry: Telemetry,
}

/// One job's output, tagged with its key.
#[derive(Debug, Clone)]
pub struct JobResult<O> {
    /// The job's key.
    pub key: JobKey,
    /// What the worker returned.
    pub output: O,
}

/// An ordered batch of independent jobs sharing one master seed.
#[derive(Debug, Clone)]
pub struct ExperimentPlan<T> {
    master_seed: u64,
    job_telemetry_capacity: usize,
    jobs: Vec<Job<T>>,
}

impl<T> ExperimentPlan<T> {
    /// An empty plan deriving job seeds from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        ExperimentPlan {
            master_seed,
            job_telemetry_capacity: DEFAULT_JOB_TELEMETRY_CAPACITY,
            jobs: Vec::new(),
        }
    }

    /// Override the per-job telemetry buffer capacity.
    pub fn with_job_telemetry_capacity(mut self, capacity: usize) -> Self {
        self.job_telemetry_capacity = capacity;
        self
    }

    /// Add a job inheriting the parent telemetry scope.
    pub fn push(&mut self, key: JobKey, input: T) {
        self.jobs.push(Job { key, scope: None, input });
    }

    /// Add a job whose telemetry events carry `scope`.
    pub fn push_scoped(&mut self, key: JobKey, scope: &'static str, input: T) {
        self.jobs.push(Job { key, scope: Some(scope), input });
    }

    /// Number of planned jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The planned jobs, in insertion order.
    pub fn jobs(&self) -> &[Job<T>] {
        &self.jobs
    }

    /// Execute the plan on `exec` and reduce deterministically.
    ///
    /// Jobs run in (or are stolen out of) canonical key order; the
    /// returned results are in canonical key order; per-job telemetry
    /// buffers are replayed into `parent` in canonical key order. The
    /// output is therefore byte-identical for any worker count, including
    /// the inline serial path.
    ///
    /// Panics (via `assert!`) if two jobs share a key — duplicate
    /// identities would make the canonical order, and the derived seeds,
    /// ambiguous.
    pub fn run<O, F>(&self, exec: &Executor, parent: &Telemetry, f: F) -> Vec<JobResult<O>>
    where
        T: Sync,
        O: Send,
        F: Fn(&JobCtx<'_>, &T) -> O + Sync,
    {
        let ordered = self.ordered_jobs();

        let completed = exec.par_map(&ordered, |index, job| {
            let scope = job.scope.unwrap_or_else(|| parent.scope());
            let recorder = JobRecorder::fork(parent, scope, self.job_telemetry_capacity);
            let ctx = JobCtx {
                key: &job.key,
                index,
                seed: derive_seed(self.master_seed, &job.key.label()),
                telemetry: recorder.handle(),
            };
            (f(&ctx, &job.input), recorder)
        });

        // Deterministic reduce: par_map already restored canonical order,
        // so replaying each job's buffer in sequence yields one stream
        // that no scheduling decision can perturb.
        completed
            .into_iter()
            .zip(ordered)
            .map(|((output, recorder), job)| {
                recorder.merge_into(parent);
                JobResult { key: job.key.clone(), output }
            })
            .collect()
    }

    /// Cancellable variant of [`ExperimentPlan::run`].
    ///
    /// Jobs return `Result<O, Cancelled>` and should poll `cancel` at
    /// their safe points (the streaming path checks at chunk boundaries);
    /// once the token trips, unstarted jobs are never claimed. Telemetry
    /// from every job that *did* run — including the one that observed the
    /// cancellation mid-flight — is still merged into `parent` in
    /// canonical key order, so a cancelled run flushes a deterministic
    /// partial event stream rather than dropping it.
    ///
    /// Returns `Err(Cancelled)` if any job was skipped or stopped early;
    /// `Ok` results are exactly [`ExperimentPlan::run`]'s, in canonical
    /// key order. A panicking job propagates its panic, as with `run`.
    pub fn run_cancellable<O, F>(
        &self,
        exec: &Executor,
        parent: &Telemetry,
        cancel: &crate::CancelToken,
        f: F,
    ) -> Result<Vec<JobResult<O>>, crate::Cancelled>
    where
        T: Sync,
        O: Send,
        F: Fn(&JobCtx<'_>, &T) -> Result<O, crate::Cancelled> + Sync,
    {
        let ordered = self.ordered_jobs();

        let completed = exec.try_par_map_with_cancel(&ordered, cancel, |index, job| {
            let scope = job.scope.unwrap_or_else(|| parent.scope());
            let recorder = JobRecorder::fork(parent, scope, self.job_telemetry_capacity);
            let ctx = JobCtx {
                key: &job.key,
                index,
                seed: derive_seed(self.master_seed, &job.key.label()),
                telemetry: recorder.handle(),
            };
            (f(&ctx, &job.input), recorder)
        });

        let mut results = Vec::with_capacity(ordered.len());
        let mut stopped = false;
        for (slot, job) in completed.into_iter().zip(ordered) {
            match slot {
                None => stopped = true,
                Some(Err(job_panic)) => {
                    // idse-lint: allow(panic-in-library, reason = "re-raises a job panic the executor contained for slot accounting; swallowing it would report a poisoned run as a clean cancellation")
                    panic!("plan job panicked; contain it inside the job: {job_panic}")
                }
                Some(Ok((output, recorder))) => {
                    // Flush partial telemetry even for the job that hit
                    // the cancellation point — canonical order is intact
                    // because slots are walked in key order.
                    recorder.merge_into(parent);
                    match output {
                        Ok(output) => results.push(JobResult { key: job.key.clone(), output }),
                        Err(crate::Cancelled) => stopped = true,
                    }
                }
            }
        }
        if stopped || cancel.is_cancelled() {
            return Err(crate::Cancelled);
        }
        Ok(results)
    }

    /// Sort jobs into canonical key order and reject ambiguous identities.
    fn ordered_jobs(&self) -> Vec<&Job<T>> {
        let mut ordered: Vec<&Job<T>> = self.jobs.iter().collect();
        ordered.sort_by(|a, b| a.key.cmp(&b.key));
        for pair in ordered.windows(2) {
            assert!(pair[0].key != pair[1].key, "duplicate job key {}", pair[0].key);
        }
        // Distinct keys can still join to one label when a subject or
        // stage contains '/' — ("a/b","c",0) and ("a","b/c",0) both label
        // "a/b/c/0" — and identical labels mean identical derived seeds.
        let mut labels: Vec<String> = ordered.iter().map(|j| j.key.label()).collect();
        labels.sort_unstable();
        for pair in labels.windows(2) {
            assert!(
                pair[0] != pair[1],
                "job keys collide after label join: {} — a '/' inside a subject or stage \
                 makes distinct keys derive identical seeds",
                pair[0]
            );
        }
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_telemetry::MemorySink;

    fn plan_of(keys: &[(&str, &str, u32)]) -> ExperimentPlan<u32> {
        let mut plan = ExperimentPlan::new(7);
        for (i, (subject, stage, point)) in keys.iter().enumerate() {
            plan.push(JobKey::new(*subject, *stage, *point), i as u32);
        }
        plan
    }

    #[test]
    fn results_come_back_in_key_order_regardless_of_insertion() {
        let plan = plan_of(&[("b", "sweep", 1), ("a", "sweep", 0), ("a", "operate", 0)]);
        let results =
            plan.run(&Executor::new(4), &Telemetry::disabled(), |ctx, &input| (ctx.index, input));
        let keys: Vec<String> = results.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(keys, vec!["a/operate/0", "a/sweep/0", "b/sweep/1"]);
        // Outputs travel with their keys, not with insertion order.
        assert_eq!(results[1].output, (1, 1));
        assert_eq!(results[2].output, (2, 0));
    }

    #[test]
    fn job_seeds_are_scheduling_independent() {
        let plan = plan_of(&[("p", "sweep", 0), ("p", "sweep", 1), ("q", "sweep", 0)]);
        let seeds = |workers| {
            plan.run(&Executor::new(workers), &Telemetry::disabled(), |ctx, _| ctx.seed)
                .into_iter()
                .map(|r| r.output)
                .collect::<Vec<u64>>()
        };
        let serial = seeds(1);
        assert_eq!(serial, seeds(8));
        assert_eq!(serial[0], idse_sim::derive_seed(7, "p/sweep/0"));
        assert_eq!(serial.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
    }

    #[test]
    fn telemetry_merges_in_key_order_at_any_worker_count() {
        let stream = |workers: usize| {
            let sink = MemorySink::new(1 << 12);
            let parent = Telemetry::new(sink.clone());
            let mut plan = ExperimentPlan::new(0);
            for subject in ["beta", "alpha", "gamma"] {
                for point in 0..4u32 {
                    plan.push_scoped(JobKey::new(subject, "stage", point), "s", point);
                }
            }
            plan.run(&Executor::new(workers), &parent, |ctx, &point| {
                ctx.telemetry.counter(u64::from(point), "job.point", u64::from(point) + 1);
            });
            sink.events().iter().map(|e| e.to_jsonl()).collect::<Vec<_>>()
        };
        let serial = stream(1);
        assert_eq!(serial.len(), 12);
        assert_eq!(serial, stream(2));
        assert_eq!(serial, stream(16));
    }

    #[test]
    #[should_panic(expected = "duplicate job key")]
    fn duplicate_keys_are_rejected() {
        let plan = plan_of(&[("a", "sweep", 0), ("a", "sweep", 0)]);
        plan.run(&Executor::serial(), &Telemetry::disabled(), |_, _| ());
    }

    #[test]
    fn run_cancellable_matches_run_when_never_cancelled() {
        let plan = plan_of(&[("b", "sweep", 1), ("a", "sweep", 0), ("a", "operate", 0)]);
        let baseline =
            plan.run(&Executor::serial(), &Telemetry::disabled(), |ctx, &input| (ctx.seed, input));
        for workers in [1, 4] {
            let cancellable = plan
                .run_cancellable(
                    &Executor::new(workers),
                    &Telemetry::disabled(),
                    &crate::CancelToken::new(),
                    |ctx, &input| Ok((ctx.seed, input)),
                )
                .expect("uncancelled plan completes");
            let pairs: Vec<_> = cancellable.iter().map(|r| (&r.key, r.output)).collect();
            let base: Vec<_> = baseline.iter().map(|r| (&r.key, r.output)).collect();
            assert_eq!(pairs, base, "{workers} workers changed the bytes");
        }
    }

    #[test]
    fn cancellation_flushes_partial_telemetry_in_key_order() {
        let sink = MemorySink::new(1 << 12);
        let parent = Telemetry::new(sink.clone());
        let mut plan = ExperimentPlan::new(0);
        for point in 0..5u32 {
            plan.push_scoped(JobKey::new("p", "stage", point), "s", point);
        }
        // The fuse trips inside job 2: jobs 0 and 1 complete, job 2 stops
        // after recording its first event, jobs 3 and 4 never run.
        let token = crate::CancelToken::after_checkpoints(3);
        let outcome = plan.run_cancellable(&Executor::serial(), &parent, &token, |ctx, &point| {
            ctx.telemetry.counter(u64::from(point), "job.start", u64::from(point));
            token.guard()?;
            ctx.telemetry.counter(u64::from(point), "job.end", u64::from(point));
            Ok(point)
        });
        assert!(outcome.is_err(), "the tripped fuse cancels the plan");
        let names: Vec<String> =
            sink.events().iter().map(|e| format!("{}@{}", e.name, e.at)).collect();
        assert_eq!(
            names,
            vec!["job.start@0", "job.end@0", "job.start@1", "job.end@1", "job.start@2"],
            "partial telemetry is flushed deterministically up to the cancellation point"
        );
    }

    #[test]
    #[should_panic(expected = "collide after label join")]
    fn label_join_collisions_are_rejected() {
        // Distinct keys, identical "subject/stage/point" label — the
        // derived seeds would silently coincide.
        let plan = plan_of(&[("a/b", "c", 0), ("a", "b/c", 0)]);
        plan.run(&Executor::serial(), &Telemetry::disabled(), |_, _| ());
    }
}
