//! Cooperative cancellation and bounded admission for long-running plans.
//!
//! Batch evaluation never needed to stop early: a `par_map` ran to the end
//! of its input and the process exited. A long-lived evaluation service
//! does — a client can cancel a queued or in-flight job, and the daemon
//! must bound how much work it admits at once. Both facilities live here,
//! in the one crate where cross-thread state is allowed, and both are
//! built from plain atomics so observing them costs nothing on the hot
//! path:
//!
//! * [`CancelToken`] — a shared flag jobs poll at their natural safe
//!   points (chunk boundaries of the streaming path, job starts of the
//!   batch path). For deterministic tests it carries an optional
//!   *checkpoint fuse*: arm it with `n` and the `n`-th checkpoint observes
//!   cancellation, at any worker count, without any timing involved.
//! * [`SlotPool`] — a counting semaphore whose permits are RAII
//!   [`SlotGuard`]s. A job that finishes, cancels, *or panics* releases
//!   its slot when the guard drops (panics unwind through
//!   `catch_unwind` inside [`Executor::try_par_map`]), so a poisoned job
//!   can never leak queue capacity for the life of the process.
//!
//! [`Executor::try_par_map`]: crate::Executor::try_par_map

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The fuse value meaning "no checkpoint budget armed".
const FUSE_UNARMED: u64 = u64::MAX;

/// A job batch (or single job) stopped at a cancellation point.
///
/// Deliberately carries no payload: cancellation is a normal outcome, and
/// everything worth reporting (which jobs completed, what telemetry they
/// flushed) travels through the partial results, not the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug, Default)]
struct CancelState {
    cancelled: AtomicBool,
    /// Remaining checkpoint budget; [`FUSE_UNARMED`] disables the fuse.
    fuse: AtomicU64,
}

/// A shared, clonable cancellation flag with a deterministic test fuse.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// state, so the daemon can hand one end to a running job and keep the
/// other to serve `cancel` requests. Jobs poll cooperatively via
/// [`CancelToken::checkpoint`] at safe points — nothing is interrupted
/// mid-chunk, which is what keeps partially-cancelled runs deterministic.
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token: not cancelled, no fuse armed.
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                fuse: AtomicU64::new(FUSE_UNARMED),
            }),
        }
    }

    /// A token whose `n`-th [`checkpoint`](CancelToken::checkpoint) call
    /// observes cancellation — the deterministic way to stop a serial run
    /// at an exact chunk boundary. `n == 0` is already cancelled.
    pub fn after_checkpoints(n: u64) -> Self {
        let token = CancelToken::new();
        token.arm_after_checkpoints(n);
        token
    }

    /// Arm (or re-arm) the checkpoint fuse on an existing token: the
    /// `n`-th subsequent checkpoint observes cancellation. The daemon uses
    /// this to schedule a mid-flight cancel against a job that has not
    /// started yet.
    pub fn arm_after_checkpoints(&self, n: u64) {
        if n == 0 {
            self.cancel();
        } else {
            self.state.fuse.store(n, Ordering::Relaxed);
        }
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (by [`cancel`] or by an
    /// exhausted fuse).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// Cooperative cancellation point: burns one unit of the fuse (if
    /// armed) and reports whether the caller should stop.
    ///
    /// Jobs call this at chunk boundaries; a `true` return means "flush
    /// what you have and return [`Cancelled`]".
    pub fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        let burned = self.state.fuse.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fuse| {
            if fuse == FUSE_UNARMED {
                None
            } else {
                Some(fuse.saturating_sub(1))
            }
        });
        if burned == Ok(1) {
            // This checkpoint took the fuse from 1 to 0: trip the flag so
            // every clone (and every later checkpoint) observes it.
            self.cancel();
            return true;
        }
        false
    }

    /// Checkpoint as a `Result`, for `?`-style early return from jobs.
    pub fn guard(&self) -> Result<(), Cancelled> {
        if self.checkpoint() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[derive(Debug)]
struct SlotState {
    capacity: usize,
    in_use: AtomicUsize,
}

/// A counting semaphore bounding how many jobs are admitted at once.
///
/// Admission is explicit ([`try_acquire`] never blocks — a full pool is a
/// *backpressure signal*, not a wait), and release is RAII: dropping the
/// [`SlotGuard`] frees the slot. Because [`Executor::try_par_map`] runs
/// each job under `catch_unwind`, a guard held by a panicking job is
/// dropped during unwind — the poisoned job's capacity comes back
/// deterministically, in the same process, for the next plan to claim.
///
/// [`try_acquire`]: SlotPool::try_acquire
/// [`Executor::try_par_map`]: crate::Executor::try_par_map
#[derive(Debug, Clone)]
pub struct SlotPool {
    state: Arc<SlotState>,
}

impl SlotPool {
    /// A pool with `capacity` slots. Zero capacity is allowed and rejects
    /// every acquire — the "drain and refuse new work" configuration.
    pub fn new(capacity: usize) -> Self {
        SlotPool { state: Arc::new(SlotState { capacity, in_use: AtomicUsize::new(0) }) }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Slots currently held by live guards.
    pub fn in_use(&self) -> usize {
        self.state.in_use.load(Ordering::Relaxed)
    }

    /// Slots available right now.
    pub fn available(&self) -> usize {
        self.state.capacity.saturating_sub(self.in_use())
    }

    /// Claim a slot without blocking; `None` means the pool is full and
    /// the caller should reject the work with a reason.
    pub fn try_acquire(&self) -> Option<SlotGuard> {
        let claimed =
            self.state.in_use.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                if used < self.state.capacity {
                    Some(used + 1)
                } else {
                    None
                }
            });
        claimed.ok().map(|_| SlotGuard { state: Arc::clone(&self.state) })
    }
}

/// An RAII permit from a [`SlotPool`]; dropping it releases the slot.
///
/// Deliberately not `Clone`: one guard, one slot.
#[derive(Debug)]
pub struct SlotGuard {
    state: Arc<SlotState>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.state.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_never_cancel() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        for _ in 0..1000 {
            assert!(!token.checkpoint());
        }
        assert!(token.guard().is_ok());
    }

    #[test]
    fn cancel_is_visible_to_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.checkpoint());
        assert_eq!(clone.guard(), Err(Cancelled));
    }

    #[test]
    fn fuse_trips_on_the_nth_checkpoint_exactly() {
        let token = CancelToken::after_checkpoints(3);
        assert!(!token.checkpoint(), "checkpoint 1 passes");
        assert!(!token.checkpoint(), "checkpoint 2 passes");
        assert!(!token.is_cancelled(), "fuse burns silently until it trips");
        assert!(token.checkpoint(), "checkpoint 3 observes cancellation");
        assert!(token.is_cancelled(), "the tripped fuse latches the shared flag");
        assert!(token.checkpoint(), "later checkpoints stay cancelled");
    }

    #[test]
    fn zero_checkpoint_fuse_is_immediately_cancelled() {
        let token = CancelToken::after_checkpoints(0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn rearming_an_existing_token_schedules_a_future_trip() {
        let token = CancelToken::new();
        assert!(!token.checkpoint());
        token.arm_after_checkpoints(2);
        assert!(!token.checkpoint());
        assert!(token.clone().checkpoint(), "the fuse is shared state, clones trip it");
    }

    #[test]
    fn slots_are_claimed_up_to_capacity_and_released_on_drop() {
        let pool = SlotPool::new(2);
        assert_eq!((pool.capacity(), pool.available()), (2, 2));
        let a = pool.try_acquire().expect("slot 1 free");
        let b = pool.try_acquire().expect("slot 2 free");
        assert!(pool.try_acquire().is_none(), "full pool rejects without blocking");
        assert_eq!(pool.in_use(), 2);
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.try_acquire().expect("released slot is reusable");
        drop(b);
        drop(c);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn zero_capacity_pool_rejects_everything() {
        let pool = SlotPool::new(0);
        assert!(pool.try_acquire().is_none());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn a_panicking_holder_releases_its_slot() {
        let pool = SlotPool::new(1);
        let result = std::panic::catch_unwind({
            let pool = pool.clone();
            move || {
                let _guard = pool.try_acquire().expect("slot free");
                panic!("poisoned job");
            }
        });
        assert!(result.is_err());
        assert_eq!(pool.in_use(), 0, "unwinding dropped the guard");
        assert!(pool.try_acquire().is_some(), "capacity is back for the next job");
    }
}
