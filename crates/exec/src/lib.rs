//! # idse-exec — deterministic parallel experiment execution
//!
//! Every number the scorecard aggregates (`S = ΣΣ U·W`) comes from
//! independent simulated experiments: per-product evaluations, sensitivity
//! sweep points, zero-loss throughput probes. Those jobs are pure
//! functions of their inputs, so they can run on every core the machine
//! has — *provided* nothing about scheduling ever reaches the results.
//! This crate is the one place in the workspace where threads exist
//! (enforced by the `thread-outside-exec` lint rule), and it is built so
//! that output is **byte-identical at any worker count**:
//!
//! * jobs are identified by an ordered [`JobKey`] and executed from a
//!   shared queue that idle workers steal from — dynamic load balancing
//!   without any per-worker state that could leak into results;
//! * each job gets its own derived RNG seed (a pure function of the plan's
//!   master seed and the job's key via [`idse_sim::derive_seed`]) and its
//!   own buffered telemetry recorder ([`idse_telemetry::JobRecorder`]);
//! * results and telemetry buffers are merged in **canonical job-key
//!   order** by [`reduce_in_order`], never in completion order.
//!
//! The serial path (`jobs = 1`, or one-element inputs) runs inline on the
//! calling thread with no pool at all, and produces the same bytes.
//!
//! ```
//! use idse_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod plan;

pub use cancel::{CancelToken, Cancelled, SlotGuard, SlotPool};
pub use plan::{ExperimentPlan, Job, JobCtx, JobKey, JobResult};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A job that panicked inside [`Executor::try_par_map`].
///
/// Panics are contained at the job boundary so one poisoned input cannot
/// take down the whole batch (or the worker pool): every other job still
/// runs and returns its normal output. The error carries the submission
/// index and the panic payload's message, both pure functions of the
/// input batch — so a failing batch is as deterministic as a passing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a fixed placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Stringify a caught panic payload deterministically.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-size pool of workers for deterministic parallel maps.
///
/// The executor owns no threads between calls: each [`Executor::par_map`]
/// spins up a scoped pool (on the vendored `crossbeam` shim over
/// `std::thread::scope`), drains the job queue, joins every worker, and
/// merges the results in index order. `workers == 1` bypasses the pool
/// entirely — the serial reference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    /// The auto-sized executor (`Executor::new(0)`).
    fn default() -> Self {
        Executor::new(0)
    }
}

impl Executor {
    /// An executor with `jobs` workers; `0` means "one per available
    /// core" (`std::thread::available_parallelism`).
    pub fn new(jobs: usize) -> Self {
        let workers = if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs
        };
        Executor { workers }
    }

    /// The single-worker executor: everything runs inline on the calling
    /// thread, in canonical order, with no pool.
    pub fn serial() -> Self {
        Executor { workers: 1 }
    }

    /// How many workers a `par_map` may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `items` in parallel; the output is in input order and
    /// byte-identical for any worker count.
    ///
    /// `f` receives `(index, &item)` and must be a pure function of them
    /// (plus captured shared state it only reads). Workers claim the next
    /// unclaimed index from a shared queue, so a slow job never stalls the
    /// rest of the batch; completion order is then erased by sorting the
    /// `(index, output)` pairs back into index order.
    pub fn par_map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        self.try_par_map(items, f)
            .into_iter()
            .map(|r| r.expect("par_map job panicked; use try_par_map to contain job panics"))
            .collect()
    }

    /// Panic-containing variant of [`Executor::par_map`]: each job runs
    /// under `catch_unwind`, and a panicking job yields
    /// `Err(`[`JobPanic`]`)` in its submission slot instead of poisoning
    /// the pool.
    ///
    /// The result vector is always `items.len()` long and in submission
    /// order; one poisoned job of a batch leaves every other slot's bytes
    /// identical to a run without it, at any worker count.
    pub fn try_par_map<T, O, F>(&self, items: &[T], f: F) -> Vec<Result<O, JobPanic>>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        // Contain the panic at the job boundary: the worker loop (and the
        // serial path) below never unwinds through `run`, so the scope
        // join stays infallible and the claim queue keeps draining.
        let run = |i: usize, item: &T| -> Result<O, JobPanic> {
            catch_unwind(AssertUnwindSafe(|| f(i, item)))
                .map_err(|payload| JobPanic { index: i, message: panic_message(payload) })
        };

        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| run(i, item)).collect();
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<O, JobPanic>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut completed = Vec::new();
                            loop {
                                // Steal the next unclaimed job from the shared
                                // queue; Relaxed suffices — the only contended
                                // state is the claim counter itself, and job
                                // results flow back through the join.
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                completed.push((i, run(i, &items[i])));
                            }
                            completed
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("executor worker does not panic"))
                    .collect()
            })
            .expect("executor scope does not panic");

        reduce_in_order(per_worker.into_iter().flatten().collect(), n)
    }

    /// Cancellable variant of [`Executor::try_par_map`]: workers stop
    /// *claiming* new jobs once `cancel` observes cancellation, and every
    /// never-claimed slot comes back as `None`.
    ///
    /// Jobs that were already claimed run to completion — cancellation is
    /// cooperative, so `f` itself should poll the token at its safe points
    /// (the streaming path checks at chunk boundaries) and encode an early
    /// stop in its output type. Which slots are `None` is deterministic on
    /// the serial path (a prefix of completed jobs, then `None`s); under a
    /// pool it depends on which claims raced the flag, which is why every
    /// deterministic cancellation test pins `--jobs 1` or uses a
    /// checkpoint fuse the jobs burn themselves.
    pub fn try_par_map_with_cancel<T, O, F>(
        &self,
        items: &[T],
        cancel: &CancelToken,
        f: F,
    ) -> Vec<Option<Result<O, JobPanic>>>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        let run = |i: usize, item: &T| -> Result<O, JobPanic> {
            catch_unwind(AssertUnwindSafe(|| f(i, item)))
                .map_err(|payload| JobPanic { index: i, message: panic_message(payload) })
        };

        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| if cancel.is_cancelled() { None } else { Some(run(i, item)) })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<O, JobPanic>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut completed = Vec::new();
                            loop {
                                if cancel.is_cancelled() {
                                    break;
                                }
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                completed.push((i, run(i, &items[i])));
                            }
                            completed
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("executor worker does not panic"))
                    .collect()
            })
            .expect("executor scope does not panic");

        let mut slots: Vec<Option<Result<O, JobPanic>>> = (0..n).map(|_| None).collect();
        for (i, result) in per_worker.into_iter().flatten() {
            assert!(slots[i].is_none(), "job {i} completed twice");
            slots[i] = Some(result);
        }
        slots
    }
}

/// Run `worker` on a scoped helper thread while `foreground` runs on the
/// calling thread; returns both results after the worker joins.
///
/// This exists for the evaluation daemon: its socket accept loop and its
/// job runner are two long-lived loops, and the `thread-outside-exec` lint
/// rule confines thread spawning to this crate. The scope guarantees the
/// worker cannot outlive the borrows it captures, and a worker panic
/// propagates after `foreground` returns rather than being silently lost.
pub fn with_worker<R, S>(
    worker: impl FnOnce() -> R + Send,
    foreground: impl FnOnce() -> S,
) -> (R, S)
where
    R: Send,
{
    crossbeam::thread::scope(|scope| {
        let handle = scope.spawn(move |_| worker());
        let fg = foreground();
        let bg = handle.join().expect("background worker does not panic");
        (bg, fg)
    })
    .expect("worker scope does not panic")
}

/// Park the calling thread for one polling interval (a few milliseconds).
///
/// Polling loops that wait on cross-thread state (the daemon's
/// non-blocking accept loop, a drain loop waiting for a runner) call this
/// between probes instead of spinning. Centralized here so the interval is
/// one knob and no other crate needs a thread API for it.
pub fn breathe() {
    std::thread::sleep(std::time::Duration::from_millis(2));
}

/// The deterministic reduce step: erase completion order.
///
/// Takes the `(index, output)` pairs of a completed batch — in whatever
/// order workers finished them — and returns the outputs in index order.
/// Panics (via `assert!`) unless the indices are exactly `0..expected`,
/// each present once: a job that ran twice or never is a scheduling bug
/// that must never be silently papered over by a lossy merge.
pub fn reduce_in_order<O>(mut completed: Vec<(usize, O)>, expected: usize) -> Vec<O> {
    assert_eq!(completed.len(), expected, "every job must complete exactly once");
    completed.sort_by_key(|&(i, _)| i);
    for (slot, &(i, _)) in completed.iter().enumerate() {
        assert_eq!(slot, i, "job indices must be dense and unique");
    }
    completed.into_iter().map(|(_, output)| output).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let exec = Executor::new(8);
        let out = exec.par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| {
            // A float reduction whose result would expose any reordering.
            (0..x).map(|k| (k as f64).sqrt()).sum::<f64>()
        };
        let serial = Executor::serial().par_map(&items, f);
        for workers in [2, 3, 8, 64] {
            let parallel = Executor::new(workers).par_map(&items, f);
            assert_eq!(serial, parallel, "{workers} workers changed the bytes");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = vec![];
        assert!(exec.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.par_map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn auto_sizing_never_yields_zero_workers() {
        assert!(Executor::new(0).workers() >= 1);
        assert_eq!(Executor::new(5).workers(), 5);
        assert_eq!(Executor::serial().workers(), 1);
    }

    #[test]
    fn reduce_in_order_sorts_completion_order_away() {
        let completed = vec![(2, "c"), (0, "a"), (1, "b")];
        assert_eq!(reduce_in_order(completed, 3), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "every job must complete exactly once")]
    fn reduce_rejects_missing_jobs() {
        reduce_in_order(vec![(0, ())], 2);
    }

    #[test]
    #[should_panic(expected = "dense and unique")]
    fn reduce_rejects_duplicate_indices() {
        reduce_in_order(vec![(0, ()), (0, ())], 2);
    }

    /// One poisoned job out of sixteen: the other fifteen still complete,
    /// with byte-identical outputs at one worker and at eight.
    #[test]
    fn one_poisoned_job_leaves_the_rest_intact() {
        let items: Vec<u64> = (0..16).collect();
        let f = |_: usize, &x: &u64| {
            assert!(x != 7, "poisoned input {x}");
            (0..x).map(|k| (k as f64).sqrt()).sum::<f64>()
        };

        let serial = Executor::serial().try_par_map(&items, f);
        let parallel = Executor::new(8).try_par_map(&items, f);
        assert_eq!(serial, parallel, "worker count changed a faulted batch");

        assert_eq!(serial.len(), 16);
        for (i, slot) in serial.iter().enumerate() {
            if i == 7 {
                let err = slot.as_ref().expect_err("job 7 must be the poisoned one");
                assert_eq!(err.index, 7);
                assert!(err.message.contains("poisoned input 7"), "got: {}", err.message);
            } else {
                let clean = f(i, &items[i]);
                assert_eq!(slot.as_ref().expect("healthy job completes"), &clean);
            }
        }
    }

    #[test]
    fn try_par_map_matches_par_map_on_healthy_batches() {
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, &x: &u64| i as u64 + x * x;
        let tried: Vec<u64> = Executor::new(4)
            .try_par_map(&items, f)
            .into_iter()
            .map(|r| r.expect("healthy batch"))
            .collect();
        assert_eq!(tried, Executor::new(4).par_map(&items, f));
    }

    #[test]
    #[should_panic(expected = "par_map job panicked")]
    fn par_map_still_propagates_job_panics() {
        let items = [1u32, 2, 3];
        Executor::serial().par_map(&items, |_, &x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn job_panic_display_is_deterministic() {
        let err = JobPanic { index: 3, message: "boom".to_string() };
        assert_eq!(err.to_string(), "job 3 panicked: boom");
    }

    #[test]
    fn uncancelled_map_matches_try_par_map() {
        let items: Vec<u64> = (0..32).collect();
        let f = |i: usize, &x: &u64| i as u64 + x;
        for workers in [1, 4] {
            let slots =
                Executor::new(workers).try_par_map_with_cancel(&items, &CancelToken::new(), f);
            let outputs: Vec<u64> = slots
                .into_iter()
                .map(|s| s.expect("no slot skipped").expect("no job panicked"))
                .collect();
            assert_eq!(outputs, Executor::new(workers).par_map(&items, f));
        }
    }

    #[test]
    fn serial_cancellation_stops_at_a_deterministic_boundary() {
        // The fuse trips inside job 2's checkpoint; jobs 3.. are never
        // claimed. Serial path, so the split point is exact.
        let token = CancelToken::after_checkpoints(3);
        let items: Vec<u64> = (0..8).collect();
        let slots = Executor::serial().try_par_map_with_cancel(&items, &token, |_, &x| {
            token.checkpoint();
            x * 10
        });
        let done: Vec<Option<u64>> =
            slots.into_iter().map(|s| s.map(|r| r.expect("no panics"))).collect();
        assert_eq!(done, vec![Some(0), Some(10), Some(20), None, None, None, None, None]);
    }

    #[test]
    fn pre_cancelled_batches_run_nothing() {
        let token = CancelToken::new();
        token.cancel();
        for workers in [1, 4] {
            let slots =
                Executor::new(workers).try_par_map_with_cancel(&[1u32, 2, 3], &token, |_, &x| x);
            assert!(slots.iter().all(Option::is_none), "{workers} workers ran a cancelled batch");
        }
    }

    #[test]
    fn parallel_cancellation_keeps_completed_slots_intact() {
        let token = CancelToken::after_checkpoints(5);
        let items: Vec<u64> = (0..64).collect();
        let slots = Executor::new(4).try_par_map_with_cancel(&items, &token, |i, &x| {
            token.checkpoint();
            assert_eq!(i as u64, x);
            x + 100
        });
        assert_eq!(slots.len(), 64);
        let completed = slots.iter().flatten().count();
        assert!(completed < 64, "the fuse stopped the batch early");
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some(result) = slot {
                assert_eq!(result.expect("no panics"), i as u64 + 100);
            }
        }
    }

    /// The satellite fix end-to-end: a batch with a cancelled tail *and* a
    /// poisoned job releases every slot it claimed, so a follow-up plan in
    /// the same process gets the full queue capacity back.
    #[test]
    fn cancelled_and_poisoned_jobs_release_their_slots() {
        let pool = SlotPool::new(4);
        let token = CancelToken::after_checkpoints(2);
        let items: Vec<u64> = (0..4).collect();
        let slots = Executor::serial().try_par_map_with_cancel(&items, &token, |i, &x| {
            let _slot = pool.try_acquire().expect("admission bounded by the pool");
            token.checkpoint();
            assert!(i != 1, "poisoned input");
            x
        });
        // Job 0 completed, job 1 panicked (guard dropped during unwind),
        // job 2 tripped the fuse, job 3 was never claimed.
        assert!(slots[0].as_ref().expect("ran").is_ok());
        assert!(slots[1].as_ref().expect("ran").is_err());
        assert!(slots[3].is_none());
        assert_eq!(pool.in_use(), 0, "every claimed slot was released");

        // Follow-up plan in the same process: full capacity is available.
        let followup =
            Executor::serial().try_par_map_with_cancel(&items, &CancelToken::new(), |_, &x| {
                let _slot = pool.try_acquire().expect("freed capacity is claimable");
                x * 2
            });
        let outputs: Vec<u64> =
            followup.into_iter().map(|s| s.expect("ran").expect("clean")).collect();
        assert_eq!(outputs, vec![0, 2, 4, 6]);
    }

    #[test]
    fn with_worker_returns_both_sides() {
        let flag = AtomicUsize::new(0);
        let (bg, fg) = with_worker(
            || {
                flag.store(7, Ordering::Relaxed);
                "worker"
            },
            || "foreground",
        );
        assert_eq!((bg, fg), ("worker", "foreground"));
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }
}
