//! Property tests for the deterministic reduce step.
//!
//! The invariant the whole crate rests on: `reduce_in_order` erases job
//! completion order. Whatever permutation the scheduler produces, the
//! reduce returns exactly the outputs in index order.

use idse_exec::reduce_in_order;
use proptest::prelude::*;

proptest! {
    /// Reducing any permutation of a completed batch yields the same bytes.
    #[test]
    fn reduce_is_permutation_invariant(
        outputs in prop::collection::vec(any::<u64>(), 1..64),
        swaps in prop::collection::vec(any::<prop::sample::Index>(), 0..256),
    ) {
        let n = outputs.len();
        // The canonical completion record: job i produced outputs[i].
        let mut completed: Vec<(usize, u64)> =
            outputs.iter().copied().enumerate().collect();
        // Scramble completion order with an arbitrary swap sequence — a
        // stand-in for any scheduler interleaving.
        for pair in swaps.chunks(2) {
            if let [a, b] = pair {
                completed.swap(a.index(n), b.index(n));
            }
        }
        let reduced = reduce_in_order(completed, n);
        prop_assert_eq!(reduced, outputs);
    }

    /// The reduce never invents, drops, or reorders payloads even when the
    /// payloads themselves collide (duplicate values under distinct indices).
    #[test]
    fn reduce_handles_colliding_payloads(
        value in any::<u32>(),
        n in 1usize..32,
        swaps in prop::collection::vec(any::<prop::sample::Index>(), 0..128),
    ) {
        let mut completed: Vec<(usize, (usize, u32))> =
            (0..n).map(|i| (i, (i, value))).collect();
        for pair in swaps.chunks(2) {
            if let [a, b] = pair {
                completed.swap(a.index(n), b.index(n));
            }
        }
        let reduced = reduce_in_order(completed, n);
        for (slot, &(origin, v)) in reduced.iter().enumerate() {
            prop_assert_eq!(slot, origin);
            prop_assert_eq!(v, value);
        }
    }
}
