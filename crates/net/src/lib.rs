//! # idse-net — packet, flow, and trace model
//!
//! The network substrate for the `idse` testbed. The paper's evaluation
//! methodology depends on replaying "canned data with known attack content on
//! the test network" (§4) and on generating background traffic whose *data
//! portion has realistic content* (lesson 1: random-payload flooding does not
//! exercise payload-inspecting IDSes). This crate provides:
//!
//! * a layered packet model — IPv4 plus TCP/UDP/ICMP ([`packet`]),
//! * wire encoding/decoding with real Internet checksums ([`wire`]),
//! * five-tuple flows with canonical orientation ([`flow`]),
//! * a TCP session synthesizer and tracking state machine ([`tcp`]),
//! * IP fragmentation and policy-parameterized reassembly ([`frag`]),
//! * timestamped, ground-truth-labeled traces with record/replay
//!   ([`trace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod flow;
pub mod frag;
pub mod packet;
pub mod tcp;
pub mod trace;
pub mod wire;

pub use addr::{Cidr, MacAddr};
pub use flow::FlowKey;
pub use packet::{IcmpHeader, Ipv4Header, Packet, TcpFlags, TcpHeader, Transport, UdpHeader};
pub use trace::{GroundTruth, Trace, TraceRecord};
