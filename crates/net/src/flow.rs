//! Five-tuple flows with canonical orientation.
//!
//! The paper notes (§2.2) that load balancers "typically must be aware of
//! TCP sessions so they can consistently send connection-oriented traffic to
//! the appropriate sensor". That requires both directions of a connection
//! to hash identically, which is what the canonical form here provides.

use crate::packet::{IpProtocol, Packet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A directed five-tuple: protocol, source and destination endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// IP protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
}

// Manual Ord support: IpProtocol needs an ordering for canonicalization.
impl PartialOrd for IpProtocol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IpProtocol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.number().cmp(&other.number())
    }
}

impl FlowKey {
    /// Extract the directed flow key of a packet.
    pub fn of(packet: &Packet) -> Self {
        Self {
            protocol: packet.transport.protocol(),
            src: packet.ip.src,
            src_port: packet.transport.src_port().unwrap_or(0),
            dst: packet.ip.dst,
            dst_port: packet.transport.dst_port().unwrap_or(0),
        }
    }

    /// The same flow viewed from the other direction.
    pub fn reversed(&self) -> Self {
        Self {
            protocol: self.protocol,
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }

    /// Direction-independent canonical form: both directions of a
    /// connection map to the same value (the lexicographically smaller
    /// endpoint becomes the "source").
    pub fn canonical(&self) -> Self {
        let a = (self.src, self.src_port);
        let b = (self.dst, self.dst_port);
        if a <= b {
            *self
        } else {
            self.reversed()
        }
    }

    /// A stable 64-bit hash of the canonical form, used by session-aware
    /// load balancers to pick a sensor. FNV-1a over the tuple bytes:
    /// platform-independent, so sensor assignment is reproducible.
    pub fn session_hash(&self) -> u64 {
        let c = self.canonical();
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &x in bytes {
                h ^= x as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&[c.protocol.number()]);
        eat(&c.src.octets());
        eat(&c.src_port.to_be_bytes());
        eat(&c.dst.octets());
        eat(&c.dst_port.to_be_bytes());
        h
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.protocol, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};

    fn key(sp: u16, dp: u16) -> FlowKey {
        FlowKey {
            protocol: IpProtocol::Tcp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            src_port: sp,
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: dp,
        }
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = key(40000, 80);
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert_eq!(k.session_hash(), k.reversed().session_hash());
    }

    #[test]
    fn reversal_is_involutive() {
        let k = key(1, 2);
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn different_flows_hash_differently() {
        // Not a guarantee for all inputs, but these must differ in practice.
        assert_ne!(key(40000, 80).session_hash(), key(40001, 80).session_hash());
        assert_ne!(key(40000, 80).session_hash(), key(40000, 443).session_hash());
    }

    #[test]
    fn extraction_from_packet() {
        let p = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            TcpHeader {
                src_port: 5555,
                dst_port: 22,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        );
        let k = FlowKey::of(&p);
        assert_eq!(k.src_port, 5555);
        assert_eq!(k.dst_port, 22);
        assert_eq!(k.protocol, IpProtocol::Tcp);
    }

    #[test]
    fn display_is_readable() {
        let s = key(1234, 80).to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("10.0.0.2:80"));
    }
}
