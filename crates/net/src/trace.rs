//! Timestamped, ground-truth-labeled traffic traces.
//!
//! The paper's §4 describes the core measurement trick: "we replayed canned
//! data with known attack content on the test network" — observed
//! false-negative ratios are unmeasurable without ground truth. A [`Trace`]
//! is exactly that artifact: a time-ordered packet sequence where every
//! record may carry an attack label. Traces serialize (serde) so canned
//! datasets are portable and replayable, and they merge so background
//! traffic and attack scenarios compose into one test feed.

use crate::packet::Packet;
use idse_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Attack classes the testbed generates. One "attack" may span many
/// packets; the paper itself notes that "even the definition of an attack
/// is not always clear" — we adopt the scenario-instance view: every packet
/// emitted by one scenario instance carries that instance's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackClass {
    /// TCP SYN scan across ports on one host.
    PortScan,
    /// Scan of one port across many hosts.
    HostSweep,
    /// SYN flood denial of service.
    SynFlood,
    /// Repeated failed authentication attempts.
    BruteForceLogin,
    /// Known-exploit payload (signature-matchable content).
    PayloadExploit,
    /// Signature split/hidden via IP fragmentation overlap.
    FragmentationEvasion,
    /// Insider masquerade: stolen credentials used from the wrong host.
    Masquerade,
    /// Data exfiltration tunneled over a benign-looking protocol.
    Tunneling,
    /// Lateral movement exploiting inter-host trust (looks like normal
    /// cluster traffic — the paper's hardest case for distributed systems).
    TrustExploit,
}

impl AttackClass {
    /// All classes, for exhaustive iteration in evaluations.
    pub const ALL: [AttackClass; 9] = [
        AttackClass::PortScan,
        AttackClass::HostSweep,
        AttackClass::SynFlood,
        AttackClass::BruteForceLogin,
        AttackClass::PayloadExploit,
        AttackClass::FragmentationEvasion,
        AttackClass::Masquerade,
        AttackClass::Tunneling,
        AttackClass::TrustExploit,
    ];

    /// Short stable name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::PortScan => "port-scan",
            AttackClass::HostSweep => "host-sweep",
            AttackClass::SynFlood => "syn-flood",
            AttackClass::BruteForceLogin => "brute-force-login",
            AttackClass::PayloadExploit => "payload-exploit",
            AttackClass::FragmentationEvasion => "frag-evasion",
            AttackClass::Masquerade => "masquerade",
            AttackClass::Tunneling => "tunneling",
            AttackClass::TrustExploit => "trust-exploit",
        }
    }
}

/// Ground-truth label on a packet: which attack instance produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Unique id of the attack instance within the trace.
    pub attack_id: u32,
    /// The attack class.
    pub class: AttackClass,
}

/// One trace record: a packet, when it was injected, and its label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Injection time.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
    /// `Some` if this packet belongs to an attack; `None` for benign
    /// background traffic.
    pub truth: Option<GroundTruth>,
}

/// A time-ordered packet trace with ground truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
    /// Whether `records` is currently sorted by time.
    #[serde(skip)]
    sorted: bool,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self { records: Vec::new(), sorted: true }
    }

    /// Append a benign packet.
    pub fn push_benign(&mut self, at: SimTime, packet: Packet) {
        self.push(TraceRecord { at, packet, truth: None });
    }

    /// Append an attack packet.
    pub fn push_attack(&mut self, at: SimTime, packet: Packet, truth: GroundTruth) {
        self.push(TraceRecord { at, packet, truth: Some(truth) });
    }

    /// Append a record.
    pub fn push(&mut self, record: TraceRecord) {
        if let Some(last) = self.records.last() {
            if record.at < last.at {
                self.sorted = false;
            }
        }
        self.records.push(record);
    }

    /// Merge another trace into this one, preserving time order.
    pub fn merge(&mut self, other: Trace) {
        self.records.extend(other.records);
        self.sorted = false;
        self.finish();
    }

    /// Sort records by (time, then original position — stable).
    pub fn finish(&mut self) {
        if !self.sorted {
            self.records.sort_by_key(|r| r.at);
            self.sorted = true;
        }
    }

    /// The records, sorted by time. Panics in debug builds if `finish` was
    /// skipped after out-of-order pushes.
    pub fn records(&self) -> &[TraceRecord] {
        debug_assert!(self.sorted, "call Trace::finish() after out-of-order pushes");
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of attack packets.
    pub fn attack_packets(&self) -> usize {
        self.records.iter().filter(|r| r.truth.is_some()).count()
    }

    /// Distinct attack instances present.
    pub fn attack_instances(&self) -> Vec<GroundTruth> {
        let mut seen = std::collections::BTreeMap::new();
        for r in &self.records {
            if let Some(t) = r.truth {
                seen.entry(t.attack_id).or_insert(t);
            }
        }
        seen.into_values().collect()
    }

    /// Duration from first to last record.
    pub fn span(&self) -> idse_sim::SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.at.saturating_since(f.at),
            _ => idse_sim::SimDuration::ZERO,
        }
    }

    /// Total wire bytes in the trace.
    pub fn wire_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.packet.wire_len() as u64).sum()
    }

    /// Mean offered load in packets per second over the trace span.
    pub fn mean_pps(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.len() as f64 / span
        }
    }

    /// Serialize to JSON (the portable canned-data format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.records).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON produced by [`Trace::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let records: Vec<TraceRecord> = serde_json::from_str(s)?;
        let mut t = Trace { records, sorted: false };
        t.finish();
        Ok(t)
    }

    /// Concatenate `times` time-shifted copies of the trace back to back,
    /// producing a sustained load of the same character (used by the
    /// zero-loss and lethal-dose searches: a single compressed copy is a
    /// transient a stage's buffer can absorb; a *sustained average* cannot
    /// be).
    pub fn repeated(&self, times: u32) -> Trace {
        assert!(times >= 1, "need at least one copy");
        let period = {
            // Span plus one mean inter-arrival gap so copies do not pile up.
            let span = self.span().as_secs_f64();
            let gap = if self.len() > 1 { span / (self.len() - 1) as f64 } else { 0.0 };
            idse_sim::SimDuration::from_secs_f64(span + gap)
        };
        let mut out = Trace::new();
        for k in 0..times {
            let shift = idse_sim::SimDuration::from_secs_f64(period.as_secs_f64() * k as f64);
            for r in &self.records {
                out.push(TraceRecord {
                    at: r.at + shift,
                    // idse-lint: allow(alloc-in-hot-loop, reason = "builds an owned N-times copy of a borrowed trace: the clone is the product, and runs at setup time, not per evaluated record")
                    packet: r.packet.clone(),
                    truth: r.truth,
                });
            }
        }
        out.finish();
        out
    }

    /// Iterate over records whose timestamps are scaled by `factor`
    /// (time-compression replay: the paper's throughput experiments replay
    /// the same canned data at increasing rates).
    pub fn time_scaled(&self, factor: f64) -> Trace {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut out = Trace::new();
        for r in &self.records {
            out.push(TraceRecord {
                at: SimTime::from_secs_f64(r.at.as_secs_f64() / factor),
                // idse-lint: allow(alloc-in-hot-loop, reason = "time-compression replay materializes an owned rescaled trace once per rate step, not per evaluated record")
                packet: r.packet.clone(),
                truth: r.truth,
            });
        }
        out.finish();
        out
    }
}

// serde needs `sorted` restored on deserialize; from_json handles it, but a
// direct serde deserialize would default `sorted` to false and re-sort on
// first finish(), which is safe.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ipv4Header, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;

    fn pkt(n: u8) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, n), Ipv4Addr::new(10, 0, 1, 1)),
            TcpHeader {
                src_port: 1000 + n as u16,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        )
    }

    #[test]
    fn ordered_pushes_stay_sorted() {
        let mut t = Trace::new();
        t.push_benign(SimTime::from_secs(1), pkt(1));
        t.push_benign(SimTime::from_secs(2), pkt(2));
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut bg = Trace::new();
        bg.push_benign(SimTime::from_secs(1), pkt(1));
        bg.push_benign(SimTime::from_secs(3), pkt(2));
        let mut atk = Trace::new();
        atk.push_attack(
            SimTime::from_secs(2),
            pkt(66),
            GroundTruth { attack_id: 1, class: AttackClass::PortScan },
        );
        bg.merge(atk);
        let times: Vec<u64> = bg.records().iter().map(|r| r.at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(bg.attack_packets(), 1);
    }

    #[test]
    fn attack_instances_dedupe() {
        let mut t = Trace::new();
        let g = GroundTruth { attack_id: 7, class: AttackClass::SynFlood };
        for i in 0..5 {
            t.push_attack(SimTime::from_millis(i), pkt(i as u8), g);
        }
        assert_eq!(t.attack_packets(), 5);
        assert_eq!(t.attack_instances(), vec![g]);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new();
        t.push_benign(SimTime::from_secs(1), pkt(1));
        t.push_attack(
            SimTime::from_secs(2),
            pkt(9),
            GroundTruth { attack_id: 3, class: AttackClass::Tunneling },
        );
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.attack_packets(), 1);
        assert_eq!(back.records()[1].truth.unwrap().class, AttackClass::Tunneling);
    }

    #[test]
    fn repeated_extends_span_preserving_rate() {
        let mut t = Trace::new();
        t.push_benign(SimTime::from_secs(0), pkt(1));
        t.push_benign(SimTime::from_secs(1), pkt(2));
        let r = t.repeated(3);
        assert_eq!(r.len(), 6);
        // Period = span (1s) + gap (1s) = 2s between copy starts.
        assert_eq!(r.records()[2].at, SimTime::from_secs(2));
        assert_eq!(r.records()[4].at, SimTime::from_secs(4));
        // len/span has a fencepost: 6 packets over 5 s. The steady-state
        // rate (1 packet/s of period) is preserved.
        assert!((r.mean_pps() - 1.2).abs() < 1e-9, "{}", r.mean_pps());
    }

    #[test]
    fn time_scaling_compresses_span() {
        let mut t = Trace::new();
        t.push_benign(SimTime::from_secs(0), pkt(1));
        t.push_benign(SimTime::from_secs(10), pkt(2));
        let fast = t.time_scaled(2.0);
        assert_eq!(fast.span(), idse_sim::SimDuration::from_secs(5));
        assert!((fast.mean_pps() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn span_and_rates_on_empty() {
        let t = Trace::new();
        assert_eq!(t.span(), idse_sim::SimDuration::ZERO);
        assert_eq!(t.mean_pps(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn class_names_are_stable() {
        for c in AttackClass::ALL {
            assert!(!c.name().is_empty());
        }
        assert_eq!(AttackClass::TrustExploit.name(), "trust-exploit");
    }
}
