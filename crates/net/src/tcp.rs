//! TCP sessions: a synthesizer for generating well-formed connections and a
//! tracking state machine for observing them.
//!
//! Both halves serve the paper directly. The synthesizer produces the
//! connection-oriented background traffic the methodology requires
//! (realistic sessions, not random floods), and metrics like *Maximal
//! Throughput with Zero Loss* are "measured in packets/sec **or # of
//! simultaneous TCP streams**". The tracker is what gives load balancers
//! their TCP-session awareness and sensors their stream reassembly.

use crate::flow::FlowKey;
use crate::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Which endpoint sent a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

/// Parameters for synthesizing one TCP session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Client address.
    pub client: Ipv4Addr,
    /// Client ephemeral port.
    pub client_port: u16,
    /// Server address.
    pub server: Ipv4Addr,
    /// Server listening port.
    pub server_port: u16,
    /// Client initial sequence number.
    pub client_isn: u32,
    /// Server initial sequence number.
    pub server_isn: u32,
    /// Maximum segment payload size.
    pub mss: usize,
}

impl SessionSpec {
    /// A spec with conventional defaults (MSS 1460).
    pub fn new(client: Ipv4Addr, client_port: u16, server: Ipv4Addr, server_port: u16) -> Self {
        Self {
            client,
            client_port,
            server,
            server_port,
            client_isn: 0x1000,
            server_isn: 0x8000,
            mss: 1460,
        }
    }

    fn header(&self, dir: Direction) -> Ipv4Header {
        match dir {
            Direction::ToServer => Ipv4Header::simple(self.client, self.server),
            Direction::ToClient => Ipv4Header::simple(self.server, self.client),
        }
    }

    fn tcp(&self, dir: Direction, seq: u32, ack: u32, flags: TcpFlags) -> TcpHeader {
        let (sp, dp) = match dir {
            Direction::ToServer => (self.client_port, self.server_port),
            Direction::ToClient => (self.server_port, self.client_port),
        };
        TcpHeader { src_port: sp, dst_port: dp, seq, ack, flags, window: 65535 }
    }
}

/// One application-level exchange inside a session: `data` sent in `dir`.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Sender of this chunk.
    pub dir: Direction,
    /// Application bytes.
    pub data: Vec<u8>,
}

impl Exchange {
    /// Client-sent data.
    pub fn to_server(data: impl Into<Vec<u8>>) -> Self {
        Self { dir: Direction::ToServer, data: data.into() }
    }
    /// Server-sent data.
    pub fn to_client(data: impl Into<Vec<u8>>) -> Self {
        Self { dir: Direction::ToClient, data: data.into() }
    }
}

/// Synthesize a complete, well-formed TCP session: three-way handshake,
/// the given exchanges segmented at the MSS with correct seq/ack and
/// acknowledgements, and a FIN/FIN-ACK teardown. Returns the segments in
/// wire order, each tagged with its direction.
pub fn synthesize_session(spec: &SessionSpec, exchanges: &[Exchange]) -> Vec<(Direction, Packet)> {
    let mut out = Vec::new();
    let mut client_seq = spec.client_isn;
    let mut server_seq = spec.server_isn;

    // Handshake.
    out.push((
        Direction::ToServer,
        Packet::tcp(
            spec.header(Direction::ToServer),
            spec.tcp(Direction::ToServer, client_seq, 0, TcpFlags::SYN),
            Vec::new(),
        ),
    ));
    client_seq = client_seq.wrapping_add(1);
    out.push((
        Direction::ToClient,
        Packet::tcp(
            spec.header(Direction::ToClient),
            spec.tcp(Direction::ToClient, server_seq, client_seq, TcpFlags::SYN_ACK),
            Vec::new(),
        ),
    ));
    server_seq = server_seq.wrapping_add(1);
    out.push((
        Direction::ToServer,
        Packet::tcp(
            spec.header(Direction::ToServer),
            spec.tcp(Direction::ToServer, client_seq, server_seq, TcpFlags::ACK),
            Vec::new(),
        ),
    ));

    // Data exchanges.
    for ex in exchanges {
        for chunk in ex.data.chunks(spec.mss.max(1)) {
            let (dir, seq, ack) = match ex.dir {
                Direction::ToServer => (Direction::ToServer, client_seq, server_seq),
                Direction::ToClient => (Direction::ToClient, server_seq, client_seq),
            };
            out.push((
                dir,
                Packet::tcp(
                    spec.header(dir),
                    spec.tcp(dir, seq, ack, TcpFlags::PSH_ACK),
                    // idse-lint: allow(alloc-in-hot-loop, reason = "trace synthesis: each emitted packet owns its payload bytes by design")
                    chunk.to_vec(),
                ),
            ));
            match ex.dir {
                Direction::ToServer => client_seq = client_seq.wrapping_add(chunk.len() as u32),
                Direction::ToClient => server_seq = server_seq.wrapping_add(chunk.len() as u32),
            }
            // Pure ACK from the receiver.
            let rdir = match ex.dir {
                Direction::ToServer => Direction::ToClient,
                Direction::ToClient => Direction::ToServer,
            };
            let (rseq, rack) = match rdir {
                Direction::ToServer => (client_seq, server_seq),
                Direction::ToClient => (server_seq, client_seq),
            };
            out.push((
                rdir,
                Packet::tcp(
                    spec.header(rdir),
                    spec.tcp(rdir, rseq, rack, TcpFlags::ACK),
                    // idse-lint: allow(alloc-in-hot-loop, reason = "empty ACK payload: a zero-capacity Vec never touches the allocator")
                    Vec::new(),
                ),
            ));
        }
    }

    // Teardown: client FIN, server FIN-ACK, client ACK.
    out.push((
        Direction::ToServer,
        Packet::tcp(
            spec.header(Direction::ToServer),
            spec.tcp(Direction::ToServer, client_seq, server_seq, TcpFlags::FIN_ACK),
            Vec::new(),
        ),
    ));
    client_seq = client_seq.wrapping_add(1);
    out.push((
        Direction::ToClient,
        Packet::tcp(
            spec.header(Direction::ToClient),
            spec.tcp(Direction::ToClient, server_seq, client_seq, TcpFlags::FIN_ACK),
            Vec::new(),
        ),
    ));
    server_seq = server_seq.wrapping_add(1);
    out.push((
        Direction::ToServer,
        Packet::tcp(
            spec.header(Direction::ToServer),
            spec.tcp(Direction::ToServer, client_seq, server_seq, TcpFlags::ACK),
            Vec::new(),
        ),
    ));
    out
}

/// Observable state of a tracked connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnState {
    /// SYN seen, no SYN-ACK yet.
    SynSent,
    /// SYN-ACK seen, no final ACK yet.
    SynReceived,
    /// Handshake complete.
    Established,
    /// One side sent FIN.
    Closing,
    /// Both FINs (or a RST) seen.
    Closed,
}

/// Per-connection tracking record.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    /// Connection state.
    pub state: ConnState,
    /// Application bytes observed client→server.
    pub bytes_to_server: u64,
    /// Application bytes observed server→client.
    pub bytes_to_client: u64,
    /// Total segments observed.
    pub segments: u64,
    /// Whether a RST terminated the connection.
    pub reset: bool,
}

/// A connection tracker: feeds on TCP packets, maintains per-canonical-flow
/// state. This is the "TCP session awareness" the paper requires of load
/// balancers, and the substrate for sensor-side stream reassembly.
#[derive(Debug, Default)]
pub struct ConnTracker {
    // BTreeMap, not HashMap: `idse-eval` counts open streams through this
    // tracker, and report paths must never observe hash-seeded state.
    conns: BTreeMap<FlowKey, ConnRecord>,
    /// Count of completed (fully closed) connections, including reset ones.
    completed: u64,
}

impl ConnTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one packet. Non-TCP packets are ignored. Returns the state
    /// of the connection after the packet, if it is TCP.
    pub fn observe(&mut self, packet: &Packet) -> Option<ConnState> {
        let tcp = packet.tcp_header()?;
        let key = FlowKey::of(packet).canonical();
        let flags = tcp.flags;
        let payload_len = packet.payload.len() as u64;
        // Direction relative to the canonical key: canonical.src is the
        // lexicographically smaller endpoint, not necessarily the client,
        // so we track direction by comparing against the packet's own key.
        let to_canonical_dst = FlowKey::of(packet) == key;

        let entry = self.conns.entry(key).or_insert(ConnRecord {
            state: ConnState::SynSent,
            bytes_to_server: 0,
            bytes_to_client: 0,
            segments: 0,
            reset: false,
        });
        entry.segments += 1;
        if to_canonical_dst {
            entry.bytes_to_server += payload_len;
        } else {
            entry.bytes_to_client += payload_len;
        }

        let was_open = entry.state != ConnState::Closed;
        entry.state = match (entry.state, flags) {
            (_, f) if f.rst => {
                entry.reset = true;
                ConnState::Closed
            }
            (ConnState::SynSent, f) if f.syn && f.ack => ConnState::SynReceived,
            (ConnState::SynReceived, f) if f.ack && !f.syn && !f.fin => ConnState::Established,
            (ConnState::Established, f) if f.fin => ConnState::Closing,
            (ConnState::Closing, f) if f.fin => ConnState::Closed,
            (s, _) => s,
        };
        if was_open && entry.state == ConnState::Closed {
            self.completed += 1;
        }
        Some(entry.state)
    }

    /// Connections currently not closed.
    pub fn open_connections(&self) -> usize {
        self.conns.values().filter(|c| c.state != ConnState::Closed).count()
    }

    /// Connections in the half-open (SYN seen, handshake incomplete)
    /// states — the signal a SYN-flood detector watches.
    pub fn half_open(&self) -> usize {
        self.conns
            .values()
            .filter(|c| matches!(c.state, ConnState::SynSent | ConnState::SynReceived))
            .count()
    }

    /// Fully closed connections observed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Look up a connection by any directed key.
    pub fn get(&self, key: &FlowKey) -> Option<&ConnRecord> {
        self.conns.get(&key.canonical())
    }

    /// Total tracked connections (open and closed).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Whether nothing has been tracked.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Drop closed connections (periodic state compaction; the paper's
    /// *Data Storage* metric is about exactly this kind of retained state).
    pub fn compact(&mut self) {
        self.conns.retain(|_, c| c.state != ConnState::Closed);
    }
}

/// Reassemble the application byte stream of one direction of a synthesized
/// session from its segments (in-order delivery assumed; out-of-order and
/// overlap handling lives in [`crate::frag`] for IP and in sensor logic for
/// TCP).
pub fn reassemble_stream(segments: &[(Direction, Packet)], dir: Direction) -> Vec<u8> {
    let mut ordered: Vec<(&Packet, u32)> = segments
        .iter()
        .filter(|(d, p)| *d == dir && !p.payload.is_empty())
        .map(|(_, p)| (p, p.tcp_header().map(|t| t.seq).unwrap_or(0)))
        .collect();
    ordered.sort_by_key(|&(_, seq)| seq);
    let mut out = Vec::new();
    for (p, _) in ordered {
        out.extend_from_slice(&p.payload);
    }
    out
}

/// Convenience: build the payload `Arc` for tests and generators.
pub fn payload(bytes: &[u8]) -> Arc<[u8]> {
    Arc::from(bytes.to_vec().into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SessionSpec {
        SessionSpec::new(Ipv4Addr::new(10, 0, 0, 5), 40123, Ipv4Addr::new(10, 0, 1, 9), 80)
    }

    /// Every segment `synthesize_session` emits is TCP by construction —
    /// the one place that invariant is asserted.
    fn tcp_of(p: &Packet) -> &TcpHeader {
        p.tcp_header().expect("synthesized segments are TCP")
    }

    #[test]
    fn handshake_then_data_then_teardown() {
        let segs = synthesize_session(
            &spec(),
            &[
                Exchange::to_server(b"GET / HTTP/1.0\r\n\r\n".to_vec()),
                Exchange::to_client(b"HTTP/1.0 200 OK\r\n\r\nhello".to_vec()),
            ],
        );
        // 3 handshake + 2*(data+ack) + 3 teardown.
        assert_eq!(segs.len(), 10);
        assert!(segs[0].1.is_syn());
        let t = tcp_of(&segs[1].1);
        assert!(t.flags.syn && t.flags.ack);
        // Last three are FIN-ACK, FIN-ACK, ACK.
        assert!(tcp_of(&segs[7].1).flags.fin);
        assert!(tcp_of(&segs[8].1).flags.fin);
        assert!(tcp_of(&segs[9].1).flags.ack);
    }

    #[test]
    fn mss_segmentation() {
        let mut s = spec();
        s.mss = 10;
        let data = vec![0x41u8; 35];
        let segs = synthesize_session(&s, &[Exchange::to_server(data.clone())]);
        let reassembled = reassemble_stream(&segs, Direction::ToServer);
        assert_eq!(reassembled, data);
        // 4 data segments of ≤10 bytes.
        let data_segs =
            segs.iter().filter(|(d, p)| *d == Direction::ToServer && !p.payload.is_empty()).count();
        assert_eq!(data_segs, 4);
    }

    #[test]
    fn seq_numbers_are_contiguous() {
        let mut s = spec();
        s.mss = 100;
        let segs = synthesize_session(&s, &[Exchange::to_server(vec![7u8; 250])]);
        let seqs: Vec<u32> = segs
            .iter()
            .filter(|(d, p)| *d == Direction::ToServer && !p.payload.is_empty())
            .map(|(_, p)| tcp_of(p).seq)
            .collect();
        assert_eq!(seqs, vec![s.client_isn + 1, s.client_isn + 101, s.client_isn + 201]);
    }

    #[test]
    fn tracker_follows_full_lifecycle() {
        let segs = synthesize_session(&spec(), &[Exchange::to_server(b"ping".to_vec())]);
        let mut tracker = ConnTracker::new();
        let mut states = Vec::new();
        for (_, p) in &segs {
            states.push(tracker.observe(p).expect("segments are TCP"));
        }
        assert_eq!(states[0], ConnState::SynSent);
        assert_eq!(states[1], ConnState::SynReceived);
        assert_eq!(states[2], ConnState::Established);
        assert_eq!(*states.last().expect("session has segments"), ConnState::Closed);
        assert_eq!(tracker.completed(), 1);
        assert_eq!(tracker.open_connections(), 0);
    }

    #[test]
    fn tracker_counts_bytes_per_direction() {
        let segs = synthesize_session(
            &spec(),
            &[Exchange::to_server(vec![1u8; 100]), Exchange::to_client(vec![2u8; 300])],
        );
        let mut tracker = ConnTracker::new();
        for (_, p) in &segs {
            tracker.observe(p);
        }
        let key = FlowKey::of(&segs[0].1);
        let rec = tracker.get(&key).expect("flow was observed");
        assert_eq!(rec.bytes_to_server + rec.bytes_to_client, 400);
        assert!(!rec.reset);
    }

    #[test]
    fn rst_closes_immediately() {
        let s = spec();
        let mut tracker = ConnTracker::new();
        let segs = synthesize_session(&s, &[]);
        tracker.observe(&segs[0].1); // SYN
        let rst = Packet::tcp(
            s.header(Direction::ToClient),
            s.tcp(Direction::ToClient, 0, 0, TcpFlags::RST),
            Vec::new(),
        );
        assert_eq!(tracker.observe(&rst), Some(ConnState::Closed));
        let rec = tracker.get(&FlowKey::of(&segs[0].1)).expect("flow was observed");
        assert!(rec.reset);
    }

    #[test]
    fn half_open_counts_syn_flood_state() {
        let mut tracker = ConnTracker::new();
        for port in 0..50u16 {
            let s = SessionSpec::new(
                Ipv4Addr::new(66, 6, 6, 6),
                10_000 + port,
                Ipv4Addr::new(10, 0, 1, 9),
                80,
            );
            let syn = Packet::tcp(
                s.header(Direction::ToServer),
                s.tcp(Direction::ToServer, 1, 0, TcpFlags::SYN),
                Vec::new(),
            );
            tracker.observe(&syn);
        }
        assert_eq!(tracker.half_open(), 50);
        assert_eq!(tracker.open_connections(), 50);
    }

    #[test]
    fn compact_drops_closed() {
        let mut tracker = ConnTracker::new();
        let segs = synthesize_session(&spec(), &[]);
        for (_, p) in &segs {
            tracker.observe(p);
        }
        assert_eq!(tracker.len(), 1);
        tracker.compact();
        assert!(tracker.is_empty());
    }

    #[test]
    fn non_tcp_is_ignored() {
        let mut tracker = ConnTracker::new();
        let p = Packet::udp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            crate::packet::UdpHeader { src_port: 1, dst_port: 2 },
            Vec::new(),
        );
        assert_eq!(tracker.observe(&p), None);
        assert!(tracker.is_empty());
    }
}
