//! Addressing: MAC addresses and CIDR subnets.
//!
//! IPv4 addresses use [`std::net::Ipv4Addr`]. This module adds the pieces
//! the testbed needs on top: link-layer addresses for the Ethernet framing
//! model and CIDR blocks for topology construction and the *Data Pool
//! Selectability* metric (filtering the analyzed data pool "by protocol,
//! source and dest addresses, etc.").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally-administered MAC for simulated host `n`.
    pub fn for_host(n: u32) -> Self {
        let b = n.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x1d, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// A CIDR block, e.g. `10.1.0.0/16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    network: Ipv4Addr,
    prefix: u8,
}

/// Errors from [`Cidr`] parsing/construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CidrError {
    /// Prefix length exceeded 32.
    PrefixTooLong(u8),
    /// The string was not `a.b.c.d/len`.
    Malformed(String),
}

impl fmt::Display for CidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CidrError::PrefixTooLong(p) => write!(f, "prefix length {p} exceeds 32"),
            CidrError::Malformed(s) => write!(f, "malformed CIDR {s:?}"),
        }
    }
}

impl std::error::Error for CidrError {}

impl Cidr {
    /// Construct a block; host bits in `addr` are masked off.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Result<Self, CidrError> {
        if prefix > 32 {
            return Err(CidrError::PrefixTooLong(prefix));
        }
        let mask = Self::mask_bits(prefix);
        Ok(Self { network: Ipv4Addr::from(u32::from(addr) & mask), prefix })
    }

    fn mask_bits(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix as u32)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// The prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.prefix) == u32::from(self.network)
    }

    /// The `n`-th usable host address in the block (1-based; 0 returns the
    /// network address). Wraps within the block's host-bit space.
    pub fn host(&self, n: u32) -> Ipv4Addr {
        let host_bits = 32 - self.prefix as u32;
        let span = if host_bits >= 32 { u32::MAX } else { (1u32 << host_bits) - 1 };
        let offset = if span == 0 { 0 } else { n % span.max(1) };
        Ipv4Addr::from(u32::from(self.network) | offset)
    }

    /// Number of addresses in the block (including network/broadcast),
    /// saturating at `u32::MAX` for `/0`.
    pub fn size(&self) -> u32 {
        let host_bits = 32 - self.prefix as u32;
        if host_bits >= 32 {
            u32::MAX
        } else {
            1u32 << host_bits
        }
    }
}

impl FromStr for Cidr {
    type Err = CidrError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, prefix) = s.split_once('/').ok_or_else(|| CidrError::Malformed(s.to_owned()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| CidrError::Malformed(s.to_owned()))?;
        let prefix: u8 = prefix.parse().map_err(|_| CidrError::Malformed(s.to_owned()))?;
        Cidr::new(addr, prefix)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_formatting_and_derivation() {
        assert_eq!(MacAddr([0, 1, 2, 0xab, 0xcd, 0xef]).to_string(), "00:01:02:ab:cd:ef");
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_ne!(MacAddr::for_host(1), MacAddr::for_host(2));
    }

    #[test]
    fn cidr_parse_and_contains() {
        let c: Cidr = "10.1.0.0/16".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(10, 1, 200, 3)));
        assert!(!c.contains(Ipv4Addr::new(10, 2, 0, 1)));
        assert_eq!(c.to_string(), "10.1.0.0/16");
        assert_eq!(c.size(), 65536);
    }

    #[test]
    fn cidr_masks_host_bits() {
        let c = Cidr::new(Ipv4Addr::new(192, 168, 5, 77), 24).unwrap();
        assert_eq!(c.network(), Ipv4Addr::new(192, 168, 5, 0));
    }

    #[test]
    fn cidr_host_enumeration_wraps() {
        let c: Cidr = "192.168.1.0/30".parse().unwrap(); // 4 addrs, 3 host offsets
        assert_eq!(c.host(1), Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(c.host(2), Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(c.host(4), Ipv4Addr::new(192, 168, 1, 1)); // wrapped past span 3
    }

    #[test]
    fn cidr_errors() {
        assert_eq!(Cidr::new(Ipv4Addr::UNSPECIFIED, 33), Err(CidrError::PrefixTooLong(33)));
        assert!("10.0.0.0".parse::<Cidr>().is_err());
        assert!("banana/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn cidr_extremes() {
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let single: Cidr = "10.0.0.7/32".parse().unwrap();
        assert!(single.contains(Ipv4Addr::new(10, 0, 0, 7)));
        assert!(!single.contains(Ipv4Addr::new(10, 0, 0, 8)));
        assert_eq!(single.size(), 1);
    }
}
