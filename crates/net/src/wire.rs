//! Wire encoding: RFC 791/793-faithful byte layout with real checksums.
//!
//! The testbed mostly moves structured [`Packet`] values, but two things
//! need genuine byte-level encoding: trace export (so canned attack data is
//! a portable artifact, per the paper's replay methodology) and the
//! signature engine's raw-bytes mode (some 2002-era IDSes matched patterns
//! against the full datagram, headers included). Encoding computes real
//! Internet checksums; decoding verifies them, so corruption-injection tests
//! have teeth.

use crate::packet::{
    IcmpHeader, IcmpKind, IpProtocol, Ipv4Header, Packet, TcpFlags, TcpHeader, Transport,
    UdpHeader, IPV4_HEADER_LEN,
};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Errors from decoding a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than an IPv4 header.
    Truncated,
    /// Version field was not 4.
    NotIpv4(u8),
    /// The total-length field disagreed with the buffer.
    LengthMismatch {
        /// Length the header declared.
        declared: usize,
        /// Bytes actually presented.
        actual: usize,
    },
    /// IP header checksum did not verify.
    BadIpChecksum,
    /// Transport checksum did not verify.
    BadTransportChecksum,
    /// Unsupported IP protocol number.
    UnknownProtocol(u8),
    /// Transport header extended past the datagram.
    TransportTruncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram shorter than IPv4 header"),
            DecodeError::NotIpv4(v) => write!(f, "IP version {v} is not 4"),
            DecodeError::LengthMismatch { declared, actual } => {
                write!(f, "total length {declared} != buffer length {actual}")
            }
            DecodeError::BadIpChecksum => write!(f, "IPv4 header checksum mismatch"),
            DecodeError::BadTransportChecksum => write!(f, "transport checksum mismatch"),
            DecodeError::UnknownProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            DecodeError::TransportTruncated => write!(f, "transport header truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// RFC 1071 Internet checksum over `data`, seeded with `initial` (used for
/// pseudo-header folding).
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: usize) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    u16::from_be_bytes([s[0], s[1]]) as u32
        + u16::from_be_bytes([s[2], s[3]]) as u32
        + u16::from_be_bytes([d[0], d[1]]) as u32
        + u16::from_be_bytes([d[2], d[3]]) as u32
        + protocol as u32
        + len as u32
}

/// Encode a packet as a self-contained IPv4 datagram with valid checksums.
///
/// ```
/// use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
/// use idse_net::wire;
/// let p = Packet::tcp(
///     Ipv4Header::simple([10, 0, 0, 1].into(), [10, 0, 0, 2].into()),
///     TcpHeader { src_port: 4000, dst_port: 80, seq: 1, ack: 0,
///                 flags: TcpFlags::SYN, window: 1024 },
///     b"hello".to_vec(),
/// );
/// let bytes = wire::encode(&p);
/// assert_eq!(wire::decode(&bytes).unwrap(), p);
/// ```
pub fn encode(packet: &Packet) -> Vec<u8> {
    let transport_bytes = encode_transport(packet);
    let total_len = IPV4_HEADER_LEN + transport_bytes.len();
    let mut out = Vec::with_capacity(total_len);

    let ip = &packet.ip;
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&ip.ident.to_be_bytes());
    let flags_frag = ((ip.dont_fragment as u16) << 14)
        | ((ip.more_fragments as u16) << 13)
        | (ip.frag_offset & 0x1fff);
    out.extend_from_slice(&flags_frag.to_be_bytes());
    out.push(ip.ttl);
    out.push(packet.transport.protocol().number());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ip.src.octets());
    out.extend_from_slice(&ip.dst.octets());
    let csum = internet_checksum(&out[..IPV4_HEADER_LEN], 0);
    out[10..12].copy_from_slice(&csum.to_be_bytes());

    out.extend_from_slice(&transport_bytes);
    out
}

fn encode_transport(packet: &Packet) -> Vec<u8> {
    let payload = &packet.payload;
    match &packet.transport {
        Transport::Tcp(t) => {
            let mut b = Vec::with_capacity(20 + payload.len());
            b.extend_from_slice(&t.src_port.to_be_bytes());
            b.extend_from_slice(&t.dst_port.to_be_bytes());
            b.extend_from_slice(&t.seq.to_be_bytes());
            b.extend_from_slice(&t.ack.to_be_bytes());
            b.push(0x50); // data offset 5 words
            b.push(t.flags.to_bits());
            b.extend_from_slice(&t.window.to_be_bytes());
            b.extend_from_slice(&[0, 0]); // checksum placeholder
            b.extend_from_slice(&[0, 0]); // urgent pointer
            b.extend_from_slice(payload);
            let seed = pseudo_header_sum(packet.ip.src, packet.ip.dst, 6, b.len());
            let csum = internet_checksum(&b, seed);
            b[16..18].copy_from_slice(&csum.to_be_bytes());
            b
        }
        Transport::Udp(u) => {
            let len = 8 + payload.len();
            let mut b = Vec::with_capacity(len);
            b.extend_from_slice(&u.src_port.to_be_bytes());
            b.extend_from_slice(&u.dst_port.to_be_bytes());
            b.extend_from_slice(&(len as u16).to_be_bytes());
            b.extend_from_slice(&[0, 0]);
            b.extend_from_slice(payload);
            let seed = pseudo_header_sum(packet.ip.src, packet.ip.dst, 17, len);
            let mut csum = internet_checksum(&b, seed);
            if csum == 0 {
                csum = 0xffff; // RFC 768: transmitted zero means "no checksum"
            }
            b[6..8].copy_from_slice(&csum.to_be_bytes());
            b
        }
        Transport::Icmp(i) => {
            let mut b = Vec::with_capacity(8 + payload.len());
            b.push(i.kind.type_number());
            b.push(i.kind.code_number());
            b.extend_from_slice(&[0, 0]);
            b.extend_from_slice(&i.ident.to_be_bytes());
            b.extend_from_slice(&i.seq.to_be_bytes());
            b.extend_from_slice(payload);
            let csum = internet_checksum(&b, 0);
            b[2..4].copy_from_slice(&csum.to_be_bytes());
            b
        }
    }
}

/// Decode and verify an IPv4 datagram produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Packet, DecodeError> {
    if bytes.len() < IPV4_HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let version = bytes[0] >> 4;
    if version != 4 {
        return Err(DecodeError::NotIpv4(version));
    }
    let declared = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
    if declared != bytes.len() {
        return Err(DecodeError::LengthMismatch { declared, actual: bytes.len() });
    }
    if internet_checksum(&bytes[..IPV4_HEADER_LEN], 0) != 0 {
        return Err(DecodeError::BadIpChecksum);
    }
    let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
    let flags_frag = u16::from_be_bytes([bytes[6], bytes[7]]);
    let ttl = bytes[8];
    let protocol = bytes[9];
    let src = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
    let dst = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
    let ip = Ipv4Header {
        src,
        dst,
        ttl,
        ident,
        dont_fragment: flags_frag & 0x4000 != 0,
        more_fragments: flags_frag & 0x2000 != 0,
        frag_offset: flags_frag & 0x1fff,
    };

    let body = &bytes[IPV4_HEADER_LEN..];
    let protocol =
        IpProtocol::from_number(protocol).ok_or(DecodeError::UnknownProtocol(protocol))?;
    // Fragments other than the first carry a payload slice mid-stream; their
    // transport header lives in the first fragment, so treat the whole body
    // as payload under a synthetic UDP-less carrier is wrong — instead we
    // only decode transports on non-fragments or first fragments.
    let (transport, payload): (Transport, &[u8]) = match protocol {
        IpProtocol::Tcp => {
            if body.len() < 20 {
                return Err(DecodeError::TransportTruncated);
            }
            let seed = pseudo_header_sum(src, dst, 6, body.len());
            if !ip.is_fragment() && internet_checksum(body, seed) != 0 {
                return Err(DecodeError::BadTransportChecksum);
            }
            let t = TcpHeader {
                src_port: u16::from_be_bytes([body[0], body[1]]),
                dst_port: u16::from_be_bytes([body[2], body[3]]),
                seq: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                ack: u32::from_be_bytes([body[8], body[9], body[10], body[11]]),
                flags: TcpFlags::from_bits(body[13] & 0x3f),
                window: u16::from_be_bytes([body[14], body[15]]),
            };
            (Transport::Tcp(t), &body[20..])
        }
        IpProtocol::Udp => {
            if body.len() < 8 {
                return Err(DecodeError::TransportTruncated);
            }
            let seed = pseudo_header_sum(src, dst, 17, body.len());
            if !ip.is_fragment() && internet_checksum(body, seed) != 0 {
                return Err(DecodeError::BadTransportChecksum);
            }
            let u = UdpHeader {
                src_port: u16::from_be_bytes([body[0], body[1]]),
                dst_port: u16::from_be_bytes([body[2], body[3]]),
            };
            (Transport::Udp(u), &body[8..])
        }
        IpProtocol::Icmp => {
            if body.len() < 8 {
                return Err(DecodeError::TransportTruncated);
            }
            if !ip.is_fragment() && internet_checksum(body, 0) != 0 {
                return Err(DecodeError::BadTransportChecksum);
            }
            let kind = match (body[0], body[1]) {
                (0, _) => IcmpKind::EchoReply,
                (3, c) => IcmpKind::Unreachable(c),
                (8, _) => IcmpKind::EchoRequest,
                (11, _) => IcmpKind::TimeExceeded,
                (t, _) => return Err(DecodeError::UnknownProtocol(t)),
            };
            let i = IcmpHeader {
                kind,
                ident: u16::from_be_bytes([body[4], body[5]]),
                seq: u16::from_be_bytes([body[6], body[7]]),
            };
            (Transport::Icmp(i), &body[8..])
        }
    };

    Ok(Packet { ip, transport, payload: Arc::from(payload.to_vec().into_boxed_slice()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn tcp_packet(payload: &[u8]) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 168, 1, 9)),
            TcpHeader {
                src_port: 33000,
                dst_port: 80,
                seq: 0xdeadbeef,
                ack: 0x01020304,
                flags: TcpFlags::PSH_ACK,
                window: 4096,
            },
            payload.to_vec(),
        )
    }

    #[test]
    fn tcp_round_trip() {
        let p = tcp_packet(b"GET / HTTP/1.0\r\n\r\n");
        let bytes = encode(&p);
        assert_eq!(bytes.len(), p.ip_len());
        let back = decode(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn udp_round_trip() {
        let p = Packet::udp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            UdpHeader { src_port: 5353, dst_port: 53 },
            b"dns-query".to_vec(),
        );
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn icmp_round_trip() {
        let p = Packet::icmp(
            Ipv4Header::simple(Ipv4Addr::new(3, 3, 3, 3), Ipv4Addr::new(4, 4, 4, 4)),
            IcmpHeader { kind: IcmpKind::EchoRequest, ident: 77, seq: 3 },
            vec![0xab; 32],
        );
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn ip_corruption_detected() {
        let mut bytes = encode(&tcp_packet(b"x"));
        bytes[15] ^= 0x40; // flip a source-address bit
        assert_eq!(decode(&bytes), Err(DecodeError::BadIpChecksum));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = encode(&tcp_packet(b"sensitive"));
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert_eq!(decode(&bytes), Err(DecodeError::BadTransportChecksum));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&tcp_packet(b"abc"));
        assert_eq!(decode(&bytes[..10]), Err(DecodeError::Truncated));
        // Cutting the buffer but leaving the header intact → length mismatch.
        let cut = &bytes[..bytes.len() - 2];
        assert!(matches!(decode(cut), Err(DecodeError::LengthMismatch { .. })));
    }

    #[test]
    fn wrong_version_detected() {
        let mut bytes = encode(&tcp_packet(b""));
        bytes[0] = 0x65; // version 6
        assert_eq!(decode(&bytes), Err(DecodeError::NotIpv4(6)));
    }

    #[test]
    fn checksum_algorithm_known_vector() {
        // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data, 0), !0xddf2u16);
    }

    #[test]
    fn odd_length_payload_checksums() {
        let p = tcp_packet(b"odd");
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn fragment_skips_transport_checksum() {
        let mut p = tcp_packet(b"frag-body");
        p.ip.more_fragments = true;
        let bytes = encode(&p);
        // The transport checksum in a fragment covers only part of the
        // datagram; decoding must not reject it.
        let back = decode(&bytes).unwrap();
        assert!(back.ip.more_fragments);
    }
}
