//! IP fragmentation and policy-parameterized reassembly.
//!
//! Fragmentation matters to IDS evaluation because it is an evasion vector:
//! an attacker can split a signature across fragments, or send *overlapping*
//! fragments that the IDS and the target host reassemble differently. The
//! paper's observed-accuracy metrics need attacks that some IDSes miss for
//! structural (not random) reasons; fragmentation evasion in
//! `idse-attacks` is one of those, built on this module.

use crate::packet::{Packet, Transport};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How a reassembler resolves overlapping fragment data.
///
/// Real stacks differed: BSD-derived stacks favored the *first* copy of an
/// overlapped byte, others favored the *last*. An IDS that reassembles with
/// one policy while the protected host uses the other can be blinded —
/// the classic Ptacek–Newsham insertion/evasion result the fragmentation
/// attacks in this testbed reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapPolicy {
    /// Earlier-received data wins (BSD style).
    FirstWins,
    /// Later-received data wins (last-writer style).
    LastWins,
}

/// Split a packet's transport+payload body into IP fragments of at most
/// `frag_payload` bytes each (rounded down to an 8-byte multiple, minimum 8).
///
/// The first fragment carries the transport header; later fragments carry
/// raw payload continuation, as on a real wire. Returns the original packet
/// unchanged if it fits.
pub fn fragment(packet: &Packet, frag_payload: usize) -> Vec<Packet> {
    // The fragmentable body: transport header bytes + payload. We keep the
    // transport header struct in the first fragment and move payload bytes;
    // header length participates in offset arithmetic. The first fragment
    // must be large enough to hold the whole transport header.
    let header_len = packet.transport.header_len();
    // Continuation fragments honour the requested size (8-byte floor);
    // the first fragment must additionally hold the whole transport
    // header, so it gets its own (possibly larger) unit.
    let unit = (frag_payload / 8).max(1) * 8;
    let first_unit = unit.max(header_len.div_ceil(8) * 8);
    let total_body = header_len + packet.payload.len();
    if total_body <= first_unit {
        return vec![packet.clone()];
    }

    let mut frags = Vec::new();
    // First fragment: transport header + initial payload slice.
    let first_payload_len = first_unit - header_len;
    let mut ip = packet.ip;
    ip.more_fragments = true;
    ip.frag_offset = 0;
    frags.push(Packet {
        ip,
        transport: packet.transport,
        payload: Arc::from(
            packet.payload[..first_payload_len.min(packet.payload.len())]
                .to_vec()
                .into_boxed_slice(),
        ),
    });

    // Continuation fragments: raw payload slices carried with the same
    // transport header struct (its ports are what the wire's first 8 bytes
    // would alias); offset bookkeeping is what matters for reassembly.
    let mut offset_bytes = first_unit;
    while offset_bytes < total_body {
        let end = (offset_bytes + unit).min(total_body);
        let pl_start = offset_bytes - header_len;
        let pl_end = end - header_len;
        let mut ip = packet.ip;
        ip.frag_offset = (offset_bytes / 8) as u16;
        ip.more_fragments = end < total_body;
        frags.push(Packet {
            ip,
            transport: packet.transport,
            payload: Arc::from(packet.payload[pl_start..pl_end].to_vec().into_boxed_slice()),
        });
        offset_bytes = end;
    }
    frags
}

/// Key identifying fragments of one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ident: u16,
    protocol: u8,
}

#[derive(Debug)]
struct PartialDatagram {
    transport: Option<Transport>,
    /// Sparse byte map: offset → byte, resolved per the overlap policy.
    bytes: HashMap<usize, u8>,
    /// Total body length, known once the last fragment arrives.
    total_len: Option<usize>,
    header_len: usize,
}

/// A reassembler with a configurable overlap policy.
#[derive(Debug)]
pub struct Reassembler {
    policy: OverlapPolicy,
    partial: HashMap<FragKey, PartialDatagram>,
    completed: u64,
}

impl Reassembler {
    /// Create a reassembler using the given overlap policy.
    pub fn new(policy: OverlapPolicy) -> Self {
        Self { policy, partial: HashMap::new(), completed: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Feed one packet. Non-fragments pass through unchanged. Fragments are
    /// buffered; when a datagram completes, the reassembled packet is
    /// returned.
    pub fn push(&mut self, packet: &Packet) -> Option<Packet> {
        if !packet.ip.is_fragment() {
            return Some(packet.clone());
        }
        let key = FragKey {
            src: packet.ip.src,
            dst: packet.ip.dst,
            ident: packet.ip.ident,
            protocol: packet.transport.protocol().number(),
        };
        let header_len = packet.transport.header_len();
        let entry = self.partial.entry(key).or_insert_with(|| PartialDatagram {
            transport: None,
            bytes: HashMap::new(),
            total_len: None,
            header_len,
        });

        let offset_bytes = packet.ip.frag_offset as usize * 8;
        if offset_bytes == 0 {
            entry.transport = Some(packet.transport);
            // First fragment: payload starts after the transport header.
            for (i, &b) in packet.payload.iter().enumerate() {
                insert_byte(&mut entry.bytes, header_len + i, b, self.policy);
            }
            if !packet.ip.more_fragments {
                entry.total_len = Some(header_len + packet.payload.len());
            }
        } else {
            for (i, &b) in packet.payload.iter().enumerate() {
                insert_byte(&mut entry.bytes, offset_bytes + i, b, self.policy);
            }
            if !packet.ip.more_fragments {
                entry.total_len = Some(offset_bytes + packet.payload.len());
            }
        }

        // Complete?
        let (total, transport) = match (entry.total_len, entry.transport) {
            (Some(t), Some(tr)) => (t, tr),
            _ => return None,
        };
        let body_len = total - entry.header_len;
        let mut payload = vec![0u8; body_len];
        for (i, slot) in payload.iter_mut().enumerate() {
            match entry.bytes.get(&(entry.header_len + i)) {
                Some(&b) => *slot = b,
                None => return None, // hole remains
            }
        }
        self.partial.remove(&key);
        self.completed += 1;
        let mut ip = packet.ip;
        ip.more_fragments = false;
        ip.frag_offset = 0;
        Some(Packet { ip, transport, payload: Arc::from(payload.into_boxed_slice()) })
    }

    /// Datagrams fully reassembled so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Datagrams still incomplete (buffered state — feeds the paper's
    /// *Data Storage* metric).
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

fn insert_byte(map: &mut HashMap<usize, u8>, idx: usize, b: u8, policy: OverlapPolicy) {
    match policy {
        OverlapPolicy::FirstWins => {
            map.entry(idx).or_insert(b);
        }
        OverlapPolicy::LastWins => {
            map.insert(idx, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ipv4Header, TcpFlags, TcpHeader};

    fn data_packet(payload: Vec<u8>) -> Packet {
        let mut ip = Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        ip.ident = 777;
        Packet::tcp(
            ip,
            TcpHeader {
                src_port: 1234,
                dst_port: 80,
                seq: 100,
                ack: 0,
                flags: TcpFlags::PSH_ACK,
                window: 65535,
            },
            payload,
        )
    }

    #[test]
    fn small_packet_not_fragmented() {
        let p = data_packet(vec![1, 2, 3]);
        let frags = fragment(&p, 576);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].ip.is_fragment());
    }

    #[test]
    fn fragment_and_reassemble_round_trip() {
        let body: Vec<u8> = (0..200u8).collect();
        let p = data_packet(body.clone());
        let frags = fragment(&p, 64);
        assert!(frags.len() > 1);
        assert!(frags[0].ip.more_fragments);
        assert!(!frags.last().unwrap().ip.more_fragments);

        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            if let Some(p) = r.push(f) {
                done = Some(p);
            }
        }
        let done = done.expect("reassembly completes");
        assert_eq!(done.payload.as_ref(), body.as_slice());
        assert_eq!(r.completed(), 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let body: Vec<u8> = (0..150u8).collect();
        let p = data_packet(body.clone());
        let mut frags = fragment(&p, 48);
        frags.reverse();
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            if let Some(p) = r.push(f) {
                done = Some(p);
            }
        }
        assert_eq!(done.unwrap().payload.as_ref(), body.as_slice());
    }

    #[test]
    fn missing_fragment_leaves_hole() {
        let p = data_packet((0..200u8).collect());
        let frags = fragment(&p, 64);
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        for f in frags.iter().skip(1) {
            assert!(r.push(f).is_none());
        }
        assert_eq!(r.pending(), 1);
        assert_eq!(r.completed(), 0);
    }

    #[test]
    fn overlap_policies_differ() {
        // Craft two overlapping continuation fragments by hand: both cover
        // byte offset 24 (payload index 4 after the 20-byte TCP header)
        // with different content.
        let p = data_packet((0..100u8).collect());
        let frags = fragment(&p, 32); // unit 32: offsets 0, 32, 64, 96
                                      // Duplicate the second fragment with altered content.
        let mut overlap = frags[1].clone();
        let altered: Vec<u8> = overlap.payload.iter().map(|b| b ^ 0xff).collect();
        overlap.payload = Arc::from(altered.into_boxed_slice());

        let run = |policy| {
            let mut r = Reassembler::new(policy);
            let mut done = None;
            for f in frags.iter().chain(std::iter::once(&overlap)) {
                if let Some(p) = r.push(f) {
                    done = Some(p);
                }
            }
            // The overlap arrives after completion; re-push originals if
            // needed. Completion happens when all holes fill, which occurs
            // before the overlap — so feed overlap earlier instead.
            if done.is_none() {
                panic!("should complete");
            }
            done.unwrap()
        };
        // Feed overlap BEFORE the genuine fragment to exercise policy.
        let run_overlap_first = |policy| {
            let mut r = Reassembler::new(policy);
            let seq = [&frags[0], &overlap, &frags[1], &frags[2], &frags[3]];
            let mut done = None;
            for f in seq {
                if let Some(p) = r.push(f) {
                    done = Some(p);
                }
            }
            done.expect("completes")
        };
        let first = run_overlap_first(OverlapPolicy::FirstWins);
        let last = run_overlap_first(OverlapPolicy::LastWins);
        assert_ne!(first.payload, last.payload, "policies must diverge on overlap");
        // FirstWins keeps the overlap's (first-seen) content for that range.
        assert_eq!(first.payload[12], 12u8 ^ 0xff);
        // LastWins keeps the genuine fragment's content.
        assert_eq!(last.payload[12], 12u8);
        let _ = run(OverlapPolicy::FirstWins);
    }

    #[test]
    fn interleaved_datagrams_do_not_mix() {
        let p1 = data_packet(vec![0xaa; 100]);
        let mut p2 = data_packet(vec![0xbb; 100]);
        p2.ip.ident = 778;
        let f1 = fragment(&p1, 48);
        let f2 = fragment(&p2, 48);
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        let mut out = Vec::new();
        for (a, b) in f1.iter().zip(f2.iter()) {
            if let Some(p) = r.push(a) {
                out.push(p);
            }
            if let Some(p) = r.push(b) {
                out.push(p);
            }
        }
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|p| p.payload.iter().all(|&b| b == 0xaa)));
        assert!(out.iter().any(|p| p.payload.iter().all(|&b| b == 0xbb)));
    }
}
