//! The layered packet model: IPv4 + TCP/UDP/ICMP + payload.
//!
//! Packets are the unit of work everywhere in the testbed: traffic
//! generators emit them, links carry them, load balancers hash them, sensors
//! inspect them. Payloads are `Arc<[u8]>` so a packet can fan out through
//! the IDS pipeline (load balancer → sensor → analyzer) without copying the
//! body — the paper's Figure 1 architecture mirrors the same traffic to
//! several components.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// IP protocol numbers used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
}

impl IpProtocol {
    /// IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
        }
    }

    /// From an IANA protocol number.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            1 => Some(IpProtocol::Icmp),
            6 => Some(IpProtocol::Tcp),
            17 => Some(IpProtocol::Udp),
            _ => None,
        }
    }
}

/// IPv4 header fields the testbed models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (fragment grouping).
    pub ident: u16,
    /// Don't Fragment flag.
    pub dont_fragment: bool,
    /// More Fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
}

impl Ipv4Header {
    /// A default header between two addresses: TTL 64, no fragmentation.
    pub fn simple(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Self {
            src,
            dst,
            ttl: 64,
            ident: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
        }
    }

    /// Whether this packet is a fragment (not the sole piece of a datagram).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }
}

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
    /// Urgent pointer significant.
    pub urg: bool,
}

impl TcpFlags {
    /// Only SYN.
    pub const SYN: TcpFlags =
        TcpFlags { syn: true, ack: false, fin: false, rst: false, psh: false, urg: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags =
        TcpFlags { syn: true, ack: true, fin: false, rst: false, psh: false, urg: false };
    /// Only ACK.
    pub const ACK: TcpFlags =
        TcpFlags { syn: false, ack: true, fin: false, rst: false, psh: false, urg: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags =
        TcpFlags { syn: false, ack: true, fin: true, rst: false, psh: false, urg: false };
    /// Only RST.
    pub const RST: TcpFlags =
        TcpFlags { syn: false, ack: false, fin: false, rst: true, psh: false, urg: false };
    /// PSH+ACK (data segment).
    pub const PSH_ACK: TcpFlags =
        TcpFlags { syn: false, ack: true, fin: false, rst: false, psh: true, urg: false };

    /// Pack into the low 6 bits of a byte (URG..FIN order per RFC 793).
    pub fn to_bits(self) -> u8 {
        (self.urg as u8) << 5
            | (self.ack as u8) << 4
            | (self.psh as u8) << 3
            | (self.rst as u8) << 2
            | (self.syn as u8) << 1
            | self.fin as u8
    }

    /// Unpack from the low 6 bits of a byte.
    pub fn from_bits(b: u8) -> Self {
        Self {
            urg: b & 0b100000 != 0,
            ack: b & 0b010000 != 0,
            psh: b & 0b001000 != 0,
            rst: b & 0b000100 != 0,
            syn: b & 0b000010 != 0,
            fin: b & 0b000001 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
            (self.psh, "PSH"),
            (self.urg, "URG"),
        ] {
            if set {
                if wrote {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                wrote = true;
            }
        }
        if !wrote {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// TCP header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

/// UDP header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// ICMP message types the testbed uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IcmpKind {
    /// Echo request (type 8).
    EchoRequest,
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3), with code.
    Unreachable(u8),
    /// Time exceeded (type 11).
    TimeExceeded,
}

impl IcmpKind {
    /// ICMP type number.
    pub fn type_number(self) -> u8 {
        match self {
            IcmpKind::EchoReply => 0,
            IcmpKind::Unreachable(_) => 3,
            IcmpKind::EchoRequest => 8,
            IcmpKind::TimeExceeded => 11,
        }
    }

    /// ICMP code number.
    pub fn code_number(self) -> u8 {
        match self {
            IcmpKind::Unreachable(c) => c,
            _ => 0,
        }
    }
}

/// ICMP header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IcmpHeader {
    /// Message kind.
    pub kind: IcmpKind,
    /// Identifier (echo).
    pub ident: u16,
    /// Sequence number (echo).
    pub seq: u16,
}

/// The transport layer of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// TCP segment.
    Tcp(TcpHeader),
    /// UDP datagram.
    Udp(UdpHeader),
    /// ICMP message.
    Icmp(IcmpHeader),
}

impl Transport {
    /// The IP protocol number for this transport.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            Transport::Tcp(_) => IpProtocol::Tcp,
            Transport::Udp(_) => IpProtocol::Udp,
            Transport::Icmp(_) => IpProtocol::Icmp,
        }
    }

    /// Transport header length on the wire, in bytes.
    pub fn header_len(&self) -> usize {
        match self {
            Transport::Tcp(_) => 20,
            Transport::Udp(_) => 8,
            Transport::Icmp(_) => 8,
        }
    }

    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp(t) => Some(t.src_port),
            Transport::Udp(u) => Some(u.src_port),
            Transport::Icmp(_) => None,
        }
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp(t) => Some(t.dst_port),
            Transport::Udp(u) => Some(u.dst_port),
            Transport::Icmp(_) => None,
        }
    }
}

/// A simulated network packet: IPv4 header, transport header, payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Network-layer header.
    pub ip: Ipv4Header,
    /// Transport-layer header.
    pub transport: Transport,
    /// Application payload; shared so pipeline fan-out never copies bodies.
    #[serde(with = "arc_bytes")]
    pub payload: Arc<[u8]>,
}

/// Ethernet framing overhead added by links: 14-byte header + 4-byte FCS.
pub const ETHERNET_OVERHEAD: usize = 18;
/// IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;

impl Packet {
    /// Build a TCP packet.
    pub fn tcp(ip: Ipv4Header, tcp: TcpHeader, payload: impl Into<Arc<[u8]>>) -> Self {
        Self { ip, transport: Transport::Tcp(tcp), payload: payload.into() }
    }

    /// Build a UDP packet.
    pub fn udp(ip: Ipv4Header, udp: UdpHeader, payload: impl Into<Arc<[u8]>>) -> Self {
        Self { ip, transport: Transport::Udp(udp), payload: payload.into() }
    }

    /// Build an ICMP packet.
    pub fn icmp(ip: Ipv4Header, icmp: IcmpHeader, payload: impl Into<Arc<[u8]>>) -> Self {
        Self { ip, transport: Transport::Icmp(icmp), payload: payload.into() }
    }

    /// IP datagram length: IP header + transport header + payload.
    pub fn ip_len(&self) -> usize {
        IPV4_HEADER_LEN + self.transport.header_len() + self.payload.len()
    }

    /// Bytes this packet occupies on an Ethernet wire (64-byte minimum
    /// frame enforced).
    pub fn wire_len(&self) -> usize {
        (self.ip_len() + ETHERNET_OVERHEAD).max(64)
    }

    /// The TCP header, if this is a TCP packet.
    pub fn tcp_header(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Transport::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this is a bare SYN (connection-open attempt).
    pub fn is_syn(&self) -> bool {
        matches!(&self.transport, Transport::Tcp(t) if t.flags.syn && !t.flags.ack)
    }
}

/// Serde adapter for `Arc<[u8]>` payloads.
mod arc_bytes {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::sync::Arc;

    pub fn serialize<S: Serializer>(data: &Arc<[u8]>, s: S) -> Result<S::Ok, S::Error> {
        data.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Arc<[u8]>, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Arc::from(v.into_boxed_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tcp() -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            TcpHeader {
                src_port: 40000,
                dst_port: 80,
                seq: 1,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 65535,
            },
            Vec::new(),
        )
    }

    #[test]
    fn flag_bits_round_trip() {
        for bits in 0..64u8 {
            assert_eq!(TcpFlags::from_bits(bits).to_bits(), bits);
        }
        assert_eq!(TcpFlags::SYN_ACK.to_bits(), 0b010010);
    }

    #[test]
    fn flag_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN+ACK");
        assert_eq!(TcpFlags::default().to_string(), "(none)");
    }

    #[test]
    fn lengths() {
        let p = sample_tcp();
        assert_eq!(p.ip_len(), 40);
        assert_eq!(p.wire_len(), 64); // padded to minimum frame
        let big = Packet::udp(p.ip, UdpHeader { src_port: 1, dst_port: 53 }, vec![0u8; 1000]);
        assert_eq!(big.ip_len(), 1028);
        assert_eq!(big.wire_len(), 1046);
    }

    #[test]
    fn syn_detection() {
        let p = sample_tcp();
        assert!(p.is_syn());
        let mut h = *p.tcp_header().unwrap();
        h.flags = TcpFlags::SYN_ACK;
        let p2 = Packet::tcp(p.ip, h, Vec::new());
        assert!(!p2.is_syn());
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(IpProtocol::Tcp.number(), 6);
        assert_eq!(IpProtocol::from_number(17), Some(IpProtocol::Udp));
        assert_eq!(IpProtocol::from_number(99), None);
    }

    #[test]
    fn serde_round_trip() {
        let p = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8)),
            TcpHeader {
                src_port: 1234,
                dst_port: 22,
                seq: 42,
                ack: 7,
                flags: TcpFlags::PSH_ACK,
                window: 8192,
            },
            b"hello".to_vec(),
        );
        let json = serde_json::to_string(&p).unwrap();
        let back: Packet = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn icmp_numbers() {
        assert_eq!(IcmpKind::EchoRequest.type_number(), 8);
        assert_eq!(IcmpKind::Unreachable(3).code_number(), 3);
        assert_eq!(IcmpKind::TimeExceeded.type_number(), 11);
    }
}
