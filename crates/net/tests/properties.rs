//! Property-based tests for the packet substrate: codec round trips,
//! checksum integrity, fragmentation, and flow canonicalization.

use idse_net::frag::{fragment, OverlapPolicy, Reassembler};
use idse_net::packet::{IcmpHeader, IcmpKind, Ipv4Header, Packet, TcpFlags, TcpHeader, UdpHeader};
use idse_net::{wire, FlowKey};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_tcp_packet() -> impl Strategy<Value = Packet> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        0u8..64,
        prop::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(src, dst, sp, dp, seq, ack, flags, payload)| {
            Packet::tcp(
                Ipv4Header::simple(src, dst),
                TcpHeader {
                    src_port: sp,
                    dst_port: dp,
                    seq,
                    ack,
                    flags: TcpFlags::from_bits(flags),
                    window: 4096,
                },
                payload,
            )
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        arb_tcp_packet(),
        (
            arb_addr(),
            arb_addr(),
            any::<u16>(),
            any::<u16>(),
            prop::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(src, dst, sp, dp, payload)| Packet::udp(
                Ipv4Header::simple(src, dst),
                UdpHeader { src_port: sp, dst_port: dp },
                payload
            )),
        (
            arb_addr(),
            arb_addr(),
            any::<u16>(),
            any::<u16>(),
            prop::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(src, dst, ident, seq, payload)| Packet::icmp(
                Ipv4Header::simple(src, dst),
                IcmpHeader { kind: IcmpKind::EchoRequest, ident, seq },
                payload
            )),
    ]
}

proptest! {
    /// Wire codec: encode → decode is the identity.
    #[test]
    fn wire_round_trip(p in arb_packet()) {
        let bytes = wire::encode(&p);
        prop_assert_eq!(bytes.len(), p.ip_len());
        let back = wire::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, p);
    }

    /// Any single-byte corruption is caught by a checksum or the length
    /// field (or changes the decoded packet — never silently identical).
    #[test]
    fn wire_detects_single_byte_corruption(p in arb_tcp_packet(), idx in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = wire::encode(&p);
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        match wire::decode(&bytes) {
            Err(_) => {} // rejected: checksum/length/version caught it
            Ok(back) => prop_assert_ne!(back, p, "corruption must not decode to the original"),
        }
    }

    /// Fragmentation reassembles to the original payload for any size.
    #[test]
    fn fragment_reassemble_round_trip(
        p in arb_tcp_packet(),
        frag_size in 8usize..256,
    ) {
        let frags = fragment(&p, frag_size);
        // Offsets must be 8-aligned and the last fragment unmarked.
        for f in &frags {
            prop_assert_eq!(f.ip.frag_offset as usize * 8 % 8, 0);
        }
        prop_assert!(!frags.last().unwrap().ip.more_fragments);
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            if let Some(whole) = r.push(f) {
                done = Some(whole);
            }
        }
        let done = done.expect("complete");
        prop_assert_eq!(done.payload.as_ref(), p.payload.as_ref());
    }

    /// Reassembly is order-independent.
    #[test]
    fn reassembly_order_independent(
        p in arb_tcp_packet(),
        frag_size in 8usize..64,
        seed in any::<u64>(),
    ) {
        prop_assume!(p.payload.len() > frag_size);
        let mut frags = fragment(&p, frag_size);
        // Deterministic shuffle from the seed.
        let mut rng = idse_sim::RngStream::derive(seed, "shuffle");
        for i in (1..frags.len()).rev() {
            frags.swap(i, rng.index(i + 1));
        }
        let mut r = Reassembler::new(OverlapPolicy::LastWins);
        let mut done = None;
        for f in &frags {
            if let Some(whole) = r.push(f) {
                done = Some(whole);
            }
        }
        let whole = done.expect("complete");
        prop_assert_eq!(whole.payload.as_ref(), p.payload.as_ref());
    }

    /// Flow canonicalization: both directions map to the same canonical
    /// key and hash; canonicalization is idempotent.
    #[test]
    fn flow_canonicalization(p in arb_tcp_packet()) {
        let k = FlowKey::of(&p);
        prop_assert_eq!(k.canonical(), k.reversed().canonical());
        prop_assert_eq!(k.session_hash(), k.reversed().session_hash());
        prop_assert_eq!(k.canonical().canonical(), k.canonical());
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    /// TCP flag bits round trip for all 6-bit values.
    #[test]
    fn tcp_flags_round_trip(bits in 0u8..64) {
        prop_assert_eq!(TcpFlags::from_bits(bits).to_bits(), bits);
    }

    /// Internet checksum: data with its checksum folded in sums to zero.
    #[test]
    fn checksum_self_verifies(data in prop::collection::vec(any::<u8>(), 2..256)) {
        let csum = wire::internet_checksum(&data, 0);
        let mut with = data.clone();
        with.extend_from_slice(&csum.to_be_bytes());
        // Only even-length bodies keep 16-bit word alignment with the
        // appended checksum.
        if data.len() % 2 == 0 {
            prop_assert_eq!(wire::internet_checksum(&with, 0), 0);
        }
    }
}
