//! Tuning sensitivity with error-rate curves (paper Figure 4 and §3.3):
//! sweep a product, locate the Equal Error Rate, then pick the operating
//! point the deployment actually needs — EER for a workload-limited web
//! site, lowest-FN-within-budget for a distributed real-time cluster.
//!
//! ```text
//! cargo run --release -p idse-bench --example error_rate_tuning
//! ```

use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::sweep::{sweep, SweepPlan};
use idse_exec::Executor;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;

fn main() {
    let feed = TestFeed::realtime_cluster(
        &FeedConfig::builder()
            .session_rate(20.0)
            .training_span(SimDuration::from_secs(15))
            .test_span(SimDuration::from_secs(40))
            .campaign_intensity(2)
            .seed(99)
            .build(),
    );
    let product = IdsProduct::model(ProductId::FlowHunter);
    // The nine sweep points are independent jobs; fan them out one per
    // core — the curve is byte-identical at any worker count.
    let curve = sweep(&product, &feed, &SweepPlan::with_steps(9), &Executor::new(0));

    println!("{} on {}:", curve.product, feed.profile.name);
    println!("{:>11}  {:>9}  {:>9}  {:>7}", "sensitivity", "FP ratio", "FN ratio", "alerts");
    for p in &curve.points {
        let marker = "#".repeat((400.0 * p.false_positive_ratio) as usize);
        println!(
            "{:>11.2}  {:>9.4}  {:>9.4}  {:>7}  {marker}",
            p.sensitivity, p.false_positive_ratio, p.false_negative_ratio, p.alerts
        );
    }

    match curve.equal_error_rate() {
        Some((s, r)) => println!("\nEqual Error Rate: {r:.4} at sensitivity {s:.2}"),
        None => println!("\nNo EER crossing in the swept range."),
    }

    // The §3.3 rule for distributed systems: minimize false negatives,
    // accept more false positives.
    for budget in [0.02, 0.1, 0.3] {
        match curve.min_fn_within_fp_budget(budget) {
            Some(p) => println!(
                "FP budget {budget:>4}: operate at sensitivity {:.2} (FP {:.4}, FN {:.4})",
                p.sensitivity, p.false_positive_ratio, p.false_negative_ratio
            ),
            None => println!("FP budget {budget:>4}: no setting qualifies"),
        }
    }
}
