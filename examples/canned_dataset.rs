//! Canned datasets: build a labeled test feed, serialize it to JSON, load
//! it back, and replay it — the paper's "canned data with known attack
//! content" workflow that makes false-negative ratios observable and the
//! whole evaluation repeatable.
//!
//! ```text
//! cargo run --release -p idse-bench --example canned_dataset
//! ```

use idse_attacks::{Campaign, CampaignConfig};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_net::trace::Trace;
use idse_sim::SimDuration;
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};

fn main() {
    // 1. Compose the canned dataset: benign background + labeled campaign.
    let profile = SiteProfile::office_lan();
    let mut trace = BackgroundGenerator::new(GeneratorConfig::new(
        profile.clone(),
        ArrivalProcess::OnOff { on_rate: 60.0, mean_on: 2.0, mean_off: 3.0 },
        SimDuration::from_secs(20),
        0xca55e77e,
    ))
    .generate();
    let ccfg = CampaignConfig::new(SimDuration::from_secs(20), 0xa77ac);
    trace.merge(Campaign::standard_mix(&profile, &ccfg).generate(&ccfg));

    println!(
        "built: {} packets, {} attack packets across {} instances, {:.1} s span",
        trace.len(),
        trace.attack_packets(),
        trace.attack_instances().len(),
        trace.span().as_secs_f64()
    );

    // 2. Serialize — the portable artifact a lab can archive and replay.
    let json = trace.to_json();
    println!("serialized: {:.1} MiB of JSON", json.len() as f64 / (1024.0 * 1024.0));
    let reloaded = Trace::from_json(&json).expect("round trip");
    assert_eq!(reloaded.len(), trace.len());
    assert_eq!(reloaded.attack_packets(), trace.attack_packets());

    // 3. Replay through an IDS, twice — byte-identical inputs give
    //    identical alerts (scientific repeatability).
    let run = || {
        let runner = PipelineRunner::new(
            IdsProduct::model(ProductId::NidSentry),
            RunConfig { sensitivity: Sensitivity::new(0.7), ..RunConfig::default() },
        );
        runner.run(&reloaded)
    };
    let a = run();
    let b = run();
    assert_eq!(a.alerts.len(), b.alerts.len());
    println!("replayed twice: {} alerts both times (repeatable)", a.alerts.len());

    // 4. Replay the same dataset 4x faster — the throughput methodology.
    let fast = reloaded.time_scaled(4.0);
    let out = run_at(&fast);
    println!(
        "4x replay: offered {} monitored {} (loss {:.3})",
        out.offered,
        out.monitored,
        out.loss_ratio()
    );
}

fn run_at(trace: &Trace) -> idse_ids::pipeline::PipelineOutcome {
    PipelineRunner::new(
        IdsProduct::model(ProductId::NidSentry),
        RunConfig { sensitivity: Sensitivity::new(0.7), ..RunConfig::default() },
    )
    .run(trace)
}
