//! The paper's headline use case: a distributed real-time system procurer
//! selects an IDS by evaluating every candidate against a standard derived
//! from their own requirements — then re-uses the same scorecards under a
//! different customer's weighting without re-testing.
//!
//! ```text
//! cargo run --release -p idse-bench --example procure_realtime_cluster
//! ```

use idse_core::report::{render_comparison, render_ranking};
use idse_core::{RequirementSet, Scorecard};
use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::SweepPlan;
use idse_sim::SimDuration;

fn main() {
    // 1. Formalize the requirements (§3.3): partial ordering, least to
    //    most important, then derive metric weights (Figure 6).
    let requirements = RequirementSet::realtime_distributed();
    println!("Requirement set {:?}:", requirements.name);
    for r in &requirements.requirements {
        println!("  [{:>3}] {}", r.weight, r.statement);
    }
    let issues = requirements.validate();
    assert!(issues.is_empty(), "requirement issues: {issues:?}");
    let weights = requirements.derive();

    // 2. Evaluate every candidate on the cluster testbed. The jobs fan
    //    out across cores; results are byte-identical at any width.
    let request = EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(20.0)
                .training_span(SimDuration::from_secs(15))
                .test_span(SimDuration::from_secs(30))
                .campaign_intensity(1)
                .seed(0xc1u64)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(2_000.0))
        .with_sweep(SweepPlan::with_steps(5).with_fp_budget(0.2))
        .with_max_throughput_factor(64.0)
        .with_jobs(0);
    // idse-lint: allow(materialized-feed-in-experiment, reason = "small canned procurement run: the full sweep methodology needs the trace")
    let feed = request.build_feed();
    let evals = request.evaluate_all(&feed);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    // 3. The verdict: each candidate against the standard.
    println!("\n{}", render_comparison(&cards, &weights));
    println!("{}", render_ranking(&cards, &weights));

    // 4. Reuse: the same scorecards under an e-commerce weighting.
    let ec = RequirementSet::ecommerce_site().derive();
    println!("--- Same evaluation, different procurer (e-commerce weighting) ---\n");
    println!("{}", render_ranking(&cards, &ec));
    println!("(No re-testing was needed — only the weights changed.)");
}
