//! Quickstart: evaluate one IDS product against the real-time distributed
//! standard, end to end.
//!
//! ```text
//! cargo run --release -p idse-bench --example quickstart
//! ```

use idse_core::RequirementSet;
use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::SweepPlan;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;

fn main() {
    // 1. Describe the evaluation: a canned test feed (benign training
    //    traffic plus a labeled attack campaign over a real-time cluster
    //    profile), the environment rubric, and the experiment shape.
    let request = EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(20.0)
                .training_span(SimDuration::from_secs(15))
                .test_span(SimDuration::from_secs(30))
                .campaign_intensity(1)
                .seed(7)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(2_000.0))
        .with_sweep(SweepPlan::with_steps(5).with_fp_budget(0.2))
        .with_max_throughput_factor(64.0)
        .with_jobs(0); // one worker per core; the output is identical at any width
                       // idse-lint: allow(materialized-feed-in-experiment, reason = "30-second demo feed: the walkthrough prints trace sizes and sweeps the curve")
    let feed = request.build_feed();
    println!(
        "feed: {} training packets, {} test packets ({} attack instances)",
        feed.training.len(),
        feed.test.len(),
        feed.test.attack_instances().len()
    );

    // 2. Evaluate a product: runs the Figure 4 sweep, accuracy, timing and
    //    throughput experiments, and fills a 56-metric scorecard.
    let product = IdsProduct::model(ProductId::GuardSecure);
    let eval = request.evaluate(&product, &feed);
    println!(
        "\n{}: operating sensitivity {:.2}, detection rate {:.2}, FP ratio {:.4}",
        eval.scorecard.system,
        eval.operating_sensitivity,
        eval.confusion.detection_rate(),
        eval.confusion.false_positive_ratio()
    );

    // 3. Score against the procurer's standard: requirements → weights →
    //    the Figure 5 weighted sum.
    let weights = RequirementSet::realtime_distributed().derive();
    let total = weights.weighted_total(&eval.scorecard);
    let ideal = weights.ideal_total();
    println!("weighted score {total:.1} of standard {ideal:.1} ({:.1}%)", 100.0 * total / ideal);
    for class in idse_core::MetricClass::ALL {
        println!(
            "  S_{} ({}) = {:.1}",
            class.index(),
            class.name(),
            weights.class_score(&eval.scorecard, class)
        );
    }
}
