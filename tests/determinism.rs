//! Scientific repeatability, end to end: the paper's methodology demands
//! that evaluating the same product against the same standard twice gives
//! the same answer — including across parallel execution.

use idse_core::RequirementSet;
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::harness::{evaluate_all, evaluate_product, EvaluationConfig};
use idse_eval::measure::EnvironmentNeeds;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;

fn config() -> EvaluationConfig {
    EvaluationConfig {
        feed: FeedConfig {
            session_rate: 12.0,
            training_span: SimDuration::from_secs(8),
            test_span: SimDuration::from_secs(18),
            campaign_intensity: 1,
            seed: 4242,
        },
        needs: EnvironmentNeeds::realtime_cluster(1_000.0),
        sweep_steps: 3,
        max_throughput_factor: 16.0,
        fp_budget: 0.2,
        ..EvaluationConfig::default()
    }
}

#[test]
fn sequential_and_parallel_evaluations_agree() {
    let cfg = config();
    let feed = TestFeed::realtime_cluster(&cfg.feed);

    let parallel = evaluate_all(&feed, &cfg);
    for id in ProductId::ALL {
        let sequential = evaluate_product(&IdsProduct::model(id), &feed, &cfg);
        let from_parallel = parallel
            .iter()
            .find(|e| e.scorecard.system == sequential.scorecard.system)
            .expect("present");
        for (metric, score) in sequential.scorecard.iter() {
            assert_eq!(
                Some(score),
                from_parallel.scorecard.get(metric),
                "{id:?}/{metric:?} differs between sequential and parallel runs"
            );
        }
        assert_eq!(sequential.operating_sensitivity, from_parallel.operating_sensitivity);
        assert_eq!(sequential.confusion.detected_attacks, from_parallel.confusion.detected_attacks);
    }
}

#[test]
fn weighted_totals_are_bit_stable_across_runs() {
    let cfg = config();
    let weights = RequirementSet::realtime_distributed().derive();
    let totals = |()| -> Vec<f64> {
        let feed = TestFeed::realtime_cluster(&cfg.feed);
        evaluate_all(&feed, &cfg).iter().map(|e| weights.weighted_total(&e.scorecard)).collect()
    };
    let a = totals(());
    let b = totals(());
    assert_eq!(a, b, "identical inputs must give bit-identical verdicts");
}
