//! Scientific repeatability, end to end: the paper's methodology demands
//! that evaluating the same product against the same standard twice gives
//! the same answer — and that the answer is byte-identical at any
//! executor width, for both the materialized and the streaming paths.

use idse_core::RequirementSet;
use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::{sweep, SweepPlan};
use idse_exec::Executor;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;
use idse_telemetry::{summary::summarize, MemorySink, Telemetry};

fn request() -> EvaluationRequest {
    EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(12.0)
                .training_span(SimDuration::from_secs(8))
                .test_span(SimDuration::from_secs(18))
                .campaign_intensity(1)
                .seed(4242)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(1_000.0))
        .with_sweep(SweepPlan::with_steps(3).with_fp_budget(0.2))
        .with_max_throughput_factor(16.0)
}

/// Everything observable about a full evaluation, as bytes.
fn render(evals: &[idse_eval::harness::ProductEvaluation]) -> String {
    let mut s = String::new();
    for e in evals {
        s.push_str(&serde_json::to_string(&e.scorecard).expect("scorecard serializes"));
        s.push_str(&serde_json::to_string(&e.curve).expect("curve serializes"));
        s.push_str(&format!(
            "|{}|{:?}|{:?}|{:?}|{}|{}\n",
            e.operating_sensitivity,
            e.confusion,
            e.throughput,
            e.timing,
            e.host_impact,
            e.state_bytes
        ));
    }
    s
}

#[test]
fn worker_count_never_changes_a_byte() {
    let run = |jobs: usize| {
        let req = request().with_jobs(jobs);
        let feed = req.build_feed();
        render(&req.evaluate_all(&feed))
    };
    let serial = run(1);
    assert_eq!(serial, run(8), "--jobs 8 changed the output");
    assert_eq!(serial, run(0), "--jobs auto changed the output");
}

#[test]
fn streaming_scorecards_are_identical_at_any_width_and_chunk_size() {
    // The RecordStream evaluation path: one job per (product, shard),
    // merged in shard order. Worker count and chunk size must never
    // change a byte of the merged scorecard.
    let product = IdsProduct::model(ProductId::FlowHunter);
    let run = |jobs: usize, chunk: usize| {
        request()
            .with_jobs(jobs)
            .with_stream(chunk, 2)
            .evaluate_stream(std::slice::from_ref(&product), 0.6)
            .pop()
            .expect("one product evaluated")
            .scorecard
            .to_json()
    };
    let baseline = run(1, 1024);
    assert_eq!(baseline, run(8, 1024), "--jobs 8 changed the streaming scorecard");
    assert_eq!(baseline, run(4, 64), "chunk size 64 changed the streaming scorecard");
    assert_eq!(baseline, run(0, 4096), "--jobs auto changed the streaming scorecard");
}

#[test]
fn sweep_json_is_identical_at_any_width() {
    let req = request();
    let feed = req.build_feed();
    let plan = SweepPlan::with_steps(4);
    let product = IdsProduct::model(ProductId::FlowHunter);
    let curve_json = |jobs: usize| {
        serde_json::to_string(&sweep(&product, &feed, &plan, &Executor::new(jobs)))
            .expect("curve serializes")
    };
    let serial = curve_json(1);
    assert_eq!(serial, curve_json(4));
    assert_eq!(serial, curve_json(16));
}

#[test]
fn telemetry_summaries_are_identical_at_any_width() {
    let run = |jobs: usize| {
        let sink = MemorySink::new(1 << 20);
        let req = request().with_telemetry(Telemetry::new(sink.clone())).with_jobs(jobs);
        let feed = req.build_feed();
        req.evaluate_all(&feed);
        (sink.events(), sink.dropped())
    };
    let (serial, dropped) = run(1);
    assert_eq!(dropped, 0, "test-sized run must fit the buffer");
    let (wide, _) = run(8);
    assert_eq!(serial.len(), wide.len(), "worker count changed the event count");
    assert!(serial.iter().zip(wide.iter()).all(|(a, b)| a == b), "worker count reordered events");
    let a = format!("{:?}", summarize(&serial));
    let b = format!("{:?}", summarize(&wide));
    assert_eq!(a, b, "summaries diverged across worker counts");
}

#[test]
fn weighted_totals_are_bit_stable_across_runs() {
    let weights = RequirementSet::realtime_distributed().derive();
    let totals = |jobs: usize| -> Vec<f64> {
        let req = request().with_jobs(jobs);
        let feed = req.build_feed();
        req.evaluate_all(&feed).iter().map(|e| weights.weighted_total(&e.scorecard)).collect()
    };
    let a = totals(2);
    let b = totals(2);
    assert_eq!(a, b, "identical inputs must give bit-identical verdicts");
}
