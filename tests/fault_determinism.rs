//! Fault injection must not cost a byte of determinism: a fault-laden
//! evaluation is still a pure function of (seed, plan), so the scorecard
//! JSON and the telemetry event stream are identical at any `--jobs`
//! width, and a [`FaultPlan`] is a *set* of events — the order the plan
//! author inserted them in is erased by the canonical sort and can never
//! reach an output.

use idse_attacks::{Campaign, CampaignConfig};
use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::SweepPlan;
use idse_faults::{FaultComponent, FaultKind, FaultPlan};
use idse_ids::pipeline::{PipelineOutcome, PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_net::trace::Trace;
use idse_sim::{SimDuration, SimTime};
use idse_telemetry::{MemorySink, Telemetry};
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};
use proptest::prelude::*;

/// A plan that exercises every fault family at once.
fn stress_plan() -> FaultPlan {
    FaultPlan::new("determinism-stress")
        .with(
            SimTime::from_secs(3),
            FaultKind::Crash {
                component: FaultComponent::Sensor(0),
                restart_after: Some(SimDuration::from_secs(6)),
            },
        )
        .with(
            SimTime::from_secs(5),
            FaultKind::Crash {
                component: FaultComponent::Monitor,
                restart_after: Some(SimDuration::from_secs(4)),
            },
        )
        .with(
            SimTime::from_secs(8),
            FaultKind::LinkDegrade {
                loss_per_mille: 120,
                extra_latency: SimDuration::from_millis(1),
                duration: SimDuration::from_secs(5),
            },
        )
        .with(
            SimTime::from_secs(11),
            FaultKind::CpuExhaustion { steal_percent: 40, duration: SimDuration::from_secs(4) },
        )
        .with(
            SimTime::from_secs(12),
            FaultKind::ClockSkew {
                component: FaultComponent::Monitor,
                offset: SimDuration::from_millis(10),
            },
        )
        .with(
            SimTime::from_secs(14),
            FaultKind::AlertChannelDrop { duration: SimDuration::from_secs(2) },
        )
}

fn request(plan: FaultPlan) -> EvaluationRequest {
    EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(12.0)
                .training_span(SimDuration::from_secs(8))
                .test_span(SimDuration::from_secs(18))
                .campaign_intensity(1)
                .seed(4242)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(1_000.0))
        .with_sweep(SweepPlan::with_steps(3).with_fp_budget(0.2))
        .with_max_throughput_factor(16.0)
        .with_fault_plan(plan)
}

/// The fault-injected scorecard (with its survivability measures) and
/// the complete telemetry JSONL stream, as bytes, at one worker count.
fn faulted_bytes(jobs: usize) -> (String, String) {
    let sink = MemorySink::new(1 << 20);
    let req = request(stress_plan()).with_telemetry(Telemetry::new(sink.clone())).with_jobs(jobs);
    let feed = req.build_feed();
    let evals = req.evaluate_all(&feed);

    let mut cards = String::new();
    for e in &evals {
        cards.push_str(&serde_json::to_string(&e.scorecard).expect("scorecard serializes"));
        cards.push_str(&serde_json::to_string(&e.survivability).expect("survivability serializes"));
        cards.push('\n');
    }
    assert_eq!(sink.dropped(), 0, "test-sized run must fit the buffer");
    let jsonl: String = sink.events().iter().map(|ev| ev.to_jsonl() + "\n").collect();
    (cards, jsonl)
}

#[test]
fn faulted_scorecard_and_telemetry_are_byte_identical_at_any_width() {
    let serial = faulted_bytes(1);
    assert!(serial.0.contains("determinism-stress"), "survivability notes carry the plan label");
    assert_eq!(serial, faulted_bytes(8), "--jobs 8 changed a fault-injected byte");
    assert_eq!(serial, faulted_bytes(0), "--jobs auto changed a fault-injected byte");
}

fn benign(seed: u64, secs: u64, rate: f64) -> Trace {
    BackgroundGenerator::new(GeneratorConfig::new(
        SiteProfile::ecommerce_web(),
        ArrivalProcess::Poisson { rate },
        SimDuration::from_secs(secs),
        seed,
    ))
    .generate()
}

fn mixed(seed: u64, secs: u64) -> Trace {
    let mut t = benign(seed, secs, 25.0);
    let cfg = CampaignConfig::new(SimDuration::from_secs(secs), seed ^ 0xa77ac);
    let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &cfg);
    t.merge(c.generate(&cfg));
    t
}

fn run_small(plan: FaultPlan) -> PipelineOutcome {
    let product = IdsProduct::model(ProductId::GuardSecure);
    let cfg = RunConfig {
        sensitivity: Sensitivity::new(0.7),
        faults: Some(plan),
        ..RunConfig::default()
    };
    PipelineRunner::new(product, cfg).with_training(benign(1, 8, 20.0)).run(&mixed(3, 16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Insertion order is authoring noise: pushing the same fault events
    /// in any permutation compiles to the same canonical plan and drives
    /// the pipeline to the same outcome, byte for byte.
    #[test]
    fn event_insertion_order_never_reaches_the_output(shuffle_seed in any::<u64>()) {
        let canonical = stress_plan();
        let mut events: Vec<_> = canonical.events().to_vec();

        // Fisher-Yates on the generated seed (splitmix64 steps).
        let mut s = shuffle_seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..events.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            events.swap(i, j);
        }

        let mut permuted = FaultPlan::new("determinism-stress");
        for ev in &events {
            permuted.push(ev.at, ev.kind);
        }
        prop_assert_eq!(permuted.events(), canonical.events());

        let a = run_small(canonical);
        let b = run_small(permuted);
        prop_assert_eq!(&a.alerts, &b.alerts);
        prop_assert_eq!(a.fault_stats, b.fault_stats);
        prop_assert_eq!((a.offered, a.monitored, a.missed), (b.offered, b.monitored, b.missed));
    }
}
