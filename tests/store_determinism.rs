//! The run store is part of the reproducibility surface: recording the
//! same evaluation at any executor width must produce byte-identical
//! run files mapping onto one content-hashed id, and `store diff` must
//! emit byte-stable reports whose REGRESSED verdicts follow each
//! metric's registry direction — not the raw sign of the delta.

use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::SweepPlan;
use idse_sim::SimDuration;
use idse_store::{diff_runs, RunDraft, RunStore, Verdict};
use serde_json::json;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idse-store-det-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The cheap evaluation request the determinism suite standardizes on.
fn request() -> EvaluationRequest {
    EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(12.0)
                .training_span(SimDuration::from_secs(8))
                .test_span(SimDuration::from_secs(18))
                .campaign_intensity(1)
                .seed(4242)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(1_000.0))
        .with_sweep(SweepPlan::with_steps(3).with_fp_budget(0.2))
        .with_max_throughput_factor(16.0)
}

fn only_run_file(dir: &PathBuf) -> Vec<u8> {
    let store = RunStore::open(dir).expect("store opens");
    let ids = store.run_ids().expect("store lists");
    assert_eq!(ids.len(), 1, "expected exactly one run in {}: {ids:?}", dir.display());
    std::fs::read(dir.join(format!("{}.jsonl", ids[0]))).expect("run file reads")
}

#[test]
fn recorded_runs_are_byte_identical_at_any_jobs() {
    let dirs = [tmp("jobs1"), tmp("jobs8"), tmp("jobsauto")];
    for (jobs, dir) in [1usize, 8, 0].into_iter().zip(&dirs) {
        let req = request().with_jobs(jobs).with_store(dir);
        let feed = req.build_feed();
        req.evaluate_all(&feed);
    }
    let serial = only_run_file(&dirs[0]);
    assert_eq!(serial, only_run_file(&dirs[1]), "--jobs 8 changed the stored bytes");
    assert_eq!(serial, only_run_file(&dirs[2]), "--jobs auto changed the stored bytes");

    // All widths recorded into one directory collapse onto a single
    // file: the content hash is the identity, so re-recording is a
    // no-op rather than a duplicate.
    let shared = tmp("jobs-shared");
    for jobs in [1usize, 8, 0] {
        let req = request().with_jobs(jobs).with_store(&shared);
        let feed = req.build_feed();
        req.evaluate_all(&feed);
    }
    assert_eq!(only_run_file(&shared), serial, "shared-dir recording diverged");
}

/// A hand-seeded baseline: one discrete score, two directed measures,
/// one neutral measure.
fn baseline() -> RunDraft {
    let mut d = RunDraft::new("evaluate", json!({ "fixture": "store_determinism", "seed": 1u64 }));
    d.record("P", "Timeliness", 4.0).expect("valid record");
    d.record("P", "measure.fp_ratio", 0.05).expect("valid record");
    d.record("P", "measure.zero_loss_pps", 1000.0).expect("valid record");
    d.record("P", "measure.operating_sensitivity", 0.7).expect("valid record");
    d
}

/// Every delta favorable or neutral: a lower error ratio, a higher
/// throughput, a moved-but-directionless sensitivity.
fn improved() -> RunDraft {
    let mut d = RunDraft::new("evaluate", json!({ "fixture": "store_determinism", "seed": 2u64 }));
    d.record("P", "Timeliness", 4.0).expect("valid record");
    d.record("P", "measure.fp_ratio", 0.04).expect("valid record");
    d.record("P", "measure.zero_loss_pps", 1200.0).expect("valid record");
    d.record("P", "measure.operating_sensitivity", 0.8).expect("valid record");
    d
}

/// One true regression (the rubric drop). The fp ratio also *falls* —
/// which is an improvement, and must not trip the gate.
fn regressed() -> RunDraft {
    let mut d = RunDraft::new("evaluate", json!({ "fixture": "store_determinism", "seed": 3u64 }));
    d.record("P", "Timeliness", 2.0).expect("valid record");
    d.record("P", "measure.fp_ratio", 0.04).expect("valid record");
    d.record("P", "measure.zero_loss_pps", 1000.0).expect("valid record");
    d.record("P", "measure.operating_sensitivity", 0.8).expect("valid record");
    d
}

#[test]
fn verdicts_follow_the_registry_direction() {
    let store = RunStore::open(tmp("verdicts")).expect("store opens");
    let a = store.commit(baseline()).expect("baseline commits");
    let b = store.commit(regressed()).expect("candidate commits");
    let diff = diff_runs(&a, &b);

    let verdict = |metric: &str| {
        diff.entries
            .iter()
            .find(|e| e.metric == metric)
            .unwrap_or_else(|| panic!("{metric} missing from diff"))
            .verdict
    };
    assert_eq!(verdict("Timeliness"), Verdict::Regressed, "the rubric drop is the regression");
    assert_eq!(verdict("measure.fp_ratio"), Verdict::Improved, "a falling error ratio improves");
    assert_eq!(verdict("measure.zero_loss_pps"), Verdict::Unchanged);
    assert_eq!(
        verdict("measure.operating_sensitivity"),
        Verdict::Changed,
        "neutral metrics only change"
    );
    assert!(diff.has_regressions());
    assert_eq!(diff.count(Verdict::Regressed), 1, "exactly the perturbed metric regresses");

    let up = diff_runs(&a, &store.commit(improved()).expect("improved commits"));
    assert!(
        !up.has_regressions(),
        "favorable deltas must not read as regressions: {}",
        up.summary()
    );
}

fn store_cli(dir: &PathBuf, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_store"))
        .arg("--dir")
        .arg(dir)
        .args(args)
        .output()
        .expect("store binary runs")
}

#[test]
fn cli_gate_trips_only_on_direction_aware_regressions() {
    let dir = tmp("cli-gate");
    let store = RunStore::open(&dir).expect("store opens");
    let a = store.commit(baseline()).expect("baseline commits").header.run_id;
    let good = store.commit(improved()).expect("improved commits").header.run_id;
    let bad = store.commit(regressed()).expect("regressed commits").header.run_id;

    let pass = store_cli(&dir, &["diff", &a, &good, "--fail-on-regression"]);
    assert!(pass.status.success(), "improvement-only diff must exit 0: {pass:?}");

    let fail = store_cli(&dir, &["diff", &a, &bad, "--fail-on-regression"]);
    assert_eq!(fail.status.code(), Some(1), "a regression must exit 1: {fail:?}");
    let text = String::from_utf8(fail.stdout).expect("utf-8 report");
    assert!(
        text.contains(
            "REGRESSED P / Timeliness: 4.0 -> 2.0 score/0-4 (delta -2.0, higher-is-better)"
        ),
        "rendered verdict drifted:\n{text}"
    );
    assert!(text.contains("IMPROVED"), "the favorable fp-ratio delta renders as IMPROVED:\n{text}");
    assert!(text.contains("1 regressed"), "summary counts the single regression:\n{text}");

    // Without the gate flag the same diff reports and exits 0.
    let report_only = store_cli(&dir, &["diff", &a, &bad]);
    assert!(report_only.status.success(), "diff without the gate is report-only: {report_only:?}");

    // The report is byte-stable run-to-run.
    let again = store_cli(&dir, &["diff", &a, &bad]);
    assert_eq!(report_only.stdout, again.stdout, "diff output must be byte-stable");
}
