//! Canned-dataset integration: serialization round trips at realistic
//! scale and replay equivalence — the portability of the paper's "canned
//! data with known attack content".

use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_net::trace::Trace;
use idse_sim::SimDuration;

#[test]
fn full_feed_round_trips_through_json() {
    let feed = TestFeed::ecommerce(
        &FeedConfig::builder()
            .session_rate(15.0)
            .training_span(SimDuration::from_secs(5))
            .test_span(SimDuration::from_secs(15))
            .campaign_intensity(1)
            .seed(8)
            .build(),
    );
    let json = feed.test.to_json();
    let reloaded = Trace::from_json(&json).expect("valid JSON");
    assert_eq!(reloaded.len(), feed.test.len());
    assert_eq!(reloaded.attack_packets(), feed.test.attack_packets());
    for (a, b) in feed.test.records().iter().zip(reloaded.records().iter()) {
        assert_eq!(a.at, b.at);
        assert_eq!(a.packet, b.packet);
        assert_eq!(a.truth, b.truth);
    }
}

#[test]
fn reloaded_dataset_replays_identically() {
    let feed = TestFeed::ecommerce(
        &FeedConfig::builder()
            .session_rate(15.0)
            .training_span(SimDuration::from_secs(5))
            .test_span(SimDuration::from_secs(15))
            .campaign_intensity(1)
            .seed(9)
            .build(),
    );
    let reloaded = Trace::from_json(&feed.test.to_json()).expect("valid");
    let run = |trace: &Trace| {
        PipelineRunner::new(
            IdsProduct::model(ProductId::NidSentry),
            RunConfig { sensitivity: Sensitivity::new(0.8), ..RunConfig::default() },
        )
        .with_training(feed.training.clone())
        .run(trace)
    };
    let a = run(&feed.test);
    let b = run(&reloaded);
    assert_eq!(a.alerts.len(), b.alerts.len());
    for (x, y) in a.alerts.iter().zip(b.alerts.iter()) {
        assert_eq!(x.trigger, y.trigger);
        assert_eq!(x.detector, y.detector);
        assert_eq!(x.raised_at, y.raised_at);
    }
}

#[test]
fn wire_encoding_round_trips_an_entire_trace() {
    // Every packet the generators can emit must survive the byte-level
    // codec with checksums verified.
    let feed = TestFeed::realtime_cluster(
        &FeedConfig::builder()
            .session_rate(10.0)
            .training_span(SimDuration::from_secs(4))
            .test_span(SimDuration::from_secs(10))
            .campaign_intensity(1)
            .seed(10)
            .build(),
    );
    let mut encoded = 0u64;
    for rec in feed.test.records() {
        // Fragments carry partial transport payloads; the codec encodes
        // them, and decode skips transport checksum verification for them.
        let bytes = idse_net::wire::encode(&rec.packet);
        let back = idse_net::wire::decode(&bytes).expect("codec round trip");
        assert_eq!(back.ip.src, rec.packet.ip.src);
        assert_eq!(back.ip.dst, rec.packet.ip.dst);
        if !rec.packet.ip.is_fragment() {
            assert_eq!(back, rec.packet);
        }
        encoded += bytes.len() as u64;
    }
    assert!(encoded > 0);
}
