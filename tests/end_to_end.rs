//! End-to-end integration: the whole methodology from traffic generation
//! to the Figure 5 weighted verdict, across every crate in the workspace.

use idse_core::{RequirementSet, Scorecard, WeightSet};
use idse_eval::feeds::FeedConfig;
use idse_eval::harness::EvaluationRequest;
use idse_eval::measure::EnvironmentNeeds;
use idse_eval::sweep::SweepPlan;
use idse_sim::SimDuration;

fn quick_request() -> EvaluationRequest {
    EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(15.0)
                .training_span(SimDuration::from_secs(10))
                .test_span(SimDuration::from_secs(22))
                .campaign_intensity(1)
                .seed(2002)
                .build(),
        )
        .with_needs(EnvironmentNeeds::realtime_cluster(1_500.0))
        .with_sweep(SweepPlan::with_steps(4).with_fp_budget(0.2))
        .with_max_throughput_factor(32.0)
        .with_jobs(2)
}

#[test]
fn full_methodology_produces_complete_weighted_verdicts() {
    let request = quick_request();
    let feed = request.build_feed();
    let evals = request.evaluate_all(&feed);
    assert_eq!(evals.len(), 4);

    // Every scorecard covers the whole 52-metric catalog.
    for e in &evals {
        assert!(e.scorecard.unscored().is_empty(), "{} incomplete", e.scorecard.system);
    }

    // Weighted totals are finite, positive, and below the standard.
    let weights = RequirementSet::realtime_distributed().derive();
    let ideal = weights.ideal_total();
    assert!(ideal > 0.0);
    for e in &evals {
        let total = weights.weighted_total(&e.scorecard);
        assert!(total.is_finite() && total > 0.0, "{}: total {total}", e.scorecard.system);
        assert!(
            total <= ideal,
            "{}: total {total} exceeds the standard {ideal}",
            e.scorecard.system
        );
    }

    // The ranking is reusable under a different weighting without
    // re-testing (the methodology's headline property).
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();
    let rt_rank = rank(&cards, &weights);
    let ec_rank = rank(&cards, &RequirementSet::ecommerce_site().derive());
    assert_eq!(rt_rank.len(), 4);
    assert_eq!(ec_rank.len(), 4);
    // Both orderings contain the same systems (whatever the order).
    let a: std::collections::BTreeSet<_> = rt_rank.iter().collect();
    let b: std::collections::BTreeSet<_> = ec_rank.iter().collect();
    assert_eq!(a, b);
}

fn rank(cards: &[&Scorecard], w: &WeightSet) -> Vec<String> {
    let mut rows: Vec<(String, f64)> =
        cards.iter().map(|c| (c.system.clone(), w.weighted_total(c))).collect();
    rows.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
    rows.into_iter().map(|(n, _)| n).collect()
}

#[test]
fn research_prototype_scores_below_commercial_products_on_logistics() {
    let request = quick_request();
    let feed = request.build_feed();
    let evals = request.evaluate_all(&feed);
    let by_name = |needle: &str| {
        evals.iter().find(|e| e.scorecard.system.contains(needle)).expect("product present")
    };
    let agentwatch = by_name("AgentWatch");
    let guardsecure = by_name("GuardSecure");
    // The research prototype's logistical class mean trails the mature
    // commercial product's — the paper's AAFID observation.
    assert!(
        agentwatch.scorecard.class_mean(idse_core::MetricClass::Logistical)
            < guardsecure.scorecard.class_mean(idse_core::MetricClass::Logistical),
        "AgentWatch {} vs GuardSecure {}",
        agentwatch.scorecard.class_mean(idse_core::MetricClass::Logistical),
        guardsecure.scorecard.class_mean(idse_core::MetricClass::Logistical)
    );
}

#[test]
fn negative_weights_flip_a_preference() {
    let request = quick_request();
    let feed = request.build_feed();
    let evals = request.evaluate_all(&feed);
    let cards: Vec<&Scorecard> = evals.iter().map(|e| &e.scorecard).collect();

    // Weight only Outsourced Solution, positively then negatively: the
    // ordering must invert for systems that differ on that metric.
    let mut pos = WeightSet::new("pro-local");
    pos.set(idse_core::MetricId::OutsourcedSolution, 2.0);
    let mut neg = WeightSet::new("anti-local");
    neg.set(idse_core::MetricId::OutsourcedSolution, -2.0);
    let totals_pos: Vec<f64> = cards.iter().map(|c| pos.weighted_total(c)).collect();
    let totals_neg: Vec<f64> = cards.iter().map(|c| neg.weighted_total(c)).collect();
    for (p, n) in totals_pos.iter().zip(totals_neg.iter()) {
        assert!((p + n).abs() < 1e-9, "negation must mirror the totals");
    }
    assert!(totals_pos.iter().any(|&t| t > 0.0));
}
