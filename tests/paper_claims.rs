//! Paper-shape claims, verified end to end: the qualitative results the
//! paper reports (or predicts) must hold in the reproduction — who detects
//! what, and how the error curves move.

use idse_eval::confusion::TransactionLedger;
use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::sweep::{sweep, SweepPlan};
use idse_exec::Executor;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_ids::Sensitivity;
use idse_net::trace::AttackClass;
use idse_sim::SimDuration;

fn feed() -> TestFeed {
    TestFeed::realtime_cluster(
        &FeedConfig::builder()
            .session_rate(20.0)
            .training_span(SimDuration::from_secs(15))
            .test_span(SimDuration::from_secs(35))
            .campaign_intensity(2)
            .seed(0xbeef)
            .build(),
    )
}

fn confusion_at(feed: &TestFeed, id: ProductId, s: f64) -> idse_eval::confusion::ConfusionCounts {
    let ledger = TransactionLedger::of(&feed.test);
    let out = PipelineRunner::new(
        IdsProduct::model(id),
        RunConfig {
            sensitivity: Sensitivity::new(s),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        },
    )
    .with_training(feed.training.clone())
    .run(&feed.test);
    ledger.score(&out.alerts)
}

#[test]
fn signature_products_catch_known_exploits_and_scans() {
    let f = feed();
    let c = confusion_at(&f, ProductId::NidSentry, 0.7);
    assert_eq!(c.class_detection_rate(AttackClass::PortScan), Some(1.0));
    assert_eq!(c.class_detection_rate(AttackClass::SynFlood), Some(1.0));
    assert!(c.class_detection_rate(AttackClass::PayloadExploit).unwrap() > 0.4);
}

#[test]
fn network_signature_products_miss_the_structural_blind_spots() {
    let f = feed();
    let c = confusion_at(&f, ProductId::NidSentry, 0.9);
    // No reassembly → fragmentation evasion is invisible.
    assert_eq!(
        c.class_detection_rate(AttackClass::FragmentationEvasion),
        Some(0.0),
        "NidSentry must be blind to overlap evasion"
    );
    // No behavioral model → covert tunnels are invisible.
    assert_eq!(c.class_detection_rate(AttackClass::Tunneling), Some(0.0));
}

#[test]
fn host_agents_see_through_fragmentation() {
    let f = feed();
    let c = confusion_at(&f, ProductId::GuardSecure, 0.7);
    // The hybrid's host agents read post-reassembly host data: evasion
    // that blinds the network sensor is caught at the host.
    assert!(
        c.class_detection_rate(AttackClass::FragmentationEvasion).unwrap() > 0.0,
        "host vantage must defeat network-level evasion"
    );
}

#[test]
fn anomaly_product_catches_behavioral_attacks_signature_products_cannot() {
    let f = feed();
    let fh = confusion_at(&f, ProductId::FlowHunter, 0.9);
    assert!(
        fh.class_detection_rate(AttackClass::Tunneling).unwrap() > 0.0,
        "DNS tunnel is a size/rate anomaly"
    );
    assert!(
        fh.class_detection_rate(AttackClass::Masquerade).unwrap() > 0.0,
        "login-origin model must flag the masquerade"
    );
}

#[test]
fn trust_exploit_is_the_hardest_class() {
    // §3.3: trust exploitation "may look like normal interactions between
    // hosts … difficult to detect". At moderate sensitivity, no network
    // product catches it.
    let f = feed();
    for id in [ProductId::NidSentry, ProductId::FlowHunter] {
        let c = confusion_at(&f, id, 0.4);
        assert_eq!(
            c.class_detection_rate(AttackClass::TrustExploit),
            Some(0.0),
            "{id:?} at moderate sensitivity"
        );
    }
    // Only high sensitivity (anomaly) or host-level file integrity
    // (agents) reach it.
    let fh_hot = confusion_at(&f, ProductId::FlowHunter, 0.95);
    let gs = confusion_at(&f, ProductId::GuardSecure, 0.7);
    assert!(
        fh_hot.class_detection_rate(AttackClass::TrustExploit).unwrap() > 0.0
            || gs.class_detection_rate(AttackClass::TrustExploit).unwrap() > 0.0,
        "some path to the hardest class must exist"
    );
}

#[test]
fn error_curves_move_as_figure4_draws_them() {
    let f = feed();
    let plan = SweepPlan::with_steps(5);
    let exec = Executor::new(2);
    for id in [ProductId::NidSentry, ProductId::GuardSecure, ProductId::FlowHunter] {
        let curve = sweep(&IdsProduct::model(id), &f, &plan, &exec);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            last.false_negative_ratio <= first.false_negative_ratio,
            "{id:?}: FN must not rise with sensitivity"
        );
        assert!(
            last.false_positive_ratio >= first.false_positive_ratio,
            "{id:?}: FP must not fall with sensitivity"
        );
    }
}

#[test]
fn hybrid_detection_unions_coverage_and_pays_in_throughput_cost() {
    // §2.1: "A hybrid IDS uses both technologies either in series or in
    // parallel." On one architecture, the parallel hybrid must detect at
    // least as much as either mechanism alone at the same sensitivity,
    // and cost at least as much per packet.
    use idse_ids::engine::anomaly::AnomalyConfig;
    use idse_ids::engine::signature::SignatureConfig;
    use idse_ids::products::EngineSuite;

    let f = feed();
    let run = |engines: EngineSuite| {
        let mut product = IdsProduct::model(ProductId::FlowHunter);
        product.engines = engines;
        confusion_via(&f, &product, 0.8)
    };
    let sig = run(EngineSuite {
        signature: Some(SignatureConfig::default()),
        anomaly: None,
        host_agents: false,
    });
    let ano = run(EngineSuite {
        signature: None,
        anomaly: Some(AnomalyConfig::default()),
        host_agents: false,
    });
    let hybrid = run(EngineSuite {
        signature: Some(SignatureConfig::default()),
        anomaly: Some(AnomalyConfig::default()),
        host_agents: false,
    });
    assert!(hybrid.detection_rate() >= sig.detection_rate());
    assert!(hybrid.detection_rate() >= ano.detection_rate());
    assert!(
        hybrid.detection_rate() > sig.detection_rate().min(ano.detection_rate()),
        "the union must beat the weaker single mechanism"
    );
    // Both false-positive sources are inherited.
    assert!(hybrid.false_positives >= sig.false_positives.max(ano.false_positives));
}

fn confusion_via(
    feed: &TestFeed,
    product: &IdsProduct,
    s: f64,
) -> idse_eval::confusion::ConfusionCounts {
    let ledger = TransactionLedger::of(&feed.test);
    let out = PipelineRunner::new(
        product.clone(),
        RunConfig {
            sensitivity: Sensitivity::new(s),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        },
    )
    .with_training(feed.training.clone())
    .run(&feed.test);
    ledger.score(&out.alerts)
}

#[test]
fn stealth_and_distributed_scans_evade_windowed_detectors() {
    // The reconnaissance detectors are windowed per-source counters, so
    // pacing under the window (stealth) or splitting across sources
    // (distributed) evades them at ANY sensitivity — a structural false
    // negative the scorecard's Observed FN Ratio is designed to expose.
    use idse_attacks::scan::{DistributedScan, PortScan, StealthScan};
    use idse_attacks::Scenario;
    use idse_sim::{RngStream, SimTime};

    let f = feed();
    let mut rng = RngStream::derive(31, "stealthy");
    let mut trace = f.background.clone();
    let stealth = StealthScan::new(std::net::Ipv4Addr::new(66, 8, 8, 8), f.servers[0]);
    trace.merge(stealth.generate(SimTime::from_secs(2), 1, &mut rng));
    let distributed = DistributedScan::new(f.servers[1]);
    trace.merge(distributed.generate(SimTime::from_secs(4), 2, &mut rng));
    // A control: the loud scan, same target class.
    let loud = PortScan::new(std::net::Ipv4Addr::new(66, 9, 9, 9), f.servers[2]);
    trace.merge(loud.generate(SimTime::from_secs(6), 3, &mut rng));
    let ledger = TransactionLedger::of(&trace);

    let detected_by = |id: ProductId| -> std::collections::HashSet<u32> {
        let out = PipelineRunner::new(
            IdsProduct::model(id),
            RunConfig {
                sensitivity: Sensitivity::new(1.0),
                monitored_hosts: f.servers.clone(),
                ..RunConfig::default()
            },
        )
        .with_training(f.training.clone())
        .run(&trace);
        let _ = ledger.score(&out.alerts);
        out.alerts
            .iter()
            .filter_map(|a| trace.records()[a.trigger].truth.map(|t| t.attack_id))
            .collect()
    };

    // Both engine families catch the loud control scan and miss the
    // under-window stealth scan.
    let nid = detected_by(ProductId::NidSentry);
    let fh = detected_by(ProductId::FlowHunter);
    for (name, d) in [("NidSentry", &nid), ("FlowHunter", &fh)] {
        assert!(d.contains(&3), "{name} must catch the loud control scan");
        assert!(!d.contains(&1), "{name} must miss the stealth scan (windowed counters)");
    }
    // The distributed scan separates the mechanisms: fixed per-source
    // thresholds (signature preprocessors) never accumulate, while the
    // anomaly product's *learned per-destination* rate baseline can see
    // the aggregate — a concrete advantage of behavior-based detection.
    assert!(!nid.contains(&2), "fixed per-source thresholds must miss the distributed scan");
    assert!(fh.contains(&2), "the learned destination baseline must catch the aggregate");
}

#[test]
fn novel_exploits_separate_the_detection_mechanisms() {
    // Deliver one novel (not-in-database) exploit payload — delivery only,
    // without the victim's compromise-indicator response (which is itself
    // signature-detectable and would mask the point being tested).
    use idse_attacks::exploit::exploit_by_name;
    use idse_net::tcp::{synthesize_session, Exchange, SessionSpec};
    use idse_net::trace::GroundTruth;
    use idse_sim::{SimDuration as SD, SimTime};

    let f = feed();
    let exploit = exploit_by_name("novel-telnetd-overflow").expect("in corpus");
    let spec =
        SessionSpec::new(std::net::Ipv4Addr::new(66, 7, 7, 7), 31111, f.servers[0], exploit.port);
    let mut trace = f.background.clone();
    let mut t = SimTime::from_secs(5);
    let truth = GroundTruth { attack_id: 1, class: AttackClass::PayloadExploit };
    let mut attack = idse_net::trace::Trace::new();
    for (_, p) in synthesize_session(&spec, &[Exchange::to_server(exploit.payload.to_vec())]) {
        attack.push_attack(t, p, truth);
        t += SD::from_millis(2);
    }
    trace.merge(attack);
    let ledger = TransactionLedger::of(&trace);

    let run = |id: ProductId| {
        let out = PipelineRunner::new(
            IdsProduct::model(id),
            RunConfig {
                sensitivity: Sensitivity::new(0.95),
                monitored_hosts: f.servers.clone(),
                ..RunConfig::default()
            },
        )
        .with_training(f.training.clone())
        .run(&trace);
        ledger.score(&out.alerts).detection_rate()
    };

    assert_eq!(run(ProductId::NidSentry), 0.0, "signature DB has no rule for it");
    assert!(
        run(ProductId::FlowHunter) > 0.0,
        "binary shellcode on a text port is a payload-character anomaly"
    );
}
