//! Minimal offline subset of the `criterion` benchmark API.
//!
//! Provides the types and macros this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_with_setup`, `Throughput`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, `black_box` — backed by a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.
//! Results are printed as mean time per iteration (plus a derived
//! element/byte rate when a throughput is declared).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per `iter` call, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label with an attached parameter, e.g.
/// `BenchmarkId::new("product", "fh-anomaly")`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Anything `bench_function` accepts as a label.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Drives the measured routine; handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean wall-clock time per iteration, filled in by `iter*`.
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, mean: None, iters: 0 }
    }

    /// Measure `routine` repeatedly. The iteration count adapts to the
    /// routine's cost: fast routines run up to `sample_size` times, slow
    /// ones as few as once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and cost estimate.
        let start = Instant::now();
        black_box(routine());
        let warmup = start.elapsed();

        let iters = self.plan_iters(warmup);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.record(total, iters);
    }

    /// Like `iter`, but runs `setup` outside the measured region before
    /// every invocation of `routine`.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let warmup = start.elapsed();

        let iters = self.plan_iters(warmup);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.record(total, iters);
    }

    fn plan_iters(&self, warmup: Duration) -> u64 {
        if warmup > Duration::from_millis(250) {
            return 1;
        }
        // Aim for ~100ms of measured time, capped by the sample size.
        let budget = Duration::from_millis(100);
        let per_iter = warmup.max(Duration::from_nanos(10));
        let fit = (budget.as_nanos() / per_iter.as_nanos()).max(1) as u64;
        fit.min(self.sample_size as u64).max(1)
    }

    fn record(&mut self, total: Duration, iters: u64) {
        self.iters = iters;
        self.mean = Some(total / iters.max(1) as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = match bencher.mean {
        Some(m) => m,
        None => {
            println!("{label:48} (no measurement)");
            return;
        }
    };
    let mut line =
        format!("{label:48} time: {:>12}/iter  ({} iters)", format_duration(mean), bencher.iters);
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// Benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        report(&label.into_label(), &bencher, None);
        self
    }
}

/// A named group of related benchmarks sharing sample-size and
/// throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let full = format!("{}/{}", self.name, label.into_label());
        report(&full, &bencher, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and any filter) to the binary;
            // this simple harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("param", 3), |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
