//! Minimal offline subset of `serde`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the handful of external crates it uses as small API-compatible
//! shims (see `third_party/README.md`). This shim keeps serde's public
//! *shape* — `Serialize`/`Deserialize` traits generic over
//! `Serializer`/`Deserializer`, derive macros, field attributes
//! (`skip`, `transparent`, `with`, `rename`) — but collapses the data model
//! to a single JSON-like [`Value`] tree: serializers receive a fully-built
//! `Value`, deserializers surrender one. That is exactly the power
//! `serde_json` needs, which is the only data format the workspace uses.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The universal data-model value: a JSON-shaped tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so that
/// serialized output is deterministic and mirrors declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a u64 if it is an unsigned or non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an i64 if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization-side error bound, mirroring `serde::ser::Error`.
pub mod ser {
    use std::fmt::Display;

    /// Errors a [`crate::Serializer`] may produce.
    pub trait Error: Sized + Display {
        /// Construct from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error bound, mirroring `serde::de::Error`.
pub mod de {
    use std::fmt::Display;

    /// Errors a [`crate::Deserializer`] may produce.
    pub trait Error: Sized + Display {
        /// Construct from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    pub use crate::DeserializeOwned;
}

/// The concrete error used by the in-crate `Value` round-trip.
#[derive(Debug, Clone)]
pub struct SimpleError(pub String);

impl fmt::Display for SimpleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl ser::Error for SimpleError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

impl de::Error for SimpleError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

/// A sink for one fully-built [`Value`].
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// The error type.
    type Error: ser::Error;

    /// Consume the serializer with a finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A source that yields one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: de::Error;

    /// Surrender the value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can reconstruct itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` without borrowed data — all this shim ever produces.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The identity serializer: yields the built [`Value`].
pub struct ValueSink;

impl Serializer for ValueSink {
    type Ok = Value;
    type Error = SimpleError;

    fn serialize_value(self, value: Value) -> Result<Value, SimpleError> {
        Ok(value)
    }
}

/// The identity deserializer: wraps an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = SimpleError;

    fn take_value(self) -> Result<Value, SimpleError> {
        Ok(self.0)
    }
}

/// Serialize anything into a [`Value`]. Panics only if a hand-written
/// `Serialize` impl raises a custom error (none in this workspace do).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSink) {
        Ok(v) => v,
        Err(e) => panic!("serialization to Value failed: {e}"),
    }
}

/// Reconstruct a `T` from a [`Value`].
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, SimpleError> {
    T::deserialize(ValueDeserializer(value))
}

/// Support helpers the derive macros expand to. Not public API.
pub mod __private {
    use super::*;

    /// Unwrap an object or fail with a type-mismatch error.
    pub fn expect_object<E: de::Error>(value: Value, ty: &str) -> Result<Vec<(String, Value)>, E> {
        match value {
            Value::Object(pairs) => Ok(pairs),
            other => Err(E::custom(format!("expected object for {ty}, found {}", other.kind()))),
        }
    }

    /// Pull `key` out of an object and deserialize it. Missing keys
    /// deserialize from `Null` so `Option` fields tolerate omission.
    pub fn field<T: DeserializeOwned, E: de::Error>(
        pairs: &mut Vec<(String, Value)>,
        key: &str,
        ty: &str,
    ) -> Result<T, E> {
        let value = match pairs.iter().position(|(k, _)| k == key) {
            Some(i) => pairs.swap_remove(i).1,
            None => Value::Null,
        };
        from_value(value).map_err(|e| E::custom(format!("{ty}.{key}: {e}")))
    }

    /// Deserialize a plain value with error-type conversion.
    pub fn value_into<T: DeserializeOwned, E: de::Error>(value: Value, ty: &str) -> Result<T, E> {
        from_value(value).map_err(|e| E::custom(format!("{ty}: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std types
// ---------------------------------------------------------------------------

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone().into_owned()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = Vec::<T>::deserialize(d)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Array(vec![$(to_value(&self.$n)),+]))
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a map key as a JSON object key. Any key whose serialized form
/// is a string, integer, or bool is accepted (matching serde_json, which
/// stringifies scalar keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match to_value(key) {
        Value::Str(s) => s,
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a scalar, found {}", other.kind()),
    }
}

/// Reconstruct a map key from its JSON object-key string: try the
/// string form first (covers String, unit enums, Ipv4Addr), then fall
/// back to numeric re-parsing for integer keys.
fn key_from_string<K: DeserializeOwned>(key: &str) -> Result<K, SimpleError> {
    match from_value(Value::Str(key.to_owned())) {
        Ok(k) => Ok(k),
        Err(first) => {
            if let Ok(u) = key.parse::<u64>() {
                if let Ok(k) = from_value(Value::U64(u)) {
                    return Ok(k);
                }
            }
            if let Ok(i) = key.parse::<i64>() {
                if let Ok(k) = from_value(Value::I64(i)) {
                    return Ok(k);
                }
            }
            Err(first)
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Object(
            self.iter().map(|(k, v)| (key_to_string(k), to_value(v))).collect(),
        ))
    }
}

impl<K: Serialize + Ord, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output regardless of hash order.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        s.serialize_value(Value::Object(
            pairs.into_iter().map(|(k, v)| (key_to_string(k), to_value(v))).collect(),
        ))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(pairs) => pairs
                .into_iter()
                .map(|(k, v)| {
                    let key = key_from_string(&k).map_err(|e| de::Error::custom(e.to_string()))?;
                    let value = from_value(v).map_err(|e| de::Error::custom(e.to_string()))?;
                    Ok((key, value))
                })
                .collect(),
            other => {
                Err(de::Error::custom(format!("expected object for map, found {}", other.kind())))
            }
        }
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: DeserializeOwned + Eq + std::hash::Hash,
    V: DeserializeOwned,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(pairs) => pairs
                .into_iter()
                .map(|(k, v)| {
                    let key = key_from_string(&k).map_err(|e| de::Error::custom(e.to_string()))?;
                    let value = from_value(v).map_err(|e| de::Error::custom(e.to_string()))?;
                    Ok((key, value))
                })
                .collect(),
            other => {
                Err(de::Error::custom(format!("expected object for map, found {}", other.kind())))
            }
        }
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(u64::from(self.subsec_nanos()))),
        ]))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let out = match v {
                    Value::I64(x) => <$t>::try_from(x).ok(),
                    Value::U64(x) => <$t>::try_from(x).ok(),
                    _ => None,
                };
                out.ok_or_else(|| de::Error::custom(format!(
                    concat!("expected ", stringify!($t), ", found {:?}"), v
                )))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_f64().ok_or_else(|| de::Error::custom(format!("expected number, found {}", v.kind())))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for std::borrow::Cow<'_, str> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        String::deserialize(d).map(std::borrow::Cow::Owned)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-character string")),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(|e| de::Error::custom(e.to_string())))
                .collect(),
            other => Err(de::Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(|e| de::Error::custom(e.to_string())),
        }
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(|e| de::Error::custom(format!("invalid IPv4 address {s:?}: {e}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                match d.take_value()? {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            {
                                let _ = $n; // positional marker
                                from_value::<$t>(it.next().expect("length checked"))
                                    .map_err(|e| de::Error::custom(e.to_string()))?
                            },
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected {}-element array, found {}", $len, other.kind()
                    ))),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_value(&42u64), Value::U64(42));
        assert_eq!(to_value(&-3i32), Value::I64(-3));
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value("hi"), Value::Str("hi".to_owned()));
        let v: u16 = from_value(Value::U64(9)).unwrap();
        assert_eq!(v, 9);
        let none: Option<u8> = from_value(Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u32, 2, 3];
        let v = to_value(&xs);
        let back: Vec<u32> = from_value(v).unwrap();
        assert_eq!(back, xs);
        let ip: std::net::Ipv4Addr =
            from_value(to_value(&std::net::Ipv4Addr::new(10, 0, 0, 1))).unwrap();
        assert_eq!(ip, std::net::Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn type_mismatch_errors() {
        let r: Result<u8, _> = from_value(Value::Str("no".into()));
        assert!(r.is_err());
        let r: Result<Vec<u8>, _> = from_value(Value::Bool(true));
        assert!(r.is_err());
    }
}
