//! Minimal offline subset of the `proptest` API.
//!
//! Covers exactly what this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()` for primitives and
//! [`sample::Index`], integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, [`Just`], `prop_oneof!`, a tiny
//! `[chars]{m,n}`-style string-regex strategy, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its values via the assertion
//!   message instead of a minimized input;
//! * the per-test RNG seed is a stable hash of the test name, so runs
//!   are fully deterministic (there is no persistence file);
//! * the default case count is 64 rather than 256, keeping the suite
//!   fast while still exploring the space.

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// RNG + runner
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire rejection for unbiased bounded sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Execute `config.cases` accepted cases of `f`, panicking on the first
/// failure. Called by the expansion of [`proptest!`].
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(fnv1a(name.as_bytes()));
    let mut executed = 0u32;
    let mut rejected = 0u32;
    while executed < config.cases {
        match f(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                // Give up on pathological assumptions rather than spin.
                if rejected > config.cases.saturating_mul(10) + 100 {
                    eprintln!(
                        "proptest '{name}': too many prop_assume rejections \
                         ({rejected}); ran {executed}/{} cases",
                        config.cases
                    );
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {executed}: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for producing values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Types with a canonical "whole domain" strategy; see [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `A`.
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A` (uniform over the whole domain).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit() as f32
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// A tiny regex-like string strategy supporting sequences of literal
/// characters and `[a-zx]` classes, each optionally repeated `{n}` or
/// `{m,n}` times — enough for patterns like `"[a-z]{1,12}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for v in (lo as u32)..=(hi as u32) {
                                set.push(char::from_u32(v).expect("valid range char"));
                            }
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => vec![chars.next().expect("escaped character")],
            c => vec![c],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut first = String::new();
            let mut second = String::new();
            let mut in_second = false;
            loop {
                match chars.next() {
                    None => panic!("unterminated repetition in {pattern:?}"),
                    Some('}') => break,
                    Some(',') => in_second = true,
                    Some(d) => {
                        if in_second {
                            second.push(d);
                        } else {
                            first.push(d);
                        }
                    }
                }
            }
            let lo: usize = first.parse().expect("repeat lower bound");
            let hi: usize =
                if in_second { second.parse().expect("repeat upper bound") } else { lo };
            (lo, hi)
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

pub mod strategy {
    use super::{Strategy, TestRng};

    /// Box a strategy for storage in a [`Union`]; used by `prop_oneof!`.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between same-valued strategies.
    pub struct Union<V> {
        branches: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].generate(rng)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for [`vec`]: a fixed size or a `[lo, hi)` range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time;
    /// scales uniformly into `[0, size)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            ((self.0 as u128 * size as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Top-level namespace mirroring `proptest::prop`-style paths used via
/// the prelude (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $( let $pat = $crate::Strategy::generate(&($strat), __rng); )*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __l,
                __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __l
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(1u8..=6), &mut rng);
            assert!((1..=6).contains(&w));
            let x = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let t = Strategy::generate(&"ab[0-1]{3}", &mut rng);
        assert!(t.starts_with("ab") && t.len() == 5);
    }

    #[test]
    fn index_scales_into_collection() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..1000 {
            let ix: prop::sample::Index =
                Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(ix.index(7) < 7);
            assert!(ix.index(1) == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: patterns, tuples, vec, oneof, map.
        #[test]
        fn macro_round_trip(
            n in 1usize..50,
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            xs in prop::collection::vec(any::<u16>(), 0..8),
        ) {
            prop_assume!(n != 13);
            prop_assert!(n < 50);
            prop_assert!(pair < 20, "sum {} out of range", pair);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_eq!(xs.len(), xs.iter().map(|_| 1usize).sum::<usize>());
            prop_assert_ne!(n, 13usize);
        }
    }
}
