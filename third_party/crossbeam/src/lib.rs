//! Minimal offline subset of the `crossbeam` API.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). Differences from real
//! crossbeam: child-thread panics propagate when the scope unwinds
//! instead of being collected into the returned `Err` — callers in this
//! workspace immediately `.expect()` the result, so the observable
//! behavior (panic on child panic) is identical.

pub mod thread {
    use std::any::Any;

    /// Result of running a scope: `Ok` unless a child thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning further scoped threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives
        /// the scope itself (so it can spawn nested threads).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; joins all of them before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_mutate_borrowed_slots() {
        let mut slots: Vec<Option<usize>> = vec![None; 4];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = Some(i * i);
                });
            }
        })
        .expect("threads do not panic");
        assert_eq!(slots, vec![Some(0), Some(1), Some(4), Some(9)]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
