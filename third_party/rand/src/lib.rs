//! Minimal offline subset of the `rand` 0.8 API.
//!
//! Implements exactly the surface this workspace uses: `rngs::StdRng`
//! seeded via `SeedableRng::seed_from_u64`, the `RngCore`/`Rng` traits
//! (`gen::<f64>()`, `gen_range(lo..hi)`, `fill_bytes`), and
//! `distributions::Distribution`. The generator is xoshiro256++ (public
//! domain) seeded through a SplitMix64 expander — statistically strong
//! enough for the testbed's entropy and moment tests, and fully
//! deterministic for a given seed.

/// Core random-number source: raw 64-bit output plus byte filling.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Note this is NOT the upstream `rand` StdRng (ChaCha12); the stream
    /// for a given seed differs, but everything in this repository only
    /// requires determinism *within* the build, never parity with
    /// upstream rand.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expander, as recommended by the xoshiro authors
            // (and used by upstream rand for seed_from_u64).
            let mut z = state;
            let mut next = move || {
                z = z.wrapping_add(0x9e3779b97f4a7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
                x ^ (x >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for primitives: uniform over the whole
    /// type for integers, uniform in `[0, 1)` for floats.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that `Rng::gen_range` accepts.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased integer sampling in `[0, span)` via Lemire-style
        /// rejection on the widening multiply.
        fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (span as u128);
                let low = m as u64;
                if low >= span.wrapping_neg() % span {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + uniform_below(rng, span) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain.
                            return rng.next_u64() as $t;
                        }
                        start + uniform_below(rng, span) as $t
                    }
                }
            )*};
        }

        impl_int_range!(u64, usize, u32, u16, u8);

        macro_rules! impl_signed_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + uniform_below(rng, span) as i128) as $t
                    }
                }
            )*};
        }

        impl_signed_range!(i64, i32);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(100u64..105);
            assert!((100..105).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_byte_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 4096];
        rng.fill_bytes(&mut buf);
        let distinct = buf.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 200, "distinct byte values: {distinct}");
    }

    #[test]
    fn custom_distribution_compiles() {
        struct Die;
        impl Distribution<u8> for Die {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
                rng.gen_range(1u8..=6)
            }
        }
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let roll = Die.sample(&mut rng);
            assert!((1..=6).contains(&roll));
        }
    }
}
