//! Minimal offline subset of `serde_json` over the vendored `serde` shim.
//!
//! Provides `to_string` / `to_string_pretty` / `to_value` / `from_str` /
//! `from_value`, a [`json!`] macro, and JSON text encode/decode for the
//! shim's [`Value`] tree. Object key order is preserved (declaration order
//! from derives, insertion order from `json!`), which keeps all output
//! byte-deterministic.

pub use serde::Value;

use std::fmt;

/// Error raised by JSON encoding or decoding.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(serde::to_value(value))
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    from_value(value)
}

/// Implementation detail of [`json!`]; do not call directly.
#[doc(hidden)]
pub fn __json_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    serde::to_value(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest round-trip decimal, always with
                // a `.0` for integral values — matching serde_json's style.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no NaN/Infinity; serde_json errors, we emit null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!("expected ',' or '}}' at offset {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume the longest run of plain characters in one
                    // shot. The input is a &str and `"`/`\` are single-byte
                    // ASCII (never part of a multi-byte sequence), so the
                    // slice boundaries are valid UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

/// Build a [`Value`] from JSON-ish syntax.
///
/// Supported forms: `json!(null)`, `json!([expr, ...])`,
/// `json!({ "key": expr, ... })`, and `json!(expr)` for any `Serialize`
/// type. Unlike real serde_json, *nested* object literals must themselves
/// be wrapped in `json!({...})` — values are plain expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($element) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::__json_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::__json_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-17", "3.5", "\"hi\\nthere\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,2,3],"b":{"c":"d"},"e":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn json_macro_builds_objects() {
        let items = vec![1u32, 2];
        let v = json!({ "name": "idse", "count": items.len(), "items": items });
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"idse","count":2,"items":[1,2]}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }
}
