//! Derive macros for the vendored `serde` shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! the item shapes this workspace actually uses: non-generic structs with
//! named fields, tuple structs, and enums whose variants are unit, newtype,
//! tuple, or struct-like. Honored attributes: container-level
//! `#[serde(transparent)]`; field-level `#[serde(skip)]`,
//! `#[serde(with = "module")]`, `#[serde(rename = "name")]`,
//! `#[serde(default)]`. Anything else fails loudly with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    with: Option<String>,
    rename: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    /// The key this field serializes under.
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Consume `#[...]` runs, returning accumulated serde attributes.
    fn parse_attrs(&mut self) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("malformed attribute".to_owned()),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => return Err("malformed #[serde(...)] attribute".to_owned()),
            };
            let mut it = args.into_iter().peekable();
            while let Some(tok) = it.next() {
                let word = match &tok {
                    TokenTree::Ident(i) => i.to_string(),
                    TokenTree::Punct(p) if p.as_char() == ',' => continue,
                    other => return Err(format!("unsupported serde attribute token `{other}`")),
                };
                match word.as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                    "transparent" => {
                        // Container-level; smuggled through `with` slot is
                        // wrong, so use rename slot? No — handled by caller
                        // via a sentinel.
                        attrs.rename = Some("__transparent__".to_owned());
                    }
                    "default" => { /* shim always defaults missing fields */ }
                    "with" | "rename" => match (it.next(), it.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let raw = lit.to_string();
                            let value = raw.trim_matches('"').to_owned();
                            if word == "with" {
                                attrs.with = Some(value);
                            } else {
                                attrs.rename = Some(value);
                            }
                        }
                        _ => return Err(format!("malformed #[serde({word} = ...)]")),
                    },
                    other => return Err(format!("unsupported serde attribute `{other}`")),
                }
            }
        }
        Ok(attrs)
    }

    /// Skip a visibility qualifier if present.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consume a type, stopping at a top-level `,` (angle-bracket aware).
    fn skip_type(&mut self) -> Result<(), String> {
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => return Ok(()),
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        return Ok(());
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                        if depth < 0 {
                            return Err("unbalanced angle brackets in type".to_owned());
                        }
                    }
                    self.next();
                }
                Some(_) => {
                    self.next();
                }
            }
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(input);
    let container_attrs = cur.parse_attrs()?;
    let transparent = container_attrs.rename.as_deref() == Some("__transparent__");
    cur.skip_vis();

    let keyword = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    if cur.at_punct('<') {
        return Err(format!("serde shim derive does not support generics (on `{name}`)"));
    }

    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream())?)
            }
            other => return Err(format!("unsupported struct body `{other:?}`")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body `{other:?}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Input { name, transparent, kind })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = cur.parse_attrs()?;
        cur.skip_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found `{other:?}`")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, found `{other:?}`")),
        }
        cur.skip_type()?;
        // Consume the separating comma if present.
        if cur.at_punct(',') {
            cur.next();
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        if cur.peek().is_none() {
            break;
        }
        cur.parse_attrs()?;
        cur.skip_vis();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_type()?;
        count += 1;
        if cur.at_punct(',') {
            cur.next();
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.parse_attrs()?;
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found `{other:?}`")),
        };
        let body = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantBody::Struct(fields?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantBody::Tuple(n?)
            }
            _ => VariantBody::Unit,
        };
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
            if item.transparent {
                let f = live.first().map(|f| f.name.clone()).unwrap_or_default();
                format!("serializer.serialize_value(serde::to_value(&self.{f}))")
            } else {
                let mut s =
                    String::from("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
                for f in &live {
                    s.push_str(&push_field_value(f, &format!("self.{}", f.name)));
                }
                s.push_str("serializer.serialize_value(serde::Value::Object(__fields))");
                s
            }
        }
        Kind::TupleStruct(n) => {
            if *n == 1 || item.transparent {
                "serializer.serialize_value(serde::to_value(&self.0))".to_owned()
            } else {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("serde::to_value(&self.{i})")).collect();
                format!(
                    "serializer.serialize_value(serde::Value::Array(vec![{}]))",
                    items.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => serializer.serialize_value(serde::Value::Str({vn:?}.to_string())),\n"
                        ));
                    }
                    VariantBody::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => serializer.serialize_value(serde::Value::Object(vec![({vn:?}.to_string(), serde::to_value(__f0))])),\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> =
                            binds.iter().map(|b| format!("serde::to_value({b})")).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serializer.serialize_value(serde::Value::Object(vec![({vn:?}.to_string(), serde::Value::Array(vec![{}]))])),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n",
                        );
                        for f in &live {
                            inner.push_str(&push_field_value(f, &f.name.clone()));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} serializer.serialize_value(serde::Value::Object(vec![({vn:?}.to_string(), serde::Value::Object(__fields))])) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         #[allow(unused_mut, clippy::vec_init_then_push, clippy::redundant_field_names)]\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// Generated statement pushing one field's `(key, Value)` pair.
fn push_field_value(f: &Field, access: &str) -> String {
    let key = f.key();
    match &f.attrs.with {
        Some(module) => format!(
            "__fields.push(({key:?}.to_string(), match {module}::serialize(&{access}, serde::ValueSink) {{ \
             Ok(v) => v, Err(e) => return Err(serde::ser::Error::custom(e)) }}));\n"
        ),
        None => format!("__fields.push(({key:?}.to_string(), serde::to_value(&{access})));\n"),
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            if item.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .map(|f| f.name.clone())
                    .unwrap_or_default();
                let mut s =
                    format!("Ok({name} {{ {f}: serde::__private::value_into(__value, {name:?})?, ");
                for skipped in fields.iter().filter(|x| x.attrs.skip) {
                    s.push_str(&format!("{}: ::core::default::Default::default(), ", skipped.name));
                }
                s.push_str("})");
                s
            } else {
                let mut s = format!(
                    "let mut __obj = serde::__private::expect_object::<D::Error>(__value, {name:?})?;\n"
                );
                s.push_str(&format!("Ok({name} {{\n"));
                for f in fields {
                    s.push_str(&field_from_obj(f, name));
                }
                s.push_str("})");
                s
            }
        }
        Kind::TupleStruct(n) => {
            if *n == 1 {
                format!("Ok({name}(serde::__private::value_into(__value, {name:?})?))")
            } else {
                let mut s = format!(
                    "let __items = match __value {{ serde::Value::Array(a) if a.len() == {n} => a, \
                     _ => return Err(serde::de::Error::custom(concat!(\"expected \", {n}, \"-element array for \", {name:?}))) }};\n\
                     let mut __it = __items.into_iter();\n"
                );
                let parts: Vec<String> = (0..*n)
                    .map(|_| {
                        format!(
                            "serde::__private::value_into(__it.next().expect(\"length checked\"), {name:?})?"
                        )
                    })
                    .collect();
                s.push_str(&format!("Ok({name}({}))", parts.join(", ")));
                s
            }
        }
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        str_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantBody::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "{vn:?} => Ok({name}::{vn}(serde::__private::value_into(__v, {name:?})?)),\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let mut inner = format!(
                            "let __items = match __v {{ serde::Value::Array(a) if a.len() == {n} => a, \
                             _ => return Err(serde::de::Error::custom(\"bad tuple variant payload\")) }};\n\
                             let mut __it = __items.into_iter();\n"
                        );
                        let parts: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "serde::__private::value_into(__it.next().expect(\"length checked\"), {name:?})?"
                                )
                            })
                            .collect();
                        inner.push_str(&format!("Ok({name}::{vn}({}))", parts.join(", ")));
                        obj_arms.push_str(&format!("{vn:?} => {{ {inner} }}\n"));
                    }
                    VariantBody::Struct(fields) => {
                        let mut inner = format!(
                            "let mut __obj = serde::__private::expect_object::<D::Error>(__v, {name:?})?;\n"
                        );
                        inner.push_str(&format!("Ok({name}::{vn} {{\n"));
                        for f in fields {
                            inner.push_str(&field_from_obj(f, name));
                        }
                        inner.push_str("})");
                        obj_arms.push_str(&format!("{vn:?} => {{ {inner} }}\n"));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(serde::de::Error::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n}},\n\
                 serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = __m.into_iter().next().expect(\"length checked\");\n\
                 match __k.as_str() {{\n{obj_arms}\
                 __other => Err(serde::de::Error::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n}}\n}},\n\
                 __other => Err(serde::de::Error::custom(concat!(\"invalid representation for enum \", {name:?}))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         #[allow(unused_variables, unused_mut, clippy::redundant_field_names)]\n\
         fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{\n\
         let __value = deserializer.take_value()?;\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// Generated `name: <expr>,` initializer for one named field.
fn field_from_obj(f: &Field, ty: &str) -> String {
    let fname = &f.name;
    if f.attrs.skip {
        return format!("{fname}: ::core::default::Default::default(),\n");
    }
    let key = f.key();
    match &f.attrs.with {
        Some(module) => format!(
            "{fname}: {{\n\
             let __v = match __obj.iter().position(|(k, _)| k == {key:?}) {{\n\
             Some(i) => __obj.swap_remove(i).1, None => serde::Value::Null }};\n\
             {module}::deserialize(serde::ValueDeserializer(__v))\
             .map_err(|e| serde::de::Error::custom(format!(\"{ty}.{key}: {{e}}\")))?\n\
             }},\n"
        ),
        None => format!("{fname}: serde::__private::field(&mut __obj, {key:?}, {ty:?})?,\n"),
    }
}
